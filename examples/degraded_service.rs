//! Operating under failure: a durable PCOR server is driven through a
//! scripted chaos schedule — disk write errors, an fsync stall, injected
//! release latency, and an hour of clock skew — while analysts submit a
//! mix of deadline-free and hopelessly deadlined requests.
//!
//! The hardened lifecycle must hold the line: doomed requests are shed at
//! admission (`Overloaded { retry_after }`) or cancelled mid-flight
//! (`DeadlineExceeded`) and refunded exactly; transient journal failures
//! are retried with backoff; the health surface keeps reporting; and the
//! audit fold proves zero ε leaked. The closing `chaos_*` lines are
//! grep-able by the CI chaos smoke step.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example degraded_service
//! ```

use pcor::faults::{site, FaultKind, FaultPlan, ScheduledFault};
use pcor::prelude::*;
use pcor::wal::FsyncPolicy;
use std::sync::Arc;
use std::time::Duration;

fn request(analyst: &str, seed: u64) -> ReleaseRequest {
    ReleaseRequest::new(analyst, "salary", 0)
        .with_detector(DetectorKind::ZScore)
        .with_algorithm(SamplingAlgorithm::Bfs)
        .with_epsilon(0.1)
        .with_samples(5)
        .with_seed(seed)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pcor-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A deterministic toy dataset with a planted outlier at record 0.
    let schema = Schema::new(
        vec![
            Attribute::from_values("A", &["a0", "a1"]),
            Attribute::from_values("B", &["b0", "b1"]),
        ],
        "M",
    )
    .expect("schema");
    let mut records = vec![Record::new(vec![0, 0], 900.0)];
    for i in 0..40 {
        records
            .push(Record::new(vec![(i % 2) as u16, ((i / 2) % 2) as u16], 100.0 + (i % 7) as f64));
    }
    let registry = Arc::new(DatasetRegistry::new());
    registry.register("salary", Dataset::new(schema, records).expect("dataset"));

    // The chaos schedule. WAL side: appends 3 and 7 fail with I/O errors
    // (the retry/backoff policy must absorb them), fsync 2 stalls. Service
    // side: every release pays 2 ms of injected latency with a coin flip,
    // and the 5th release skews the clock an hour forward — from then on
    // every finite deadline is hopeless.
    let wal_faults = FaultPlan::scripted(vec![
        ScheduledFault { site: site::WAL_APPEND.to_string(), hit: 3, kind: FaultKind::IoError },
        ScheduledFault { site: site::WAL_APPEND.to_string(), hit: 7, kind: FaultKind::IoError },
        ScheduledFault {
            site: site::WAL_FSYNC.to_string(),
            hit: 2,
            kind: FaultKind::FsyncStall(Duration::from_millis(5)),
        },
    ])
    .build();
    let service_faults = FaultPlan::scripted(vec![ScheduledFault {
        site: site::SERVICE_RELEASE.to_string(),
        hit: 5,
        kind: FaultKind::ClockSkew(Duration::from_secs(3600)),
    }])
    .build();

    let grant = 10.0;
    let mut wal_config = WalConfig::at(&dir);
    wal_config.fsync = FsyncPolicy::EveryRecord;
    wal_config.faults = wal_faults;
    let durable = Arc::new(
        DurableLedger::open(wal_config, BudgetLedger::new(grant)).expect("open durable ledger"),
    );
    let server = Server::start_durable(
        ServerConfig::default().with_workers(2).with_queue_capacity(16).with_faults(service_faults),
        Arc::clone(&registry),
        Arc::clone(&durable),
    );

    println!("== degraded service: scripted disk faults + clock skew ==\n");

    // Phase 1: deadline-free traffic rides out the disk faults.
    let mut served = 0u32;
    for seed in 0..8u64 {
        let analyst = ["alice", "bob"][seed as usize % 2];
        match server.execute(request(analyst, seed)) {
            Ok(response) => {
                served += 1;
                println!(
                    "served {analyst} seed {seed}: spent {:.1} ε, {:.1} remaining",
                    response.epsilon_spent, response.remaining_budget
                );
            }
            Err(error) => println!("refused {analyst} seed {seed}: {error}"),
        }
    }

    // Phase 2: deadlined traffic under an hour of injected skew. Every
    // request is doomed; every one must be shed or cancelled, never billed.
    let mut refused = 0u32;
    for seed in 0..6u64 {
        let envelope =
            RequestEnvelope::single(request("carol", 100 + seed)).with_deadline_ms(1 + seed % 3);
        let outcome = match server.submit_envelope(envelope) {
            Ok(pending) => pending.wait().map(|_| ()),
            Err(error) => Err(error),
        };
        match outcome {
            Ok(()) => println!("served carol seed {seed} (deadline made it)"),
            Err(error) => {
                refused += 1;
                println!("refused carol seed {seed}: {error}");
            }
        }
    }

    // The health surface keeps answering through the degradation.
    let health = server.health();
    println!("\nhealth: {health:?}");
    let scrape = server.telemetry().render_prometheus();
    for line in scrape.lines() {
        if line.starts_with("pcor_deadline_exceeded_total")
            || line.starts_with("pcor_shed_total")
            || line.starts_with("pcor_retries_total")
            || line.starts_with("pcor_breaker_state")
            || line.starts_with("pcor_ready")
        {
            println!("{line}");
        }
    }

    // The chaos verdict: fold the audit log and measure leaked ε — budget
    // reserved by cancelled/shed/faulted requests that was never returned.
    let accounts = server.telemetry().audit().fold();
    let leaked: f64 = accounts.values().map(|account| account.outstanding().abs()).sum();
    let committed: f64 = accounts.values().map(|account| account.committed).sum();
    assert!(leaked < 1e-9, "the lifecycle leaked {leaked} ε");
    assert!(
        (committed - 0.1 * f64::from(served)).abs() < 1e-9,
        "served releases must commit exactly their ε"
    );
    println!("\nchaos_served {served}");
    println!("chaos_refused {refused}");
    println!("chaos_accepting {}", health.accepting);
    println!("chaos_leaked_epsilon 0");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
