//! Streaming batch release: item results surface as they finish.
//!
//! The PR 2 batch endpoint resolved only when the *slowest* item finished —
//! an analyst submitting 16 queries stared at a blank terminal until the
//! last search converged. `Server::submit_batch_streaming` keeps the exact
//! same ε accounting (one summed-ε reservation up front, per-item refunds
//! in the final summary) but delivers each item's result through a
//! [`BatchStream`] the moment the serving task finishes it, with the
//! server computing at most one item ahead of the consumer.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example stream_batch
//! ```

use pcor::prelude::*;
use pcor::service::find_serviceable_outlier;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(4_000)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    let ledger = Arc::new(BudgetLedger::new(4.0));
    let server = Server::start(
        ServerConfig::default().with_workers(2).with_queue_capacity(16),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    );

    // A 12-item batch revisiting a few genuine contextual outliers.
    let records: Vec<usize> = (0..3)
        .filter_map(|i| find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 50 + i))
        .collect();
    assert!(!records.is_empty(), "the synthetic workload plants outliers");
    let batch =
        BatchReleaseRequest::new("alice", "salary").with_detector(DetectorKind::ZScore).with_items(
            (0..12)
                .map(|i| {
                    BatchItem::new(records[i % records.len()])
                        .with_epsilon(0.2)
                        .with_samples(20)
                        .with_seed(i as u64)
                })
                .collect(),
        );

    let submitted = Instant::now();
    let mut stream = server.submit_batch_streaming(batch).expect("stream accepted");
    println!("batch of 12 submitted; items stream back as they finish:\n");
    let mut seen = 0usize;
    while let Some(item) = stream.next_item() {
        seen += 1;
        let elapsed = submitted.elapsed().as_secs_f64() * 1e3;
        match item.outcome.released() {
            Some(release) => println!(
                "  [{elapsed:>7.2} ms] item {seen:>2} | record {:>4} | cache {} | {}",
                item.record_id,
                if release.cache_hit { "hit " } else { "miss" },
                release.predicate,
            ),
            None => println!(
                "  [{elapsed:>7.2} ms] item {seen:>2} | record {:>4} | FAILED",
                item.record_id
            ),
        }
    }

    let summary = stream.wait().expect("stream summary");
    println!(
        "\nsummary: {} released / {} failed, eps committed {:.1}, refunded {:.1}, remaining {:.1}",
        summary.released(),
        summary.failed(),
        summary.epsilon_committed,
        summary.epsilon_refunded,
        summary.remaining_budget,
    );
    assert_eq!(seen, 12, "every item must stream back");
    assert!((summary.epsilon_committed - 2.4).abs() < 1e-9);
    // Drain and join the pool first so the task counters are final.
    server.shutdown();
    let metrics = server.metrics();
    println!(
        "pool: {} resident workers, {} tasks executed ({} stolen), queue depth {}",
        metrics.pool_workers,
        metrics.pool_tasks_executed,
        metrics.pool_tasks_stolen,
        metrics.pool_queue_depth,
    );
    assert!(metrics.pool_tasks_executed >= 1);

    // The streamed batch is fully observable after the fact: its trace
    // (server → ledger → per-item session spans) and the budget audit
    // trail both live in the server's telemetry handle.
    let telemetry = server.telemetry();
    if let Some(root) =
        telemetry.sink().snapshot().iter().find(|span| span.stage == "server").cloned()
    {
        println!("\n--- trace {:#x} (batch lifecycle) ---", root.trace.0);
        print!("{}", TraceSink::render(&telemetry.sink().trace(root.trace)));
    }
    println!("\n--- budget audit trail (first 6 events) ---");
    for event in telemetry.audit().events().iter().take(6) {
        println!("  {event:?}");
    }
    println!("\n--- budget gauges from one scrape ---");
    for line in
        telemetry.render_prometheus().lines().filter(|line| line.starts_with("pcor_budget_"))
    {
        println!("{line}");
    }
}
