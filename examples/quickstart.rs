//! Quickstart: release private contexts for a contextual outlier through a
//! [`ReleaseSession`].
//!
//! This walks through the full PCOR pipeline on a small synthetic salary
//! dataset:
//!
//! 1. generate a dataset,
//! 2. bind a release session (dataset + detector + utility + seed policy),
//! 3. find a record that is a contextual outlier (under LOF),
//! 4. release contexts for it with the differentially private BFS sampler —
//!    twice, to watch the session's memoized verifier amortize the cost,
//! 5. compare the private answers to the true maximum-utility context.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example quickstart
//! ```

use pcor::prelude::*;

fn main() {
    // 1. A small synthetic version of the Ontario public-sector salary data.
    let config = SalaryConfig::reduced().with_records(4_000);
    let dataset = salary_dataset(&config).expect("dataset generation");
    println!("dataset: {} records, schema {}", dataset.len(), dataset.schema().describe());

    // 2. Bind the session once: dataset, detector, utility and seed policy.
    //    Every release drawn through the session shares the memoized
    //    verifier of its record.
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let mut session = ReleaseSession::builder(&dataset, &detector, &utility)
        .seed_policy(SeedPolicy::Derived { base: 42 })
        .build();

    // 3. Find a record that is a contextual outlier under LOF.
    let outlier = session
        .find_outliers(1, 500)
        .expect("the synthetic workload plants contextual outliers")
        .remove(0);
    let record = dataset.record(outlier.record_id);
    println!("outlier record #{}: {}", outlier.record_id, record.describe(dataset.schema()));
    println!(
        "starting context C_V: {}",
        outlier.starting_context.to_predicate_string(dataset.schema())
    );

    // 4. Release contexts with the differentially private BFS sampler at the
    //    paper's parameters (epsilon = 0.2, n = 50 samples). Each release
    //    consumes its own epsilon; the session only amortizes computation.
    let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(50);
    let first = session.release(outlier.record_id, &spec).expect("release");
    let second = session.release(outlier.record_id, &spec).expect("release");

    println!("\n=== private releases (same record, independent draws) ===");
    for (label, released) in [("first", &first), ("second", &second)] {
        println!("{label} release:");
        println!("  context: {}", released.context.to_predicate_string(dataset.schema()));
        println!("  population size (utility): {}", released.utility);
        println!("  samples collected: {}", released.samples_collected);
        println!("  fresh verification calls: {}", released.verification_calls);
        println!("  guarantee: {}", released.guarantee);
        println!("  runtime: {:.2?}", released.runtime);
    }
    println!(
        "\nThe second release replayed {} of its work from the session cache \
         ({} fresh calls vs {} on the first).",
        if second.verification_calls < first.verification_calls { "most" } else { "some" },
        second.verification_calls,
        first.verification_calls,
    );

    // 5. Compare against the non-private optimum: the session computes (and
    //    caches) the reference file on the same memoized verifier.
    let (reference_len, max_utility, first_ratio, second_ratio) = {
        let reference = session.reference(outlier.record_id, 22).expect("reference enumeration");
        (
            reference.len(),
            reference.max_utility,
            reference.utility_ratio(first.utility),
            reference.utility_ratio(second.utility),
        )
    };
    println!("\n=== comparison with the non-private optimum ===");
    println!("matching contexts: {reference_len}");
    println!("maximum utility:   {max_utility}");
    println!("utility ratios:    {first_ratio:.2} (first), {second_ratio:.2} (second)");

    let stats = session.stats();
    println!(
        "\nsession totals: {} releases, {} fresh verification calls, {} contexts memoized",
        stats.releases, stats.verification_calls, stats.cached_contexts
    );
}
