//! Quickstart: release one private context for a contextual outlier.
//!
//! This walks through the full PCOR pipeline on a small synthetic salary
//! dataset:
//!
//! 1. generate a dataset,
//! 2. find a record that is a contextual outlier (under LOF),
//! 3. release a context for it with the differentially private BFS sampler,
//! 4. compare the private answer to the true maximum-utility context.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example quickstart
//! ```

use pcor::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(42);

    // 1. A small synthetic version of the Ontario public-sector salary data.
    let config = SalaryConfig::reduced().with_records(4_000);
    let dataset = salary_dataset(&config).expect("dataset generation");
    println!("dataset: {} records, schema {}", dataset.len(), dataset.schema().describe());

    // 2. Find a record that is a contextual outlier under LOF.
    let detector = LofDetector::default();
    let outlier = find_random_outlier(&dataset, &detector, 500, &mut rng)
        .expect("the synthetic workload plants contextual outliers");
    let record = dataset.record(outlier.record_id);
    println!("outlier record #{}: {}", outlier.record_id, record.describe(dataset.schema()));
    println!(
        "starting context C_V: {}",
        outlier.starting_context.to_predicate_string(dataset.schema())
    );

    // 3. Release a context with the differentially private BFS sampler at the
    //    paper's parameters (epsilon = 0.2, n = 50 samples).
    let utility = PopulationSizeUtility;
    let pcor_config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2)
        .with_samples(50)
        .with_starting_context(outlier.starting_context.clone());
    let released =
        release_context(&dataset, outlier.record_id, &detector, &utility, &pcor_config, &mut rng)
            .expect("release");

    println!("\n=== private release ===");
    println!("context: {}", released.context.to_predicate_string(dataset.schema()));
    println!("population size (utility): {}", released.utility);
    println!("samples collected: {}", released.samples_collected);
    println!("verification calls: {}", released.verification_calls);
    println!("guarantee: {}", released.guarantee);
    println!("runtime: {:.2?}", released.runtime);

    // 4. Compare against the non-private optimum (the reference file).
    let reference = enumerate_coe(&dataset, outlier.record_id, &detector, &utility, 22)
        .expect("reference enumeration");
    println!("\n=== comparison with the non-private optimum ===");
    println!("matching contexts: {}", reference.len());
    println!("maximum utility:   {}", reference.max_utility);
    println!("utility ratio:     {:.2}", reference.utility_ratio(released.utility));
}
