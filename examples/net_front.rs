//! The PCOR server on the wire: an epoll reactor front serving framed
//! envelopes over TCP plus health and metrics over HTTP.
//!
//! One `NetFront` thread owns every connection. A small herd of analyst
//! clients connects concurrently: some stream batches item by item, some
//! pipeline singles, one walks away mid-batch (the reactor refunds the
//! unserved tail), and a probe scrapes `/healthz` and `/metrics` over
//! plain HTTP. At the end the audit log is folded to prove the hostile
//! departure leaked no ε.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example net_front
//! ```

use pcor::net::{http_get, NetClient, NetConfig, NetFront};
use pcor::prelude::*;
use pcor::service::{find_serviceable_outlier, ResponseBody, WireReply};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(2_000)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    let ledger = Arc::new(BudgetLedger::new(8.0));
    let server = Arc::new(Server::start(
        ServerConfig::default().with_workers(2).with_queue_capacity(16),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    ));

    let records: Vec<usize> = (0..3)
        .filter_map(|i| find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 50 + i))
        .collect();
    assert!(!records.is_empty(), "the synthetic workload plants outliers");

    let front = NetFront::bind(NetConfig::default(), Arc::clone(&server))
        .expect("the reactor front requires Linux epoll");
    let rpc = front.rpc_addr();
    println!("reactor listening: rpc={rpc} http={:?}", front.http_addr());

    // --- a herd of concurrent analysts ------------------------------------
    let started = Instant::now();
    let mut handles = Vec::new();
    for (i, analyst) in ["alice", "bob", "carol", "dave"].iter().enumerate() {
        let records = records.clone();
        let analyst = analyst.to_string();
        handles.push(std::thread::spawn(move || -> (usize, usize) {
            let mut client = NetClient::connect(rpc).expect("connect");
            client.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
            let batch = BatchReleaseRequest::new(&analyst, "salary")
                .with_detector(DetectorKind::ZScore)
                .with_items(
                    (0..4)
                        .map(|j| {
                            BatchItem::new(records[j % records.len()])
                                .with_epsilon(0.1)
                                .with_samples(10)
                                .with_seed((i * 10 + j) as u64)
                        })
                        .collect(),
                );
            let replies = client.call(&RequestEnvelope::batch(batch)).expect("terminal reply");
            let items = replies.iter().filter(|r| matches!(r, WireReply::Item(_))).count();
            let released = replies
                .iter()
                .filter_map(|reply| match reply {
                    WireReply::Response(envelope) => match &envelope.body {
                        ResponseBody::Batch(summary) => Some(
                            summary.items.iter().filter(|item| item.outcome.is_released()).count(),
                        ),
                        ResponseBody::Single(_) => None,
                    },
                    _ => None,
                })
                .sum();
            (items, released)
        }));
    }

    // --- one analyst walks away mid-batch ----------------------------------
    let mut deserter = NetClient::connect(rpc).expect("connect");
    deserter.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let abandoned = BatchReleaseRequest::new("mallory", "salary")
        .with_detector(DetectorKind::ZScore)
        .with_items(
            (0..6)
                .map(|j| {
                    BatchItem::new(records[j % records.len()])
                        .with_epsilon(0.1)
                        .with_samples(100)
                        .with_seed(900 + j as u64)
                })
                .collect(),
        );
    deserter.send(&RequestEnvelope::batch(abandoned)).expect("send");
    let first = deserter.recv().expect("first streamed item");
    assert!(matches!(first, WireReply::Item(_)));
    deserter.reset().expect("hard RST");
    println!("mallory deserted after 1 of 6 items (hard RST)");

    let mut total_items = 0;
    let mut total_released = 0;
    for handle in handles {
        let (items, released) = handle.join().expect("analyst thread");
        total_items += items;
        total_released += released;
    }
    println!(
        "served {total_items} streamed items ({total_released} released) to 4 analysts in {:?}",
        started.elapsed()
    );

    // --- HTTP probes --------------------------------------------------------
    let http = front.http_addr().expect("http listener is on by default");
    let (status, health) = http_get(http, "/healthz").expect("healthz");
    println!("GET /healthz -> {status} {health}");
    let (status, metrics) = http_get(http, "/metrics").expect("metrics");
    let net_series = metrics.lines().filter(|l| l.starts_with("pcor_net_")).count();
    println!("GET /metrics -> {status} ({net_series} pcor_net_* sample lines)");
    assert_eq!(status, 200);
    assert!(net_series > 0, "the scrape must export reactor series");

    // --- the desertion leaked nothing --------------------------------------
    let drain = Instant::now() + Duration::from_secs(60);
    while server.health().inflight > 0 {
        assert!(Instant::now() < drain, "server never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    let accounts = server.telemetry().audit().fold();
    let outstanding: f64 = accounts.values().map(|account| account.outstanding().abs()).sum();
    assert!(outstanding < 1e-9, "leaked {outstanding} ε");
    let mallory = ledger.spent("mallory", "salary");
    assert!(mallory < 0.6, "the deserted batch must refund its tail, spent {mallory}");
    println!("audit fold: zero outstanding epsilon across {} accounts", accounts.len());
    println!("mallory spent {mallory:.2} of 0.60 requested; the rest was refunded");

    front.shutdown();
    server.shutdown();
    println!("net front example complete");
}
