//! Multi-analyst serving: three analysts query a shared salary dataset
//! through the `pcor-service` worker pool.
//!
//! The scenario the paper implies but the one-shot API cannot express: a
//! data custodian hosts the dataset and answers contextual-outlier queries
//! from several untrusted analysts *concurrently*, metering each analyst's
//! OCDP budget across queries. This example shows:
//!
//! 1. concurrent execution — queries from all analysts interleave across
//!    the worker pool (watch the worker ids),
//! 2. per-analyst budget drawdown — every response reports the remaining ε,
//! 3. hard refusal — once an analyst's ε is exhausted the server answers
//!    nothing more for them on this dataset,
//! 4. starting-context caching — repeat queries against a record skip the
//!    expensive verified-starting-context search.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example serve_many_analysts
//! ```

use pcor::prelude::*;
use pcor::service::find_serviceable_outlier;
use std::sync::Arc;

fn main() {
    // The custodian registers the shared dataset once; analysts never touch
    // the raw records.
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(4_000)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    let stats = entry.stats();
    println!(
        "registered `salary`: {} records, {} attributes, t = {} context bits",
        stats.records, stats.attributes, stats.total_values
    );

    // Every analyst is granted eps = 1.0 on this dataset; alice gets a tight
    // eps = 0.5 so we can watch her run out.
    let ledger = Arc::new(BudgetLedger::new(1.0));
    ledger.set_grant("alice", "salary", 0.5);

    let server = Server::start(
        ServerConfig::default().with_workers(4).with_queue_capacity(64),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    );

    // Pick a couple of genuinely serviceable records (contextual outliers).
    let records: Vec<usize> = (0..4)
        .filter_map(|i| find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 100 + i))
        .collect();
    assert!(!records.is_empty(), "the synthetic workload plants outliers");
    println!("querying outlier records {records:?}\n");

    // Three analysts submit five queries each, all in flight at once.
    let analysts = ["alice", "bob", "carol"];
    let mut pending = Vec::new();
    for round in 0..5u64 {
        for (a, analyst) in analysts.iter().enumerate() {
            let request =
                ReleaseRequest::new(analyst, "salary", records[round as usize % records.len()])
                    .with_detector(DetectorKind::ZScore)
                    .with_algorithm(SamplingAlgorithm::Bfs)
                    .with_epsilon(0.2)
                    .with_samples(20)
                    .with_seed(round * 10 + a as u64);
            pending.push(server.submit(request).expect("server accepts while running"));
        }
    }

    let mut refusals = 0usize;
    for handle in pending {
        match handle.wait() {
            Ok(response) => println!(
                "[worker {}] {:<5} spent eps={:.1} -> remaining {:.1} | {:>6.2} ms | cache {} | {}",
                response.worker,
                response.analyst,
                response.epsilon_spent,
                response.remaining_budget,
                response.latency.as_secs_f64() * 1e3,
                if response.cache_hit { "hit " } else { "miss" },
                response.predicate,
            ),
            Err(ServiceError::BudgetExhausted { analyst, requested, remaining, .. }) => {
                refusals += 1;
                println!(
                    "REFUSED  {analyst:<5} requested eps={requested:.1} but only {remaining:.1} remains"
                );
            }
            Err(other) => println!("error: {other}"),
        }
    }

    // Alice asked for 5 x 0.2 = 1.0 against a grant of 0.5: the server must
    // have refused her at least twice, and must refuse her again now.
    assert!(refusals >= 2, "alice's grant only covers 2 of her 5 queries");
    let retry = ReleaseRequest::new("alice", "salary", records[0])
        .with_detector(DetectorKind::ZScore)
        .with_epsilon(0.2)
        .with_samples(20);
    match server.execute(retry) {
        Err(ServiceError::BudgetExhausted { .. }) => {
            println!("\nalice is exhausted for good: further queries are refused outright");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }

    println!("\nledger after serving:");
    for entry in ledger.snapshot() {
        println!(
            "  {:<5} @ {}: granted {:.1}, spent {:.1}, remaining {:.1}",
            entry.analyst, entry.dataset, entry.total, entry.spent, entry.remaining
        );
    }
    let metrics = server.metrics();
    let cache = registry.cache_stats();
    println!(
        "\nserved {} releases ({} refused), mean latency {:.2} ms, \
         starting-context cache: {} hits / {} misses",
        metrics.served,
        metrics.refused,
        metrics.mean_latency.as_secs_f64() * 1e3,
        cache.hits,
        cache.misses,
    );
    println!(
        "verification engine: {} fresh f_M calls ({:.1} per release), \
         verifier cache hit rate {:.0}%",
        metrics.verification_calls,
        metrics.evaluations_per_release(),
        metrics.verifier_cache_hit_rate() * 100.0,
    );
    println!(
        "runtime pool: {} resident workers, queue depth {}, \
         {} tasks executed ({} stolen)",
        metrics.pool_workers,
        metrics.pool_queue_depth,
        metrics.pool_tasks_executed,
        metrics.pool_tasks_stolen,
    );

    // The same numbers — plus budget gauges and per-stage latency
    // histograms — in one Prometheus scrape, ready for a /metrics endpoint.
    let telemetry = server.telemetry();
    println!("\n--- Prometheus scrape (excerpt) ---");
    for line in
        telemetry.render_prometheus().lines().filter(|line| !line.starts_with('#')).filter(|line| {
            line.starts_with("pcor_releases_")
                || line.starts_with("pcor_budget_")
                || line.starts_with("pcor_verifier_bytes_scanned")
                || line.starts_with("pcor_mechanism_releases")
        })
    {
        println!("{line}");
    }

    // And one full release's life, stage by stage, from the trace ring
    // buffer: server → ledger.reserve → session.release → session.verify.
    let spans = telemetry.sink().snapshot();
    if let Some(verified) = spans.iter().rev().find(|span| span.stage == "session.verify") {
        println!("\n--- trace {:#x} ---", verified.trace.0);
        print!("{}", TraceSink::render(&telemetry.sink().trace(verified.trace)));
    }
    server.shutdown();
}
