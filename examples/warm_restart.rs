//! Crash-safe serving with warm restarts: a durable server is started,
//! serves a few metered releases, shuts down — and a *second* server is
//! then opened over the same write-ahead log. The restart replays the
//! shutdown checkpoint, restores every analyst's budget to the exact
//! committed state, re-seeds the starting-context cache from the
//! checkpoint's warm state (so the first release after the restart is a
//! cache hit), and exposes the whole recovery on the Prometheus scrape as
//! `pcor_wal_*` gauges.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example warm_restart
//! ```

use pcor::prelude::*;
use pcor::service::find_serviceable_outlier;
use std::sync::Arc;

/// Registers the (deterministic) salary workload; both server generations
/// must see the identical dataset, or the warm state is refused.
fn build_registry() -> (Arc<DatasetRegistry>, Vec<usize>) {
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(1_500)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    let records: Vec<usize> = (0..3)
        .filter_map(|i| find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 100 + i))
        .collect();
    assert!(!records.is_empty(), "the synthetic workload plants outliers");
    (registry, records)
}

fn request(analyst: &str, record: usize, seed: u64) -> ReleaseRequest {
    ReleaseRequest::new(analyst, "salary", record)
        .with_detector(DetectorKind::ZScore)
        .with_algorithm(SamplingAlgorithm::Bfs)
        .with_epsilon(0.1)
        .with_samples(10)
        .with_seed(seed)
}

/// The per-account budget gauge lines of a scrape, sorted — the restart
/// must reproduce them bit-for-bit.
fn budget_gauges(scrape: &str) -> Vec<String> {
    let mut lines: Vec<String> = scrape
        .lines()
        .filter(|line| {
            line.starts_with("pcor_budget_spent_epsilon{")
                || line.starts_with("pcor_budget_remaining_epsilon{")
        })
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

fn main() {
    let wal_dir = std::env::temp_dir().join(format!("pcor-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    // ---- Generation 1: a cold start serves metered traffic. ----
    let gauges_before = {
        let (registry, records) = build_registry();
        let durable = Arc::new(
            DurableLedger::open(WalConfig::at(&wal_dir), BudgetLedger::new(1.0))
                .expect("fresh WAL opens"),
        );
        let server = Server::start_durable(
            ServerConfig::default().with_workers(2).with_queue_capacity(32),
            registry,
            durable,
        );
        for (i, analyst) in ["alice", "bob"].iter().enumerate() {
            for (j, &record) in records.iter().enumerate() {
                let response = server
                    .execute(request(analyst, record, (i * 10 + j) as u64))
                    .expect("within budget");
                println!(
                    "gen-1 {:<5} record {:>4}: spent eps=0.1 -> remaining {:.2} | cache {}",
                    response.analyst,
                    response.record_id,
                    response.remaining_budget,
                    if response.cache_hit { "hit " } else { "miss" },
                );
            }
        }
        let gauges = budget_gauges(&server.telemetry().render_prometheus());
        // Shutdown drains in-flight work and writes a final compaction
        // checkpoint: balances + warm cache state, then prunes the log.
        server.shutdown();
        println!("gen-1 shut down; WAL checkpointed at {}", wal_dir.display());
        gauges
    };

    // ---- Generation 2: a warm restart over the same log. ----
    let (registry, records) = build_registry();
    let durable = Arc::new(
        DurableLedger::open(WalConfig::at(&wal_dir), BudgetLedger::new(1.0))
            .expect("the checkpointed WAL replays"),
    );
    let report = durable.report().clone();
    println!(
        "gen-2 recovery: checkpoint={} tail_events={} accounts={} dangling_refunded={} in {:?}",
        report.from_checkpoint,
        report.events_replayed,
        report.accounts_restored,
        report.dangling_refunded,
        report.replay_duration,
    );
    let server = Server::start_durable(
        ServerConfig::default().with_workers(2).with_queue_capacity(32),
        registry,
        Arc::clone(&durable),
    );
    let (contexts, references) = durable.warm_seeded();
    println!("gen-2 warm caches: {contexts} starting contexts, {references} reference files");

    // The budget gauges must be identical across the restart: committed ε
    // is permanent, refunded ε is back, nothing is leaked either way.
    let gauges_after = budget_gauges(&server.telemetry().render_prometheus());
    assert_eq!(gauges_before, gauges_after, "restart changed a budget gauge");
    println!("budget gauges identical across restart ({} series)", gauges_after.len());

    // And the first release of the new generation is served from the warm
    // starting-context cache — no re-discovery cost after a restart.
    let response = server.execute(request("alice", records[0], 99)).expect("within budget");
    assert!(response.cache_hit, "the warmed cache must serve the first release");
    println!(
        "cache hit on the first post-restart release: remaining eps {:.2} for alice",
        response.remaining_budget
    );

    // Durability is part of the scrape: WAL health next to throughput.
    let scrape = server.telemetry().render_prometheus();
    for line in scrape.lines().filter(|line| line.starts_with("pcor_wal_")) {
        println!("{line}");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}
