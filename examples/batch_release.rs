//! Batched releases through the versioned envelope protocol.
//!
//! An analyst who wants explanations for many records — or several
//! independent draws for the same record — used to pay full verification
//! cost per request. A [`BatchReleaseRequest`] binds the dataset, detector
//! and algorithm once; the server makes **one** ledger reservation for the
//! summed ε, serves every item on **one** shared release session (so repeat
//! records replay from the memoized verifier), and resolves items
//! independently: failed items refund exactly their ε slice.
//!
//! This example demonstrates:
//!
//! 1. one batch vs. equivalent singles — compare the fresh `f_M`
//!    verification calls,
//! 2. partial failure — a non-outlier record fails inside the batch while
//!    the rest release, and its ε comes back,
//! 3. whole-batch refusal — a batch the remaining budget cannot cover is
//!    refused before any work,
//! 4. the raw envelope wire format.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example batch_release
//! ```

use pcor::prelude::*;
use pcor::service::find_serviceable_outlier;
use std::sync::Arc;

fn main() {
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(3_000)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    println!(
        "registered `salary`: {} records, t = {} context bits",
        entry.stats().records,
        entry.stats().total_values
    );

    let ledger = Arc::new(BudgetLedger::new(4.0));
    let server = Server::start(
        ServerConfig::default().with_workers(2).with_queue_capacity(32),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    );

    // Two genuinely serviceable outlier records, plus record ids we will
    // query repeatedly.
    let records: Vec<usize> = (0..2)
        .filter_map(|i| find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 50 + i))
        .collect();
    assert!(!records.is_empty(), "the synthetic workload plants outliers");
    let mix: Vec<usize> = (0..8).map(|i| records[i % records.len()]).collect();

    // --- 1. Singles vs. one batch over the same query mix. ---------------
    let mut single_calls = 0usize;
    for (i, &record_id) in mix.iter().enumerate() {
        let response = server
            .execute(
                ReleaseRequest::new("sasha", "salary", record_id)
                    .with_detector(DetectorKind::ZScore)
                    .with_epsilon(0.1)
                    .with_samples(15)
                    .with_seed(i as u64),
            )
            .expect("single release");
        single_calls += response.verification_calls;
    }

    let batch =
        BatchReleaseRequest::new("blair", "salary").with_detector(DetectorKind::ZScore).with_items(
            mix.iter()
                .enumerate()
                .map(|(i, &record_id)| {
                    BatchItem::new(record_id).with_epsilon(0.1).with_samples(15).with_seed(i as u64)
                })
                .collect(),
        );
    let response = server.execute_batch(batch).expect("batch release");
    println!(
        "\n{} singles: {} fresh f_M calls | one {}-item batch: {} fresh f_M calls",
        mix.len(),
        single_calls,
        mix.len(),
        response.verification_calls
    );
    println!(
        "batch committed eps = {:.1}, refunded eps = {:.1}, remaining budget = {:.1}",
        response.epsilon_committed, response.epsilon_refunded, response.remaining_budget
    );

    // --- 2. Partial failure: one item queries a non-outlier record. ------
    let non_outlier = (0..entry.dataset().len())
        .find(|&id| {
            !mix.contains(&id)
                && registry.starting_context(&entry, id, DetectorKind::ZScore).is_err()
        })
        .expect("most records are not contextual outliers");
    let mixed = BatchReleaseRequest::new("blair", "salary")
        .with_detector(DetectorKind::ZScore)
        .push(BatchItem::new(records[0]).with_epsilon(0.1).with_samples(15).with_seed(100))
        .push(BatchItem::new(non_outlier).with_epsilon(0.1).with_samples(15).with_seed(101))
        .push(BatchItem::new(records[0]).with_epsilon(0.1).with_samples(15).with_seed(102));
    let response = server.execute_batch(mixed).expect("mixed batch is served");
    println!("\nmixed batch: {} released, {} failed", response.released(), response.failed());
    for item in &response.items {
        match &item.outcome {
            ItemOutcome::Released(release) => println!(
                "  record {:>5} released: {} ({} fresh calls)",
                item.record_id, release.predicate, release.verification_calls
            ),
            ItemOutcome::Failed { error } => println!(
                "  record {:>5} FAILED ({error}); its eps = {:.1} was refunded",
                item.record_id, item.epsilon
            ),
        }
    }

    // --- 3. Whole-batch refusal once the budget cannot cover the sum. ----
    let greedy = BatchReleaseRequest::new("blair", "salary")
        .with_detector(DetectorKind::ZScore)
        .with_items((0..40).map(|i| BatchItem::new(records[0]).with_seed(i)).collect());
    match server.execute_batch(greedy) {
        Err(ServiceError::BudgetExhausted { requested, remaining, .. }) => println!(
            "\ngreedy batch refused whole: requested eps = {requested:.1}, \
             remaining eps = {remaining:.1} (no item ran, nothing was charged)"
        ),
        other => panic!("expected a whole-batch refusal, got {other:?}"),
    }

    // --- 4. The wire format: a versioned envelope in JSON. ---------------
    let envelope = RequestEnvelope::batch(
        BatchReleaseRequest::new("blair", "salary")
            .with_detector(DetectorKind::ZScore)
            .push(BatchItem::new(records[0]).with_epsilon(0.1)),
    );
    println!("\nwire format:\n{}", serde_json::to_string_pretty(&envelope).expect("json"));

    println!("\nledger after serving:");
    for account in ledger.snapshot() {
        println!(
            "  {:<6} @ {}: granted {:.1}, spent {:.1}, remaining {:.1}",
            account.analyst, account.dataset, account.total, account.spent, account.remaining
        );
    }
    server.shutdown();
}
