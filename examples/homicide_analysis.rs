//! Homicide-report analysis with the *overlap* utility.
//!
//! Mirrors Section 6.4 of the paper: the analyst has a context of interest
//! (the starting context `C_V`) and wants the released explanation to stay
//! close to it, so the utility of a candidate context is the overlap of its
//! population with the starting context's population rather than its raw size.
//! The workload is the synthetic homicide-report dataset (AgencyType × State ×
//! Weapon, metric VictimAge) and the detector is Grubbs' test.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example homicide_analysis
//! ```

use pcor::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(1234);

    let dataset =
        homicide_dataset(&HomicideConfig::reduced().with_records(5_000)).expect("dataset");
    let detector = GrubbsDetector::default();
    println!("dataset: {} records, {}", dataset.len(), dataset.schema().describe());

    let outlier = find_random_outlier(&dataset, &detector, 800, &mut rng).expect("outlier");
    let record = dataset.record(outlier.record_id);
    println!("outlier record #{}: {}", outlier.record_id, record.describe(dataset.schema()));
    println!(
        "analyst's context of interest (C_V): {}",
        outlier.starting_context.to_predicate_string(dataset.schema())
    );

    // Overlap utility: score candidates by how much of C_V's population they
    // retain.
    let utility = OverlapUtility::new(&dataset, outlier.starting_context.clone()).expect("utility");
    println!("population of C_V: {} records\n", utility.starting_population_size());

    // One session serves both algorithms: the second search replays every
    // context the first one already verified from the memoized cache.
    let mut session = ReleaseSession::builder(&dataset, &detector, &utility)
        .seed_policy(SeedPolicy::Derived { base: 1234 })
        .build();
    session.seed_starting_context(outlier.record_id, outlier.starting_context.clone());

    for (name, algorithm) in
        [("DP-DFS", SamplingAlgorithm::Dfs), ("DP-BFS", SamplingAlgorithm::Bfs)]
    {
        let spec = ReleaseSpec::new(algorithm, 0.2)
            .with_samples(50)
            .with_starting_context(outlier.starting_context.clone());
        let released = session.release(outlier.record_id, &spec).expect("release");
        println!("=== {name} ===");
        println!("released context: {}", released.context.to_predicate_string(dataset.schema()));
        println!(
            "overlap with C_V: {} of {} records",
            released.utility,
            utility.starting_population_size()
        );
        println!(
            "runtime: {:.2?}, samples: {}, fresh verification calls: {}\n",
            released.runtime, released.samples_collected, released.verification_calls
        );
    }

    println!(
        "Expected shape (paper, Tables 4-5): both searches stay close to the analyst's\n\
         context (high overlap ratio), with BFS slightly ahead of DFS, and both run\n\
         faster than under the population-size utility because high-overlap contexts\n\
         cluster tightly around C_V."
    );
}
