//! Privacy audit: empirically check the assumptions behind OCDP.
//!
//! Mirrors Section 6.7 of the paper. Output Constrained DP conditions the
//! guarantee on neighboring datasets having the *same* set of valid contexts
//! for the queried outlier (`COE_M(D1, V) = COE_M(D2, V)`). This example
//! measures, on a small synthetic salary workload:
//!
//! 1. how similar the COE sets of a dataset and random neighbors are, for
//!    group-privacy distances ΔD ∈ {1, 5, 10, 25} and three detectors, and
//! 2. when the sets differ, whether the Exponential-mechanism output
//!    probabilities still satisfy the `e^ε` bound for the common contexts.
//!
//! It also estimates the *locality* of matching contexts — the structural
//! property that makes graph search sampling effective (Section 5.2).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example privacy_audit
//! ```

use pcor::core::privacy::{compare_references, empirical_ratio_check, reindex_after_removal};
use pcor::graph::locality::estimate_locality;
use pcor::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(2021);
    let epsilon: f64 = 0.2;

    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(2_000)).expect("dataset");
    let utility = PopulationSizeUtility;
    println!("dataset: {} records, {}\n", dataset.len(), dataset.schema().describe());

    // --- 1. COE match under group privacy -------------------------------
    println!("COE match (Jaccard %) between D and random neighbors, 5 outliers x 5 neighbors:");
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "detector", "dD=1", "dD=5", "dD=10", "dD=25");
    for kind in DetectorKind::paper_detectors() {
        let detector = kind.build();
        let outliers = match find_random_outliers(&dataset, &detector, 5, 500, &mut rng) {
            Ok(o) => o,
            Err(_) => {
                println!("{:<12} (no contextual outliers found)", kind.to_string());
                continue;
            }
        };
        let mut row = format!("{:<12}", kind.to_string());
        for delta in [1usize, 5, 10, 25] {
            let mut total = 0.0;
            let mut count = 0usize;
            for outlier in &outliers {
                let reference =
                    enumerate_coe(&dataset, outlier.record_id, detector.as_ref(), &utility, 22)
                        .expect("reference");
                for _ in 0..5 {
                    let (neighbor, removed) = dataset
                        .random_neighbor(&mut rng, delta, &[outlier.record_id])
                        .expect("neighbor");
                    let new_id = reindex_after_removal(outlier.record_id, &removed)
                        .expect("outlier was protected");
                    let neighbor_ref =
                        enumerate_coe(&neighbor, new_id, detector.as_ref(), &utility, 22)
                            .expect("neighbor reference");
                    total += compare_references(&reference, &neighbor_ref).jaccard;
                    count += 1;
                }
            }
            row.push_str(&format!(" {:>7.1}%", 100.0 * total / count as f64));
        }
        println!("{row}");
    }

    // --- 2. Output-probability ratio check -------------------------------
    println!("\nEmpirical probability-ratio check (bound e^eps = {:.3}):", epsilon.exp());
    let detector = LofDetector::default();
    if let Ok(outlier) = find_random_outlier(&dataset, &detector, 500, &mut rng) {
        let reference =
            enumerate_coe(&dataset, outlier.record_id, &detector, &utility, 22).expect("reference");
        let mut worst: f64 = 1.0;
        for _ in 0..20 {
            let (neighbor, removed) =
                dataset.random_neighbor(&mut rng, 1, &[outlier.record_id]).expect("neighbor");
            let new_id =
                reindex_after_removal(outlier.record_id, &removed).expect("outlier protected");
            let neighbor_ref =
                enumerate_coe(&neighbor, new_id, &detector, &utility, 22).expect("neighbor ref");
            let check = empirical_ratio_check(&reference, &neighbor_ref, epsilon, 1.0)
                .expect("ratio check");
            worst = worst.max(check.max_ratio);
        }
        println!(
            "worst observed ratio over 20 neighbors: {:.4} ({})",
            worst,
            if worst <= epsilon.exp() { "within the bound" } else { "EXCEEDS the bound" }
        );
    }

    // --- 3. Locality of matching contexts --------------------------------
    println!("\nLocality of matching contexts (Section 5.2 hypothesis):");
    let detector = LofDetector::default();
    if let Ok(outlier) = find_random_outlier(&dataset, &detector, 500, &mut rng) {
        let graph = ContextGraph::for_schema(dataset.schema());
        let mut verifier =
            pcor::core::Verifier::new(&dataset, &detector, &utility, outlier.record_id);
        let estimate = estimate_locality(
            &graph,
            &outlier.starting_context,
            |c| verifier.is_matching(c).unwrap_or(false),
            2_000,
            2_000,
            &mut rng,
        );
        println!(
            "neighbor match rate {:.3} vs random match rate {:.3} -> locality ratio {:.1}x",
            estimate.neighbor_match_rate,
            estimate.random_match_rate,
            estimate.ratio()
        );
        println!(
            "locality hypothesis {}",
            if estimate.supports_locality() { "SUPPORTED" } else { "NOT supported" }
        );
    }
}
