//! Salary analysis: compare PCOR's sampling algorithms on the salary workload.
//!
//! Mirrors the scenario of Section 6.3 of the paper at laptop scale: for one
//! contextual outlier in the synthetic public-sector salary dataset, run
//! Uniform sampling, Random-Walk, DP-DFS and DP-BFS several times each and
//! report runtime and utility (normalized by the true maximum from the
//! reference file).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example salary_analysis
//! ```

use pcor::core::runner::run_repeated;
use pcor::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::time::Duration;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);

    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(3_000)).expect("dataset");
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    println!("dataset: {} records, {}", dataset.len(), dataset.schema().describe());

    let outlier = find_random_outlier(&dataset, &detector, 500, &mut rng).expect("outlier");
    println!("analysing record #{}\n", outlier.record_id);

    let reference =
        enumerate_coe(&dataset, outlier.record_id, &detector, &utility, 22).expect("reference");
    println!(
        "reference file: {} matching contexts, max utility {}\n",
        reference.len(),
        reference.max_utility
    );

    let repetitions = 10;
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "algorithm", "runs", "avg time", "avg util", "90% CI"
    );
    for algorithm in SamplingAlgorithm::sampling_algorithms() {
        let config = PcorConfig::new(algorithm, 0.2)
            .with_samples(30)
            .with_starting_context(outlier.starting_context.clone())
            .with_max_attempts(20_000);
        let runs = run_repeated(
            &dataset,
            outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&reference),
            repetitions,
            &mut rng,
        );
        match runs {
            Ok(runs) => {
                let times: Vec<Duration> = runs.iter().map(|r| r.runtime).collect();
                let ratios: Vec<f64> = runs.iter().filter_map(|r| r.utility_ratio).collect();
                let time_summary = RuntimeSummary::from_durations(&times).expect("time summary");
                let utility_summary =
                    UtilitySummary::from_ratios(&ratios).expect("utility summary");
                println!(
                    "{:<12} {:>8} {:>10} {:>10.2} {:>10}",
                    algorithm.to_string(),
                    repetitions,
                    RuntimeSummary::humanize(time_summary.avg_secs),
                    utility_summary.mean,
                    format!("({:.2},{:.2})", utility_summary.ci_lower, utility_summary.ci_upper),
                );
            }
            Err(err) => {
                println!("{:<12} failed: {err}", algorithm.to_string());
            }
        }
    }

    println!(
        "\nExpected shape (paper, Tables 2-3): RandomWalk is fastest but least accurate;\n\
         BFS and DFS recover most of the maximum utility; Uniform is the slowest for\n\
         comparable utility because matching contexts are rare among random contexts."
    );
}
