//! Mechanism ablation over one server: two analysts query the same dataset
//! through *different* DP selection mechanisms, with independent budget
//! accounting.
//!
//! The v2 protocol carries the analyst's mechanism choice in the request
//! body, so one server can serve the Exponential mechanism to one analyst
//! and permute-and-flip to another — same dataset, same ε arithmetic,
//! different selection primitive. This example shows:
//!
//! 1. per-request mechanism selection through the v2 envelope field
//!    (`ReleaseRequest::with_mechanism`),
//! 2. independent per-analyst budget drawdown — the mechanism choice never
//!    changes what a release costs,
//! 3. mechanism reporting — every response names the primitive that drew
//!    it, the guarantee records it, and the server metrics tally the mix,
//! 4. v1 back-compat — an old client's envelope (no mechanism field) is
//!    still served, through the default Exponential mechanism.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release -p pcor --example mechanism_ablation
//! ```

use pcor::dp::MechanismKind;
use pcor::prelude::*;
use pcor::service::find_serviceable_outlier;
use std::sync::Arc;

fn main() {
    let registry = Arc::new(DatasetRegistry::new());
    let dataset =
        salary_dataset(&SalaryConfig::reduced().with_records(4_000)).expect("dataset generation");
    let entry = registry.register("salary", dataset);
    println!(
        "registered `salary`: {} records, t = {} context bits",
        entry.stats().records,
        entry.stats().total_values
    );

    // Both analysts get the same grant; the mechanism choice must not
    // change what a release costs.
    let ledger = Arc::new(BudgetLedger::new(1.0));
    let server = Server::start(
        ServerConfig::default().with_workers(2).with_queue_capacity(16),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    );

    let record = find_serviceable_outlier(&entry, DetectorKind::ZScore, 400, 7)
        .expect("the synthetic workload plants outliers");
    println!("querying outlier record {record}\n");

    // Alice trusts the paper's Exponential mechanism; bob wants
    // permute-and-flip's never-worse expected utility. Same ε per query.
    let analysts = [("alice", MechanismKind::Exponential), ("bob", MechanismKind::PermuteAndFlip)];
    for round in 0..3u64 {
        for (analyst, mechanism) in analysts {
            let request = ReleaseRequest::new(analyst, "salary", record)
                .with_detector(DetectorKind::ZScore)
                .with_algorithm(SamplingAlgorithm::Bfs)
                .with_epsilon(0.2)
                .with_samples(15)
                .with_seed(0xAB1E ^ round)
                .with_mechanism(mechanism);
            match server.execute(request) {
                Ok(response) => println!(
                    "{analyst:>6} via {:<14} released {} (utility {:.0}, ε left {:.2}, {})",
                    response.mechanism.to_string(),
                    response.predicate,
                    response.utility,
                    response.remaining_budget,
                    response.guarantee,
                ),
                Err(err) => println!("{analyst:>6} refused: {err}"),
            }
        }
    }

    // A v1 client has no mechanism field at all; the server serves it with
    // the default Exponential mechanism.
    let legacy = RequestEnvelope::single(
        ReleaseRequest::new("carol", "salary", record)
            .with_detector(DetectorKind::ZScore)
            .with_samples(15)
            .with_seed(3),
    )
    .at_version(1);
    let response = server
        .submit_envelope(legacy)
        .expect("submission")
        .wait()
        .expect("v1 envelopes must still be served")
        .into_single()
        .expect("single answer");
    println!("\n carol (v1 client) served via {} — old envelopes keep working", response.mechanism);

    // Independent accounting: each analyst drew down their own grant only,
    // and the metrics report the mechanism mix.
    for analyst in ["alice", "bob", "carol"] {
        println!(
            "{analyst:>6}: spent ε = {:.2}, remaining ε = {:.2}",
            ledger.spent(analyst, "salary"),
            ledger.remaining(analyst, "salary")
        );
    }
    let tally = server.metrics().mechanism_releases;
    println!(
        "mechanism mix: Exponential x{}, PermuteAndFlip x{}, ReportNoisyMax x{}",
        tally.exponential, tally.permute_and_flip, tally.report_noisy_max
    );
    assert_eq!(tally.exponential, 4, "alice x3 + carol's v1 query");
    assert_eq!(tally.permute_and_flip, 3, "bob x3");
    assert!((ledger.spent("alice", "salary") - ledger.spent("bob", "salary")).abs() < 1e-9);

    server.shutdown();
}
