//! The write-ahead log proper: open/replay, append, fsync policies,
//! segment rotation, and checkpoint compaction.

use crate::frame::{decode_frame, encode_frame, FrameOutcome, RecordKind, MAX_RECORD_BYTES};
use crate::segment::{list_segments, segment_path, sync_dir};
use crate::{FsyncPolicy, WalError, WalOptions, WalStats};

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;

/// What [`Wal::open`] recovered from disk.
///
/// Payloads are returned raw (the WAL does not interpret them); `events`
/// holds only records physically *after* the last checkpoint, so replay
/// cost is `O(checkpoint + tail)` regardless of history length.
#[derive(Debug, Default)]
pub struct Replay {
    /// The payload of the newest checkpoint record, if any.
    pub checkpoint: Option<Vec<u8>>,
    /// Event payloads appended after the newest checkpoint, in log order.
    pub events: Vec<Vec<u8>>,
    /// Total records scanned across all retained segments.
    pub records_scanned: u64,
    /// Bytes of torn tail discarded (and truncated) during recovery.
    pub truncated_bytes: u64,
    /// Number of segments present after recovery.
    pub segments: u64,
}

struct ActiveSegment {
    file: File,
    index: u64,
    bytes: u64,
}

/// A crash-safe, append-only segmented log.
///
/// Not internally synchronized: callers that share a `Wal` across threads
/// wrap it in a `Mutex`, which also matches the intended use — appends
/// happen inside the budget-accountant critical section, so the ordering
/// of records on disk is exactly the ordering of ledger decisions.
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    active: ActiveSegment,
    unsynced: u64,
    stats: WalStats,
}

impl Wal {
    /// Opens (or creates) the log in `options.dir`, replaying whatever is
    /// on disk.
    ///
    /// Recovery scans every retained segment in order. A torn tail — an
    /// interrupted final write in the *last* segment — is truncated and
    /// recovery proceeds; a bad frame anywhere else is mid-log corruption
    /// and recovery refuses with [`WalError::Corrupt`] rather than guess
    /// at balances. Segments older than the newest checkpoint's segment
    /// are pruned (finishing any compaction a crash interrupted).
    pub fn open(options: WalOptions) -> Result<(Wal, Replay), WalError> {
        std::fs::create_dir_all(&options.dir)?;
        let mut indices = list_segments(&options.dir)?;
        let mut replay = Replay::default();
        let mut checkpoint_segment: Option<u64> = None;

        let last = indices.last().copied();
        for &index in &indices {
            let path = segment_path(&options.dir, index);
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let mut offset = 0usize;
            loop {
                match decode_frame(&bytes, offset) {
                    FrameOutcome::Clean => break,
                    FrameOutcome::Frame { kind, payload, next } => {
                        replay.records_scanned += 1;
                        match kind {
                            RecordKind::Checkpoint => {
                                replay.checkpoint = Some(payload);
                                replay.events.clear();
                                checkpoint_segment = Some(index);
                            }
                            RecordKind::Event => replay.events.push(payload),
                        }
                        offset = next;
                    }
                    FrameOutcome::Torn => {
                        if Some(index) == last {
                            let keep = offset as u64;
                            replay.truncated_bytes = bytes.len() as u64 - keep;
                            let file = OpenOptions::new().write(true).open(&path)?;
                            file.set_len(keep)?;
                            file.sync_all()?;
                            break;
                        }
                        return Err(WalError::Corrupt {
                            segment: index,
                            offset: offset as u64,
                            reason: "torn frame in a non-final segment".into(),
                        });
                    }
                    FrameOutcome::Corrupt(reason) => {
                        return Err(WalError::Corrupt {
                            segment: index,
                            offset: offset as u64,
                            reason,
                        });
                    }
                }
            }
        }

        // Finish any compaction a crash interrupted: everything strictly
        // before the checkpoint's segment is subsumed by it.
        if let Some(kept_from) = checkpoint_segment {
            let mut pruned = false;
            indices.retain(|&index| {
                if index < kept_from {
                    let _ = std::fs::remove_file(segment_path(&options.dir, index));
                    pruned = true;
                    false
                } else {
                    true
                }
            });
            if pruned {
                sync_dir(&options.dir)?;
            }
        }

        let active_index = match indices.last() {
            Some(&index) => index,
            None => {
                let index = 0;
                File::create(segment_path(&options.dir, index))?.sync_all()?;
                sync_dir(&options.dir)?;
                indices.push(index);
                index
            }
        };
        let path = segment_path(&options.dir, active_index);
        let file = OpenOptions::new().append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        replay.segments = indices.len() as u64;

        let stats = WalStats {
            segments: indices.len() as u64,
            // Count the recovered tail toward the next checkpoint so a
            // restart after a long tail compacts promptly.
            records_since_checkpoint: replay.events.len() as u64,
            ..WalStats::default()
        };
        let wal = Wal {
            dir: options.dir.clone(),
            options,
            active: ActiveSegment { file, index: active_index, bytes },
            unsynced: 0,
            stats,
        };
        Ok((wal, replay))
    }

    /// Appends one event record. `commit_point` marks records whose loss
    /// would be unacceptable under [`FsyncPolicy::OnCommit`] — the ledger
    /// passes `true` for `Committed` events, so every acknowledged spend is
    /// durable with its whole prefix while cheap bookkeeping records ride
    /// along unsynced.
    pub fn append(&mut self, payload: &[u8], commit_point: bool) -> Result<(), WalError> {
        self.write_record(RecordKind::Event, payload)?;
        let sync = match self.options.fsync {
            FsyncPolicy::EveryRecord => true,
            FsyncPolicy::EveryNRecords(n) => self.unsynced >= n.max(1),
            FsyncPolicy::OnCommit => commit_point,
        };
        if sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Writes a compaction checkpoint and prunes every older segment.
    ///
    /// The checkpoint always opens a fresh segment, is fsynced before any
    /// pruning happens, and subsumes all prior records — so a crash at any
    /// point leaves either the old log intact or the checkpoint durable
    /// (recovery finishes interrupted pruning).
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<(), WalError> {
        // Make sure nothing the checkpoint summarizes can be lost behind it.
        self.sync()?;
        self.rotate()?;
        self.write_record(RecordKind::Checkpoint, payload)?;
        self.sync()?;
        let keep = self.active.index;
        let mut pruned = false;
        for index in list_segments(&self.dir)? {
            if index < keep {
                std::fs::remove_file(segment_path(&self.dir, index))?;
                self.stats.segments = self.stats.segments.saturating_sub(1);
                pruned = true;
            }
        }
        if pruned {
            sync_dir(&self.dir)?;
        }
        self.stats.checkpoints += 1;
        self.stats.records_since_checkpoint = 0;
        Ok(())
    }

    /// Flushes buffered-but-unsynced records to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced > 0 {
            self.options.faults.io(pcor_faults::site::WAL_FSYNC)?;
            self.active.file.sync_data()?;
            self.unsynced = 0;
            self.stats.fsyncs += 1;
        }
        Ok(())
    }

    /// The fsync policy this log was opened with.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.options.fsync
    }

    /// A snapshot of the writer-side statistics.
    pub fn stats(&self) -> WalStats {
        self.stats.clone()
    }

    /// Records appended since the last checkpoint (or open).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.stats.records_since_checkpoint
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn write_record(&mut self, kind: RecordKind, payload: &[u8]) -> Result<(), WalError> {
        if payload.len() + 1 > MAX_RECORD_BYTES {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds the frame limit", payload.len()),
            )));
        }
        if kind == RecordKind::Event && self.active.bytes >= self.options.segment_max_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(payload.len() + 16);
        encode_frame(kind, payload, &mut frame);
        // One write_all straight to the file — no userspace buffering, so
        // a process abort (not just a clean drop) leaves every accepted
        // record kernel-visible, and only power loss tests the fsync
        // policy.
        let outcome = self
            .options
            .faults
            .io(pcor_faults::site::WAL_APPEND)
            .and_then(|()| self.active.file.write_all(&frame));
        if let Err(err) = outcome {
            // A failed write may have landed part of the frame. Truncate
            // back to the last accepted record so a retry appends a clean
            // frame instead of stacking a good record onto a torn one —
            // which replay would rightly refuse as mid-log corruption.
            let _ = self.active.file.set_len(self.active.bytes);
            return Err(WalError::Io(err));
        }
        self.active.bytes += frame.len() as u64;
        self.unsynced += 1;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += frame.len() as u64;
        self.stats.records_since_checkpoint += 1;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        self.sync()?;
        let index = self.active.index + 1;
        let path = segment_path(&self.dir, index);
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        file.sync_all()?;
        sync_dir(&self.dir)?;
        self.active = ActiveSegment { file, index, bytes: 0 };
        self.stats.segments += 1;
        self.stats.segments_created += 1;
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("active_segment", &self.active.index)
            .field("appended_records", &self.stats.appended_records)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pcor-wal-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> WalOptions {
        WalOptions { dir: dir.to_path_buf(), ..WalOptions::default() }
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = test_dir("roundtrip");
        {
            let (mut wal, replay) = Wal::open(opts(&dir)).unwrap();
            assert!(replay.events.is_empty());
            for i in 0..10u32 {
                wal.append(format!("event-{i}").as_bytes(), i % 3 == 0).unwrap();
            }
        }
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.events.len(), 10);
        assert_eq!(replay.events[7], b"event-7");
        assert!(replay.checkpoint.is_none());
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_monotone_segments() {
        let dir = test_dir("rotate");
        let options = WalOptions { segment_max_bytes: 64, ..opts(&dir) };
        {
            let (mut wal, _) = Wal::open(options.clone()).unwrap();
            for i in 0..20u32 {
                wal.append(format!("payload-{i:04}").as_bytes(), false).unwrap();
            }
            assert!(wal.stats().segments > 1, "64-byte segments must rotate");
        }
        let indices = list_segments(&dir).unwrap();
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        let (_, replay) = Wal::open(options).unwrap();
        assert_eq!(replay.events.len(), 20);
        assert_eq!(replay.events[19], b"payload-0019");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = test_dir("torn");
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"kept", true).unwrap();
            wal.append(b"doomed", true).unwrap();
        }
        // Chop the final record mid-frame, as a crash mid-write would.
        let path = segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();

        let (mut wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.events, vec![b"kept".to_vec()]);
        assert!(replay.truncated_bytes > 0);
        wal.append(b"after-recovery", true).unwrap();
        drop(wal);

        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.events, vec![b"kept".to_vec(), b"after-recovery".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_guess() {
        let dir = test_dir("corrupt");
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"first", true).unwrap();
            wal.append(b"second", true).unwrap();
        }
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside the first frame, with the second intact after it
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(opts(&dir)) {
            Err(WalError::Corrupt { segment: 0, .. }) => {}
            other => panic!("expected mid-log corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_trade_syncs_for_durability() {
        let dir_every = test_dir("fsync-every");
        let (mut wal, _) =
            Wal::open(WalOptions { fsync: FsyncPolicy::EveryRecord, ..opts(&dir_every) }).unwrap();
        for _ in 0..5 {
            wal.append(b"x", false).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 5);
        drop(wal);
        std::fs::remove_dir_all(&dir_every).unwrap();

        let dir_batch = test_dir("fsync-batch");
        let (mut wal, _) =
            Wal::open(WalOptions { fsync: FsyncPolicy::EveryNRecords(4), ..opts(&dir_batch) })
                .unwrap();
        for _ in 0..8 {
            wal.append(b"x", false).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 2);
        drop(wal);
        std::fs::remove_dir_all(&dir_batch).unwrap();

        let dir_commit = test_dir("fsync-commit");
        let (mut wal, _) =
            Wal::open(WalOptions { fsync: FsyncPolicy::OnCommit, ..opts(&dir_commit) }).unwrap();
        wal.append(b"reserved", false).unwrap();
        wal.append(b"reserved", false).unwrap();
        assert_eq!(wal.stats().fsyncs, 0);
        wal.append(b"committed", true).unwrap();
        assert_eq!(wal.stats().fsyncs, 1);
        drop(wal);
        std::fs::remove_dir_all(&dir_commit).unwrap();
    }

    #[test]
    fn checkpoints_compact_history_and_bound_replay() {
        let dir = test_dir("checkpoint");
        let options = WalOptions { segment_max_bytes: 128, ..opts(&dir) };
        {
            let (mut wal, _) = Wal::open(options.clone()).unwrap();
            for i in 0..50u32 {
                wal.append(format!("old-{i}").as_bytes(), false).unwrap();
            }
            wal.checkpoint(b"snapshot-at-50").unwrap();
            wal.append(b"tail-0", true).unwrap();
            wal.append(b"tail-1", true).unwrap();
            assert_eq!(wal.records_since_checkpoint(), 2);
        }
        let (_, replay) = Wal::open(options).unwrap();
        assert_eq!(replay.checkpoint.as_deref(), Some(b"snapshot-at-50".as_slice()));
        assert_eq!(replay.events, vec![b"tail-0".to_vec(), b"tail-1".to_vec()]);
        // Replay scanned only the checkpoint segment onward.
        assert!(replay.records_scanned <= 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_checkpoint_keeps_compacting_interrupted_prunes() {
        let dir = test_dir("prune");
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"ancient", true).unwrap();
            wal.checkpoint(b"cp").unwrap();
        }
        // Simulate a crash that wrote the checkpoint but not the prune:
        // resurrect an older segment index with valid content.
        let resurrected = segment_path(&dir, 0);
        let mut frame = Vec::new();
        encode_frame(RecordKind::Event, b"zombie", &mut frame);
        std::fs::write(&resurrected, &frame).unwrap();

        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.checkpoint.as_deref(), Some(b"cp".as_slice()));
        assert!(replay.events.is_empty());
        assert!(!resurrected.exists(), "open() must finish the interrupted prune");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_errors_leave_the_log_retryable() {
        use pcor_faults::{site, FaultKind, FaultPlan};
        let dir = test_dir("faults");
        let faults = FaultPlan::seeded(0).at(site::WAL_APPEND, 2, FaultKind::IoError).build();
        let (mut wal, _) =
            Wal::open(WalOptions { dir: dir.clone(), faults, ..WalOptions::default() }).unwrap();
        wal.append(b"first", true).unwrap();
        assert!(wal.append(b"doomed", true).is_err());
        assert_eq!(wal.stats().appended_records, 1);
        // The failed frame was truncated away: a retry appends cleanly and
        // replay sees a contiguous, uncorrupted log.
        wal.append(b"retried", true).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.events, vec![b"first".to_vec(), b"retried".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_are_rejected_without_touching_the_log() {
        let dir = test_dir("oversize");
        let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
        let huge = vec![0u8; MAX_RECORD_BYTES];
        assert!(wal.append(&huge, true).is_err());
        assert_eq!(wal.stats().appended_records, 0);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
