//! Segment files: naming, listing, and directory durability.
//!
//! A log directory holds segments named `wal-{index:020}.seg` with a
//! strictly monotone index, so lexicographic order *is* append order. New
//! indices never reuse old ones, even after compaction prunes a prefix —
//! replay can therefore trust that a gap in indices below the first
//! retained segment means "compacted away", while a gap between retained
//! segments means someone deleted data.

use std::io;
use std::path::{Path, PathBuf};

/// File extension of a live segment.
pub const SEGMENT_EXTENSION: &str = "seg";

const SEGMENT_PREFIX: &str = "wal-";
const INDEX_DIGITS: usize = 20;

/// Builds the path of the segment with the given index.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:0INDEX_DIGITS$}.{SEGMENT_EXTENSION}"))
}

/// Parses a segment file name back into its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(&format!(".{SEGMENT_EXTENSION}"))?;
    if stem.len() != INDEX_DIGITS || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Lists the segment indices present in `dir`, ascending.
///
/// Non-segment files are ignored so a crash-leftover temp file cannot wedge
/// recovery.
pub fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_name) {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Fsyncs the directory itself so renames/creates/deletes inside it are
/// durable. A no-op error on platforms that refuse to open directories is
/// surfaced to the caller — the workspace only targets Unix, where this
/// works.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort_in_append_order() {
        let dir = Path::new("/tmp");
        let earlier = segment_path(dir, 7);
        let later = segment_path(dir, 123);
        assert!(earlier.file_name().unwrap() < later.file_name().unwrap());
        assert_eq!(parse_segment_name(earlier.file_name().unwrap().to_str().unwrap()), Some(7));
        assert_eq!(parse_segment_name(later.file_name().unwrap().to_str().unwrap()), Some(123));
    }

    #[test]
    fn foreign_files_are_not_segments() {
        assert_eq!(parse_segment_name("wal-0000000000000000000x.seg"), None);
        assert_eq!(parse_segment_name("wal-7.seg"), None);
        assert_eq!(parse_segment_name("checkpoint.tmp"), None);
        assert_eq!(parse_segment_name("wal-00000000000000000007.log"), None);
    }
}
