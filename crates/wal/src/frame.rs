//! The on-disk record frame: `[len: u32 LE][crc: u32 LE][kind: u8][payload]`.
//!
//! `len` counts the kind byte plus the payload; `crc` is the CRC-32 (IEEE)
//! of the same bytes. A frame is *valid* only when it is fully present and
//! its checksum matches — the reader classifies anything else as either a
//! torn tail (an interrupted final write: the frame runs past the end of
//! the segment, or it is the very last thing in the segment and fails its
//! checksum) or mid-log corruption (a bad frame with intact data after it,
//! which no crash of this writer can produce).

/// Bytes of the `len` + `crc` frame header.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on `len`. Rejecting absurd lengths early keeps a torn
/// header (whose garbage `len` could point anywhere) from being chased as
/// if it were a real frame.
pub const MAX_RECORD_BYTES: usize = 1 << 26;

/// The kind tag of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An application event — the WAL's bread and butter.
    Event,
    /// A compaction checkpoint: a self-contained snapshot that subsumes
    /// every record before it.
    Checkpoint,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Event => 1,
            RecordKind::Checkpoint => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::Event),
            2 => Some(RecordKind::Checkpoint),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends one framed record to `out`.
pub fn encode_frame(kind: RecordKind, payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() + 1;
    assert!(len <= MAX_RECORD_BYTES, "record of {len} bytes exceeds the frame limit");
    out.reserve(FRAME_HEADER_BYTES + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let body_start = out.len() + 4 + 1;
    let mut crc_input = Vec::with_capacity(len);
    crc_input.push(kind.tag());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.push(kind.tag());
    out.extend_from_slice(payload);
    debug_assert_eq!(out.len(), body_start + payload.len());
}

/// The outcome of decoding the frame at one offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome {
    /// A valid frame: its kind, payload bytes and the offset just past it.
    Frame {
        /// The record's kind tag.
        kind: RecordKind,
        /// The record payload (kind byte stripped).
        payload: Vec<u8>,
        /// Offset of the next frame.
        next: usize,
    },
    /// The offset is exactly the end of the segment — a clean end.
    Clean,
    /// The bytes at the offset are an interrupted final write: the frame is
    /// incomplete, overruns the segment, or is the segment's very last
    /// frame with a bad checksum. Recovery truncates the segment here.
    Torn,
    /// A bad frame with intact data after it — this writer never produces
    /// that shape, so the segment is corrupt (bit rot, external edits).
    Corrupt(String),
}

/// Decodes the frame starting at `offset` of `bytes`.
pub fn decode_frame(bytes: &[u8], offset: usize) -> FrameOutcome {
    let remaining = bytes.len() - offset;
    if remaining == 0 {
        return FrameOutcome::Clean;
    }
    if remaining < FRAME_HEADER_BYTES {
        return FrameOutcome::Torn;
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_RECORD_BYTES || len > remaining - FRAME_HEADER_BYTES {
        // A garbage or overrunning length: a torn header write. If real
        // data followed, the CRC path below would have caught a clean
        // frame instead, so this is only ever the end of the segment.
        return FrameOutcome::Torn;
    }
    let body = &bytes[offset + FRAME_HEADER_BYTES..offset + FRAME_HEADER_BYTES + len];
    let next = offset + FRAME_HEADER_BYTES + len;
    if crc32(body) != crc {
        // A fully-present frame with a bad checksum: a torn payload write
        // when nothing follows it, corruption when something does.
        return if next == bytes.len() {
            FrameOutcome::Torn
        } else {
            FrameOutcome::Corrupt(format!("checksum mismatch at offset {offset}"))
        };
    }
    match RecordKind::from_tag(body[0]) {
        Some(kind) => FrameOutcome::Frame { kind, payload: body[1..].to_vec(), next },
        None => {
            FrameOutcome::Corrupt(format!("unknown record kind {} at offset {offset}", body[0]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        encode_frame(RecordKind::Event, b"hello", &mut buf);
        encode_frame(RecordKind::Checkpoint, b"", &mut buf);
        let first = decode_frame(&buf, 0);
        let FrameOutcome::Frame { kind, payload, next } = first else {
            panic!("expected a frame, got {first:?}");
        };
        assert_eq!(kind, RecordKind::Event);
        assert_eq!(payload, b"hello");
        let second = decode_frame(&buf, next);
        let FrameOutcome::Frame { kind, payload, next } = second else {
            panic!("expected a frame, got {second:?}");
        };
        assert_eq!(kind, RecordKind::Checkpoint);
        assert!(payload.is_empty());
        assert_eq!(decode_frame(&buf, next), FrameOutcome::Clean);
    }

    #[test]
    fn every_truncation_of_the_final_frame_is_torn() {
        let mut buf = Vec::new();
        encode_frame(RecordKind::Event, b"first", &mut buf);
        let prefix = buf.len();
        encode_frame(RecordKind::Event, b"second record payload", &mut buf);
        for cut in prefix + 1..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], prefix),
                FrameOutcome::Torn,
                "cut at {cut} must read as a torn tail"
            );
        }
    }

    #[test]
    fn a_bad_frame_with_data_after_it_is_corruption() {
        let mut buf = Vec::new();
        encode_frame(RecordKind::Event, b"first", &mut buf);
        encode_frame(RecordKind::Event, b"second", &mut buf);
        // Flip a payload byte of the *first* frame: its checksum fails while
        // the second frame is intact after it.
        buf[FRAME_HEADER_BYTES + 2] ^= 0x40;
        assert!(matches!(decode_frame(&buf, 0), FrameOutcome::Corrupt(_)));
    }

    #[test]
    fn a_bad_final_checksum_is_a_torn_tail() {
        let mut buf = Vec::new();
        encode_frame(RecordKind::Event, b"only", &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert_eq!(decode_frame(&buf, 0), FrameOutcome::Torn);
    }

    #[test]
    fn unknown_kind_tags_are_corruption() {
        let mut buf = Vec::new();
        let body = [9u8, b'x'];
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(decode_frame(&buf, 0), FrameOutcome::Corrupt(_)));
    }
}
