//! `pcor-wal` — a crash-safe, append-only write-ahead log for the PCOR
//! serving stack.
//!
//! The differential-privacy budget is the one piece of state the service
//! must never lose: forgetting how much ε an analyst has spent silently
//! resets their privacy guarantee. This crate provides the durability
//! primitive the `pcor-service` ledger journals through:
//!
//! * **Framed records** ([`frame`]): every record is
//!   `[len][crc32][kind][payload]`; a checksum makes torn writes and bit
//!   rot detectable instead of silently believable.
//! * **Segments** ([`segment`]): the log is a directory of
//!   `wal-{index:020}.seg` files with monotone indices; rotation bounds
//!   file sizes and makes compaction a matter of deleting whole files.
//! * **Fsync policies** ([`FsyncPolicy`]): from every-record paranoia to
//!   syncing only at commit points, chosen per deployment.
//! * **Recovery** ([`Wal::open`]): replays all retained records, truncates
//!   a torn tail (an interrupted final write), and refuses mid-log
//!   corruption with [`WalError::Corrupt`] rather than invent balances.
//! * **Checkpoints** ([`Wal::checkpoint`]): a self-contained snapshot
//!   record opens a fresh segment and prunes everything older, so replay
//!   is `O(checkpoint + tail)` instead of `O(history)`.
//!
//! Everything is hand-rolled on `std` — no network, no external crates —
//! matching the workspace's vendored-offline policy. The crate stores and
//! returns opaque byte payloads; serialization of `BudgetEvent`s and
//! ledger snapshots lives with their owning crates.
//!
//! # Example
//!
//! ```
//! use pcor_wal::{FsyncPolicy, Wal, WalOptions};
//!
//! let dir = std::env::temp_dir().join(format!("pcor-wal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let options = WalOptions { dir: dir.clone(), fsync: FsyncPolicy::OnCommit, ..Default::default() };
//!
//! let (mut wal, _) = Wal::open(options.clone()).unwrap();
//! wal.append(b"reserved 0.5", false).unwrap();
//! wal.append(b"committed 0.5", true).unwrap(); // commit point: fsynced
//! drop(wal);
//!
//! let (_, replay) = Wal::open(options).unwrap();
//! assert_eq!(replay.events.len(), 2);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod group;
pub mod log;
pub mod segment;

pub use frame::{crc32, RecordKind, FRAME_HEADER_BYTES, MAX_RECORD_BYTES};
pub use group::{CommitTicket, GroupWal};
pub use log::{Replay, Wal};

use pcor_faults::Faults;
use std::path::PathBuf;

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: maximum durability, one disk flush per
    /// ledger event.
    EveryRecord,
    /// `fsync` once every `n` records: bounded loss window of at most
    /// `n − 1` records on power failure. `n = 0` behaves like `1`.
    EveryNRecords(u64),
    /// `fsync` only at commit points (records appended with
    /// `commit_point = true`): every acknowledged spend is durable with
    /// its whole prefix, while reserve/refund bookkeeping between commits
    /// may be lost — which recovery treats as "never happened", refunding
    /// nothing that was never durably reserved.
    OnCommit,
}

impl FsyncPolicy {
    /// The short lowercase name used in metrics and bench tables.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::EveryRecord => "every_record",
            FsyncPolicy::EveryNRecords(_) => "every_n",
            FsyncPolicy::OnCommit => "on_commit",
        }
    }
}

/// Configuration for opening a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Directory holding the segment files; created if absent.
    pub dir: PathBuf,
    /// When records are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the active one reaches this many
    /// bytes. One oversized record may exceed it; the next append rotates.
    pub segment_max_bytes: u64,
    /// Fault-injection handle consulted before every record write
    /// ([`pcor_faults::site::WAL_APPEND`]) and fsync
    /// ([`pcor_faults::site::WAL_FSYNC`]). The disabled default costs one
    /// branch per seam.
    pub faults: Faults,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            dir: PathBuf::from("pcor-wal"),
            fsync: FsyncPolicy::OnCommit,
            segment_max_bytes: 8 * 1024 * 1024,
            faults: Faults::disabled(),
        }
    }
}

/// Writer-side statistics, cheap to clone out for metrics export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appended_records: u64,
    /// Frame bytes appended since open.
    pub appended_bytes: u64,
    /// `fsync` calls issued since open.
    pub fsyncs: u64,
    /// Segments currently retained on disk.
    pub segments: u64,
    /// Segments created by rotation since open.
    pub segments_created: u64,
    /// Checkpoints written since open.
    pub checkpoints: u64,
    /// Records appended since the last checkpoint (seeded with the
    /// recovered tail length at open).
    pub records_since_checkpoint: u64,
}

/// Errors surfaced by the log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A retained segment holds a bad frame that is not a torn tail —
    /// recovery refuses to guess at balances past it.
    Corrupt {
        /// Index of the offending segment.
        segment: u64,
        /// Byte offset of the first bad frame within that segment.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(err) => write!(f, "wal i/o error: {err}"),
            WalError::Corrupt { segment, offset, reason } => {
                write!(f, "wal corrupt at segment {segment} offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(err) => Some(err),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err)
    }
}
