//! Cross-request group commit: concurrent `OnCommit` appends share one
//! fsync.
//!
//! Under [`FsyncPolicy::OnCommit`] the bare
//! [`Wal`] fsyncs inside every commit-point append. When appends happen
//! inside a ledger's critical section that serializes every committer —
//! the intended deployment — each commit therefore pays a full fsync while
//! every other request waits on the lock: durability cost scales linearly
//! with commit rate.
//!
//! [`GroupWal`] splits the append from the flush. [`GroupWal::append`]
//! writes the frame (still serialized, still in ledger order) but defers
//! the commit fsync, returning a [`CommitTicket`] naming the record to
//! await. [`GroupWal::wait_durable`] — called *outside* the ledger lock —
//! runs the classic leader/follower protocol: the first waiter becomes the
//! leader and fsyncs the high watermark; every committer whose record
//! landed before that fsync is satisfied by it. Concurrent commits thus
//! coalesce into one `fdatasync`, and the fsync no longer blocks the
//! ledger lock at all.
//!
//! The acknowledgment contract is unchanged: a commit is reported durable
//! only after an fsync covering its record has returned, so
//! `OnCommit`'s guarantee — every acknowledged spend durable with its
//! whole prefix — holds exactly as before. Policies other than `OnCommit`
//! keep their inline syncs and always return an empty ticket.

use crate::{FsyncPolicy, Wal, WalError, WalStats};
use std::sync::{Condvar, Mutex};

/// What a committer must await before acknowledging: the sequence number
/// (1-based append count) of its commit record, or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitTicket(Option<u64>);

impl CommitTicket {
    /// The empty ticket: nothing to await.
    pub const NONE: CommitTicket = CommitTicket(None);

    /// Whether durability is still pending on this ticket.
    pub fn pending(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Default)]
struct SyncState {
    /// High watermark of durably synced records.
    synced: u64,
    /// Whether a leader is currently running an fsync.
    syncing: bool,
    /// The last fsync failure, cleared by the next success; waiting
    /// followers surface it instead of spinning on a broken disk.
    failure: Option<String>,
}

/// A [`Wal`] shared across threads with group-committed fsyncs.
pub struct GroupWal {
    wal: Mutex<Wal>,
    /// `true` under `OnCommit`: commit fsyncs are deferred to
    /// [`GroupWal::wait_durable`]. Other policies sync inline as always.
    defer_commit_sync: bool,
    state: Mutex<SyncState>,
    synced: Condvar,
}

impl GroupWal {
    /// Wraps an opened log. The wrapping is total: the `Wal` is only
    /// reachable through the group's locking from here on.
    pub fn new(wal: Wal) -> Self {
        let defer_commit_sync = matches!(wal.fsync_policy(), FsyncPolicy::OnCommit);
        GroupWal {
            wal: Mutex::new(wal),
            defer_commit_sync,
            state: Mutex::new(SyncState::default()),
            synced: Condvar::new(),
        }
    }

    /// Appends one record. Under `OnCommit`, a commit point is written but
    /// *not* fsynced; the returned ticket must be passed to
    /// [`GroupWal::wait_durable`] before the commit is acknowledged.
    ///
    /// # Errors
    /// Propagates the underlying [`Wal::append`] failure; nothing is
    /// awaitable after an error.
    pub fn append(&self, payload: &[u8], commit_point: bool) -> Result<CommitTicket, WalError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        if self.defer_commit_sync {
            wal.append(payload, false)?;
            if commit_point {
                return Ok(CommitTicket(Some(wal.stats().appended_records)));
            }
            Ok(CommitTicket::NONE)
        } else {
            wal.append(payload, commit_point)?;
            Ok(CommitTicket::NONE)
        }
    }

    /// Blocks until the ticket's record is durable. The first waiter
    /// becomes the fsync leader; waiters whose records its flush covered
    /// return without issuing their own.
    ///
    /// # Errors
    /// The leader's fsync failure, surfaced to every waiter it stranded.
    pub fn wait_durable(&self, ticket: CommitTicket) -> Result<(), WalError> {
        let Some(seq) = ticket.0 else {
            return Ok(());
        };
        let mut state = self.state.lock().expect("group state poisoned");
        loop {
            if state.synced >= seq {
                return Ok(());
            }
            if !state.syncing {
                state.syncing = true;
                drop(state);
                // Leader: one fsync covers everything appended so far.
                let outcome = {
                    let mut wal = self.wal.lock().expect("wal poisoned");
                    let high = wal.stats().appended_records;
                    wal.sync().map(|()| high)
                };
                state = self.state.lock().expect("group state poisoned");
                state.syncing = false;
                let result = match outcome {
                    Ok(high) => {
                        state.synced = state.synced.max(high);
                        state.failure = None;
                        Ok(())
                    }
                    Err(err) => {
                        state.failure = Some(err.to_string());
                        Err(err)
                    }
                };
                self.synced.notify_all();
                if result.is_err() || state.synced >= seq {
                    return result;
                }
            } else {
                state = self.synced.wait(state).expect("group state poisoned");
                if state.synced < seq {
                    if let Some(message) = state.failure.clone() {
                        return Err(WalError::Io(std::io::Error::other(message)));
                    }
                }
            }
        }
    }

    /// Fsyncs everything appended so far, unconditionally — the
    /// open/shutdown barrier.
    ///
    /// # Errors
    /// The underlying [`Wal::sync`] failure.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut state = self.state.lock().expect("group state poisoned");
        let outcome = {
            let mut wal = self.wal.lock().expect("wal poisoned");
            let high = wal.stats().appended_records;
            wal.sync().map(|()| high)
        };
        match outcome {
            Ok(high) => {
                state.synced = state.synced.max(high);
                state.failure = None;
                self.synced.notify_all();
                Ok(())
            }
            Err(err) => Err(err),
        }
    }

    /// Writes a checkpoint (which internally syncs everything first) and
    /// advances the durable watermark accordingly.
    ///
    /// # Errors
    /// The underlying [`Wal::checkpoint`] failure.
    pub fn checkpoint(&self, payload: &[u8]) -> Result<(), WalError> {
        let mut state = self.state.lock().expect("group state poisoned");
        let outcome = {
            let mut wal = self.wal.lock().expect("wal poisoned");
            wal.checkpoint(payload).map(|()| wal.stats().appended_records)
        };
        match outcome {
            Ok(high) => {
                state.synced = state.synced.max(high);
                state.failure = None;
                self.synced.notify_all();
                Ok(())
            }
            Err(err) => Err(err),
        }
    }

    /// A snapshot of the wrapped log's writer-side statistics.
    pub fn stats(&self) -> WalStats {
        self.wal.lock().expect("wal poisoned").stats()
    }
}

impl std::fmt::Debug for GroupWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("group state poisoned");
        f.debug_struct("GroupWal")
            .field("defer_commit_sync", &self.defer_commit_sync)
            .field("synced", &state.synced)
            .field("syncing", &state.syncing)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WalOptions;
    use pcor_faults::{site, FaultKind, FaultPlan};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    fn test_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("pcor-groupwal-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn concurrent_commits_coalesce_into_one_fsync() {
        let dir = test_dir("coalesce");
        let (wal, _) = Wal::open(WalOptions { dir: dir.clone(), ..Default::default() }).unwrap();
        let group = Arc::new(GroupWal::new(wal));
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let group = Arc::clone(&group);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let payload = format!("commit-{worker}");
                    let ticket = group.append(payload.as_bytes(), true).unwrap();
                    assert!(ticket.pending());
                    // Every record is on disk before anyone flushes: the
                    // first leader's fsync must cover all of them.
                    barrier.wait();
                    group.wait_durable(ticket).unwrap();
                });
            }
        });
        let stats = group.stats();
        assert_eq!(stats.appended_records, threads as u64);
        assert_eq!(stats.fsyncs, 1, "{threads} barrier-aligned commits must share one fsync");
        drop(group);
        let (_, replay) = Wal::open(WalOptions { dir: dir.clone(), ..Default::default() }).unwrap();
        assert_eq!(replay.events.len(), threads);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_commit_appends_return_empty_tickets() {
        let dir = test_dir("tickets");
        let (wal, _) = Wal::open(WalOptions { dir: dir.clone(), ..Default::default() }).unwrap();
        let group = GroupWal::new(wal);
        let reserved = group.append(b"reserved", false).unwrap();
        assert!(!reserved.pending());
        group.wait_durable(reserved).unwrap();
        assert_eq!(group.stats().fsyncs, 0, "a non-commit must not flush anything");
        let committed = group.append(b"committed", true).unwrap();
        group.wait_durable(committed).unwrap();
        assert_eq!(group.stats().fsyncs, 1);
        // Waiting twice on the same ticket is satisfied without a new sync.
        group.wait_durable(committed).unwrap();
        assert_eq!(group.stats().fsyncs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inline_policies_keep_their_per_append_syncs() {
        let dir = test_dir("inline");
        let (wal, _) = Wal::open(WalOptions {
            dir: dir.clone(),
            fsync: crate::FsyncPolicy::EveryRecord,
            ..Default::default()
        })
        .unwrap();
        let group = GroupWal::new(wal);
        let ticket = group.append(b"record", true).unwrap();
        assert!(!ticket.pending(), "inline policies never defer");
        assert_eq!(group.stats().fsyncs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_failed_group_fsync_surfaces_to_the_waiter_and_recovers() {
        let dir = test_dir("failure");
        let faults = FaultPlan::seeded(0).at(site::WAL_FSYNC, 1, FaultKind::IoError).build();
        let (wal, _) =
            Wal::open(WalOptions { dir: dir.clone(), faults, ..Default::default() }).unwrap();
        let group = GroupWal::new(wal);
        let ticket = group.append(b"commit", true).unwrap();
        assert!(group.wait_durable(ticket).is_err(), "the injected fsync error must surface");
        // The record is still in the log; the next flush succeeds.
        group.wait_durable(ticket).unwrap();
        assert_eq!(group.stats().appended_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
