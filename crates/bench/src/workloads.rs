//! Workload construction shared by all experiments.
//!
//! A workload bundles a synthetic dataset, one confirmed contextual outlier
//! (with its starting context) and, when the schema is small enough, the
//! reference file (`COE_M` with utilities) used to normalize utility.

use crate::config::ExperimentScale;
use crate::{BenchError, Result};
use pcor_core::runner::{find_random_outlier, OutlierQuery};
use pcor_core::{enumerate_coe, ReferenceFile};
use pcor_data::generator::{homicide_dataset, salary_dataset, HomicideConfig, SalaryConfig};
use pcor_data::Dataset;
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::OutlierDetector;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Which evaluation dataset a workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The Ontario public-sector salary workload (reduced schema, t = 14).
    Salary,
    /// The homicide-report workload (reduced schema, t = 12).
    Homicide,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Salary => write!(f, "salary"),
            WorkloadKind::Homicide => write!(f, "homicide"),
        }
    }
}

/// A ready-to-measure workload.
pub struct Workload {
    /// Which dataset family this is.
    pub kind: WorkloadKind,
    /// The synthetic dataset.
    pub dataset: Dataset,
    /// The queried outlier and its starting context.
    pub outlier: OutlierQuery,
    /// The reference file (population-size utility) for utility normalization.
    pub reference: ReferenceFile,
}

impl Workload {
    /// Builds the workload: generates the dataset, finds a contextual outlier
    /// for `detector`, and enumerates its reference file.
    ///
    /// # Errors
    /// Returns [`BenchError::NoOutlierFound`] when the detector flags nothing
    /// in the generated data, and propagates enumeration errors.
    pub fn build(
        kind: WorkloadKind,
        scale: &ExperimentScale,
        detector: &dyn OutlierDetector,
    ) -> Result<Self> {
        let dataset = match kind {
            WorkloadKind::Salary => {
                salary_dataset(&SalaryConfig::reduced().with_records(scale.salary_records))?
            }
            WorkloadKind::Homicide => {
                homicide_dataset(&HomicideConfig::reduced().with_records(scale.homicide_records))?
            }
        };
        let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0xA11CE);
        let outlier = find_random_outlier(&dataset, detector, 2_000, &mut rng)
            .map_err(|_| BenchError::NoOutlierFound)?;
        let reference =
            enumerate_coe(&dataset, outlier.record_id, detector, &PopulationSizeUtility, 22)?;
        Ok(Workload { kind, dataset, outlier, reference })
    }

    /// A deterministic RNG derived from the scale seed and a label, so each
    /// experiment gets its own reproducible stream.
    pub fn rng(scale: &ExperimentScale, label: &str) -> ChaCha12Rng {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        ChaCha12Rng::seed_from_u64(scale.seed ^ hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_outlier::LofDetector;

    #[test]
    fn salary_workload_builds_with_a_valid_outlier() {
        let scale = ExperimentScale::smoke();
        let detector = LofDetector::default();
        let w = Workload::build(WorkloadKind::Salary, &scale, &detector).unwrap();
        assert_eq!(w.kind, WorkloadKind::Salary);
        assert_eq!(w.dataset.len(), scale.salary_records);
        assert!(!w.reference.is_empty());
        assert!(w.dataset.covers(&w.outlier.starting_context, w.outlier.record_id).unwrap());
        assert_eq!(WorkloadKind::Salary.to_string(), "salary");
    }

    #[test]
    fn homicide_workload_builds() {
        let scale = ExperimentScale::smoke();
        let detector = LofDetector::default();
        let w = Workload::build(WorkloadKind::Homicide, &scale, &detector).unwrap();
        assert_eq!(w.dataset.len(), scale.homicide_records);
        assert_eq!(WorkloadKind::Homicide.to_string(), "homicide");
    }

    #[test]
    fn derived_rngs_are_label_dependent_and_reproducible() {
        use rand::Rng;
        let scale = ExperimentScale::smoke();
        let mut a1 = Workload::rng(&scale, "table2");
        let mut a2 = Workload::rng(&scale, "table2");
        let mut b = Workload::rng(&scale, "table3");
        let x1: u64 = a1.random();
        let x2: u64 = a2.random();
        let y: u64 = b.random();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }
}
