//! # pcor-bench
//!
//! Experiment harness reproducing the evaluation section of the PCOR paper
//! (SIGMOD 2021): every table (2–13) and figure (1–5) has a corresponding
//! experiment module, and the `reproduce` binary prints paper-style tables for
//! any subset of them.
//!
//! The paper's experiments ran on a 132-core, 1 TB machine over 51 k–110 k
//! record datasets with 200 repetitions per configuration; the reproduction
//! defaults to a laptop-scale configuration ([`config::ExperimentScale::quick`])
//! that preserves the *shape* of every result (which algorithm wins, by
//! roughly what factor, how the trends move with `ε` and `n`). The full-scale
//! settings are available through [`config::ExperimentScale::paper`] for
//! anyone with the patience.
//!
//! See `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md` (paper vs.
//! measured numbers) at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_probe;
pub mod config;
pub mod experiments;
pub mod measure;
pub mod membw;
pub mod report;
pub mod workloads;

pub use config::ExperimentScale;
pub use report::{Histogram, Table};

/// Errors produced by the experiment harness.
#[derive(Debug)]
pub enum BenchError {
    /// An error bubbled up from the PCOR core.
    Pcor(pcor_core::PcorError),
    /// An error from the statistics substrate (summaries).
    Stats(pcor_stats::StatsError),
    /// An error from the data substrate (generators).
    Data(pcor_data::DataError),
    /// The harness could not find a suitable outlier record in the workload.
    NoOutlierFound,
    /// An error from the serving layer (`pcor-service`).
    Service(String),
    /// I/O error while persisting results.
    Io(std::io::Error),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Pcor(e) => write!(f, "pcor error: {e}"),
            BenchError::Stats(e) => write!(f, "stats error: {e}"),
            BenchError::Data(e) => write!(f, "data error: {e}"),
            BenchError::NoOutlierFound => write!(f, "no contextual outlier found in the workload"),
            BenchError::Service(msg) => write!(f, "service error: {msg}"),
            BenchError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<pcor_core::PcorError> for BenchError {
    fn from(e: pcor_core::PcorError) -> Self {
        BenchError::Pcor(e)
    }
}
impl From<pcor_stats::StatsError> for BenchError {
    fn from(e: pcor_stats::StatsError) -> Self {
        BenchError::Stats(e)
    }
}
impl From<pcor_data::DataError> for BenchError {
    fn from(e: pcor_data::DataError) -> Self {
        BenchError::Data(e)
    }
}
impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Convenience result alias for the harness.
pub type Result<T> = std::result::Result<T, BenchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_wrap_and_display() {
        let e: BenchError = pcor_core::PcorError::NoMatchingContext.into();
        assert!(e.to_string().contains("pcor error"));
        let e: BenchError = pcor_stats::StatsError::EmptyInput.into();
        assert!(e.to_string().contains("stats error"));
        let e: BenchError = pcor_data::DataError::EmptySchema.into();
        assert!(e.to_string().contains("data error"));
        let e: BenchError = std::io::Error::other("x").into();
        assert!(e.to_string().contains("io error"));
        let e = BenchError::Service("queue full".into());
        assert!(e.to_string().contains("service error: queue full"));
        assert!(BenchError::NoOutlierFound.to_string().contains("outlier"));
    }
}
