//! Shared measurement loop: run one algorithm repeatedly and summarize
//! runtime (min/max/avg) and utility (mean + 90% CI), the way every table in
//! the paper reports results.

use crate::Result;
use pcor_core::runner::{run_repeated, RunMeasurement};
use pcor_core::{PcorConfig, ReferenceFile};
use pcor_data::Dataset;
use pcor_dp::Utility;
use pcor_outlier::OutlierDetector;
use pcor_stats::{RuntimeSummary, UtilitySummary};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of one experiment cell (one algorithm / parameter setting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Runtime summary over the repetitions.
    pub runtime: RuntimeSummary,
    /// Utility-ratio summary over the repetitions (absent when no reference
    /// file was supplied).
    pub utility: Option<UtilitySummary>,
    /// The raw per-repetition utility ratios (for the figure histograms).
    pub utility_ratios: Vec<f64>,
    /// The raw per-repetition runtimes in seconds (for the figure histograms).
    pub runtimes_secs: Vec<f64>,
    /// Average number of `f_M` verification calls per repetition.
    pub avg_verification_calls: f64,
}

/// Runs `repetitions` releases of `config` and summarizes them.
///
/// # Errors
/// Propagates release and summary errors.
#[allow(clippy::too_many_arguments)]
pub fn measure_cell<R: Rng + ?Sized>(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    config: &PcorConfig,
    reference: Option<&ReferenceFile>,
    repetitions: usize,
    rng: &mut R,
) -> Result<CellSummary> {
    let runs: Vec<RunMeasurement> =
        run_repeated(dataset, outlier_id, detector, utility, config, reference, repetitions, rng)?;
    summarize(&runs)
}

/// Summarizes a set of measured releases.
///
/// # Errors
/// Returns a stats error for an empty run list.
pub fn summarize(runs: &[RunMeasurement]) -> Result<CellSummary> {
    let durations: Vec<Duration> = runs.iter().map(|r| r.runtime).collect();
    let runtime = RuntimeSummary::from_durations(&durations)?;
    let utility_ratios: Vec<f64> = runs.iter().filter_map(|r| r.utility_ratio).collect();
    let utility = if utility_ratios.len() >= 2 {
        Some(UtilitySummary::from_ratios(&utility_ratios)?)
    } else {
        None
    };
    let avg_verification_calls =
        runs.iter().map(|r| r.verification_calls as f64).sum::<f64>() / runs.len().max(1) as f64;
    Ok(CellSummary {
        runtime,
        utility,
        runtimes_secs: runs.iter().map(|r| r.runtime.as_secs_f64()).collect(),
        utility_ratios,
        avg_verification_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::workloads::{Workload, WorkloadKind};
    use pcor_core::SamplingAlgorithm;
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::LofDetector;

    #[test]
    fn measure_cell_produces_consistent_summaries() {
        let scale = ExperimentScale::smoke();
        let detector = LofDetector::default();
        let workload = Workload::build(WorkloadKind::Salary, &scale, &detector).unwrap();
        let utility = PopulationSizeUtility;
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, scale.epsilon)
            .with_samples(scale.samples)
            .with_starting_context(workload.outlier.starting_context.clone());
        let mut rng = Workload::rng(&scale, "measure-test");
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&workload.reference),
            scale.repetitions,
            &mut rng,
        )
        .unwrap();
        assert_eq!(cell.utility_ratios.len(), scale.repetitions);
        assert_eq!(cell.runtimes_secs.len(), scale.repetitions);
        let summary = cell.utility.unwrap();
        assert!(summary.mean > 0.0 && summary.mean <= 1.0 + 1e-9);
        assert!(cell.runtime.min_secs <= cell.runtime.avg_secs);
        assert!(cell.runtime.avg_secs <= cell.runtime.max_secs);
        assert!(cell.avg_verification_calls >= 1.0);
    }

    #[test]
    fn summarize_rejects_empty_input() {
        assert!(summarize(&[]).is_err());
    }
}
