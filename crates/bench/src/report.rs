//! Result presentation: paper-style tables and ASCII histograms (figures).

use serde::{Deserialize, Serialize};

/// A simple column-aligned table, mirroring the layout of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Title, e.g. `"Table 2: Sampling Methods Comparison - Performance"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        widths
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "{}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        writeln!(f, "  {}", header_line.join("  "))?;
        writeln!(f, "  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
                })
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// An ASCII histogram of a sample, standing in for the distribution plots of
/// Figures 1–5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Title, e.g. `"Figure 1(d): BFS utility distribution"`.
    pub title: String,
    /// Bin lower edges.
    pub edges: Vec<f64>,
    /// Bin counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins over
    /// `[min, max]` of the data (a single-bin histogram for constant data).
    pub fn from_values(title: impl Into<String>, values: &[f64], bins: usize) -> Self {
        let title = title.into();
        if values.is_empty() || bins == 0 {
            return Histogram { title, edges: vec![], counts: vec![] };
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = if max > min { (max - min) / bins as f64 } else { 1.0 };
        let mut counts = vec![0usize; bins];
        for &v in values {
            let idx = (((v - min) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
        }
        let edges = (0..bins).map(|i| min + i as f64 * width).collect();
        Histogram { title, edges, counts }
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (edge, &count) in self.edges.iter().zip(&self.counts) {
            let bar_len = (count * 40).div_ceil(max_count);
            writeln!(f, "  {:>10.3} | {:<40} {}", edge, "#".repeat(bar_len.min(40)), count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Table X: demo", &["Algorithm", "Tavg", "Utility"]);
        t.push_row(vec!["BFS".into(), "37m".into(), "0.90".into()]);
        t.push_row(vec!["RandomWalk".into(), "51s".into(), "0.57".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let rendered = t.to_string();
        assert!(rendered.contains("Table X: demo"));
        assert!(rendered.contains("Algorithm"));
        assert!(rendered.contains("RandomWalk"));
        // Columns are padded to the widest cell.
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    fn empty_table_is_just_headers() {
        let t = Table::new("Empty", &["A", "B"]);
        assert!(t.is_empty());
        let rendered = t.to_string();
        assert!(rendered.contains('A') && rendered.contains('B'));
    }

    #[test]
    fn histogram_counts_and_renders() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_values("Figure demo", &values, 10);
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts.len(), 10);
        assert!(h.counts.iter().all(|&c| c == 10));
        let rendered = h.to_string();
        assert!(rendered.contains("Figure demo"));
        assert!(rendered.contains('#'));
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let h = Histogram::from_values("empty", &[], 5);
        assert_eq!(h.total(), 0);
        let h = Histogram::from_values("constant", &[3.0; 7], 4);
        assert_eq!(h.total(), 7);
        let h = Histogram::from_values("no bins", &[1.0], 0);
        assert_eq!(h.total(), 0);
    }
}
