//! Wire-front throughput: the epoll reactor under a herd of pipelining
//! analyst connections.
//!
//! Not a paper experiment — this measures the `pcor-net` subsystem: one
//! reactor thread multiplexing `connections` concurrent TCP clients, each
//! keeping `in-flight` framed envelopes pipelined on its connection.
//! Reported per (connections × in-flight) cell: wall time, answered
//! frames/second through the reactor, the p99 send→terminal-reply round
//! trip, and the shed rate (envelopes refused at admission with a
//! retryable error — the back-pressure path working as designed, not a
//! failure).

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_core::runner::find_random_outliers;
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_net::{NetClient, NetConfig, NetFront};
use pcor_outlier::DetectorKind;
use pcor_service::{
    BudgetLedger, DatasetRegistry, ReleaseRequest, RequestEnvelope, Server, ServerConfig, WireReply,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::ExperimentOutput;

/// Concurrent connection counts compared.
const CONNECTIONS: [usize; 3] = [4, 16, 64];
/// Pipelined envelopes kept in flight per connection.
const IN_FLIGHT: [usize; 2] = [1, 4];
/// Server-side worker pool and admission queue behind the reactor.
const WORKERS: usize = 4;
const QUEUE: usize = 64;

/// Runs the reactor throughput grid.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers; reactor and socket failures surface as
/// [`BenchError::Service`]. Requires Linux (the reactor is epoll-based).
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(scale.salary_records))?;
    let detector = DetectorKind::ZScore;
    let built = detector.build();
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0x0EAC707);
    let outliers = find_random_outliers(&dataset, built.as_ref(), 4, 2_000, &mut rng)
        .map_err(|_| BenchError::NoOutlierFound)?;
    let records: Vec<usize> = outliers.iter().map(|q| q.record_id).collect();

    // Rounds of `in-flight` envelopes per connection; bounded so the worst
    // grid cell stays minutes even at paper scale.
    let rounds = scale.repetitions.clamp(2, 8);
    let mut table = Table::new(
        format!(
            "Reactor wire front: pipelined envelopes (BFS, eps = {}, n = {}, {} workers, queue {})",
            scale.epsilon, scale.samples, WORKERS, QUEUE
        ),
        &["Conns", "In-flight", "Envelopes", "Wall (ms)", "Frames/s", "p99 RTT (ms)", "Shed %"],
    );

    for &conns in &CONNECTIONS {
        for &inflight in &IN_FLIGHT {
            // Fresh server and reactor per cell: identical work, cold cache.
            let registry = Arc::new(DatasetRegistry::new());
            registry.register("salary", dataset.clone());
            let ledger = Arc::new(BudgetLedger::new(f64::MAX / 2.0));
            let server = Arc::new(Server::start(
                ServerConfig::default().with_workers(WORKERS).with_queue_capacity(QUEUE),
                registry,
                ledger,
            ));
            let front = NetFront::bind(
                NetConfig::default().with_http_addr(None).with_max_inflight(inflight.max(1)),
                Arc::clone(&server),
            )
            .map_err(|e| BenchError::Service(format!("reactor bind: {e}")))?;
            let addr = front.rpc_addr();

            let started = Instant::now();
            let mut handles = Vec::with_capacity(conns);
            for conn in 0..conns {
                let records = records.clone();
                let epsilon = scale.epsilon;
                let samples = scale.samples;
                let seed = scale.seed;
                handles.push(std::thread::spawn(
                    move || -> std::io::Result<(Vec<Duration>, usize)> {
                        let mut client = NetClient::connect(addr)?;
                        client.set_read_timeout(Some(Duration::from_secs(300)))?;
                        let mut latencies = Vec::with_capacity(rounds * inflight);
                        let mut shed = 0;
                        for round in 0..rounds {
                            let window_start = Instant::now();
                            for slot in 0..inflight {
                                let i = (round * inflight + slot) as u64;
                                let request = ReleaseRequest::new(
                                    &format!("analyst-{conn}"),
                                    "salary",
                                    records[(conn + round + slot) % records.len()],
                                )
                                .with_detector(DetectorKind::ZScore)
                                .with_epsilon(epsilon)
                                .with_samples(samples)
                                .with_seed(seed ^ (conn as u64) << 16 ^ i);
                                client.send(&RequestEnvelope::single(request))?;
                            }
                            for _ in 0..inflight {
                                match client.recv()? {
                                    WireReply::Response(_) => {}
                                    WireReply::Error(error) if error.is_backpressure() => shed += 1,
                                    other => {
                                        return Err(std::io::Error::other(format!(
                                            "unexpected reply {other:?}"
                                        )))
                                    }
                                }
                                latencies.push(window_start.elapsed());
                            }
                        }
                        Ok((latencies, shed))
                    },
                ));
            }

            let mut latencies = Vec::new();
            let mut shed = 0usize;
            for handle in handles {
                let (conn_latencies, conn_shed) = handle
                    .join()
                    .map_err(|_| BenchError::Service("client thread panicked".to_string()))?
                    .map_err(|e| BenchError::Service(format!("client io: {e}")))?;
                latencies.extend(conn_latencies);
                shed += conn_shed;
            }
            let wall = started.elapsed();
            front.shutdown();
            server.shutdown();

            let envelopes = latencies.len();
            latencies.sort_unstable();
            let p99 = latencies[((envelopes as f64 * 0.99) as usize).min(envelopes - 1)];
            table.push_row(vec![
                conns.to_string(),
                inflight.to_string(),
                envelopes.to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                format!("{:.1}", envelopes as f64 / wall.as_secs_f64()),
                format!("{:.2}", p99.as_secs_f64() * 1e3),
                format!("{:.1}", 100.0 * shed as f64 / envelopes as f64),
            ]);
        }
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn smoke_scale_produces_the_full_grid() {
        let mut scale = ExperimentScale::smoke();
        scale.repetitions = 2;
        scale.samples = 4;
        let output = run(&scale).expect("net experiment");
        assert_eq!(output.tables.len(), 1);
        assert_eq!(output.tables[0].rows.len(), CONNECTIONS.len() * IN_FLIGHT.len());
        for row in &output.tables[0].rows {
            assert_eq!(row.len(), 7);
            let frames: f64 = row[4].parse().unwrap();
            assert!(frames > 0.0, "frames/s must be positive, got {frames}");
            let shed: f64 = row[6].parse().unwrap();
            assert!((0.0..=100.0).contains(&shed));
        }
    }
}
