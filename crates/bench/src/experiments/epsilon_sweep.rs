//! Tables 8–9 and Figure 4: the privacy / utility / performance trade-off.
//! PCOR-BFS with LOF, sweeping the total budget `ε ∈ {0.05, 0.1, 0.2, 0.4}`.

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::{Histogram, Table};
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::LofDetector;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// The ε values swept in the paper.
pub const EPSILONS: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// Runs the ε sweep.
///
/// # Errors
/// Propagates workload-construction and measurement errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let mut rng = Workload::rng(scale, "tables-8-9");

    let mut performance = Table::new(
        "Table 8: Effect of privacy parameter on performance",
        &["eps", "Tmin", "Tmax", "Tavg", "Sampling", "Outlier"],
    );
    let mut utility_table = Table::new(
        "Table 9: Effect of privacy parameter on utility",
        &["eps", "Utility", "CI", "Sampling", "Outlier"],
    );
    let mut output = ExperimentOutput::default();

    for epsilon in EPSILONS {
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, epsilon)
            .with_samples(scale.samples)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&workload.reference),
            scale.repetitions,
            &mut rng,
        )?;
        performance.push_row(vec![
            format!("{epsilon}"),
            RuntimeSummary::humanize(cell.runtime.min_secs),
            RuntimeSummary::humanize(cell.runtime.max_secs),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            "BFS".into(),
            "LOF".into(),
        ]);
        if let Some(summary) = &cell.utility {
            utility_table.push_row(vec![
                format!("{epsilon}"),
                format!("{:.2}", summary.mean),
                format!("({:.2}, {:.2})", summary.ci_lower, summary.ci_upper),
                "BFS".into(),
                "LOF".into(),
            ]);
        }
        output.figures.push(Histogram::from_values(
            format!("Figure 4: eps = {epsilon} utility-ratio distribution"),
            &cell.utility_ratios,
            10,
        ));
    }

    output.tables.push(performance);
    output.tables.push(utility_table);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_sweep_covers_all_four_budgets() {
        let output = run(&ExperimentScale::smoke()).unwrap();
        assert_eq!(output.tables[0].len(), 4);
        assert_eq!(output.figures.len(), 4);
        assert!(output.to_string().contains("Table 8"));
        assert!(output.to_string().contains("0.05"));
    }
}
