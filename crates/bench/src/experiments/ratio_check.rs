//! Section 6.7 (second experiment): the empirical output-probability ratio
//! check. For neighboring datasets whose COE sets are *not* identical, verify
//! that the Exponential-mechanism probabilities of the common contexts still
//! stay within the unconstrained `e^ε` DP bound.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::workloads::Workload;
use crate::Result;
use pcor_core::enumerate_coe;
use pcor_core::privacy::{empirical_ratio_check, reindex_after_removal};
use pcor_core::runner::find_random_outliers;
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::DetectorKind;

use super::ExperimentOutput;

/// Runs the ratio check on the reduced salary workload for all three paper
/// detectors.
///
/// # Errors
/// Propagates generation/enumeration errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(scale.salary_records))?;
    let utility = PopulationSizeUtility;
    let mut rng = Workload::rng(scale, "ratio-check");
    let epsilon = scale.epsilon;

    let mut table = Table::new(
        format!(
            "Section 6.7: empirical probability-ratio check (bound e^eps = {:.3})",
            epsilon.exp()
        ),
        &["Algorithm", "Outliers", "Neighbors", "Max ratio", "Within bound"],
    );

    for kind in DetectorKind::paper_detectors() {
        let detector = kind.build();
        let outliers = match find_random_outliers(
            &dataset,
            detector.as_ref(),
            scale.coe_outliers,
            3_000,
            &mut rng,
        ) {
            Ok(o) => o,
            Err(_) => {
                table.push_row(vec![
                    kind.to_string(),
                    "0".into(),
                    "0".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
                continue;
            }
        };
        let mut worst: f64 = 1.0;
        let mut neighbors_checked = 0usize;
        let mut all_hold = true;
        for outlier in &outliers {
            let reference =
                enumerate_coe(&dataset, outlier.record_id, detector.as_ref(), &utility, 22)?;
            for _ in 0..scale.coe_neighbors {
                let (neighbor, removed) = dataset
                    .random_neighbor(&mut rng, 1, &[outlier.record_id])
                    .map_err(pcor_core::PcorError::from)?;
                let new_id = reindex_after_removal(outlier.record_id, &removed)
                    .expect("outlier record is protected");
                let neighbor_ref =
                    enumerate_coe(&neighbor, new_id, detector.as_ref(), &utility, 22)?;
                let check = empirical_ratio_check(&reference, &neighbor_ref, epsilon, 1.0)?;
                worst = worst.max(check.max_ratio);
                all_hold &= check.holds;
                neighbors_checked += 1;
            }
        }
        table.push_row(vec![
            kind.to_string(),
            outliers.len().to_string(),
            neighbors_checked.to_string(),
            format!("{worst:.4}"),
            if all_hold { "yes".into() } else { "NO".into() },
        ]);
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_check_stays_within_the_bound_on_the_smoke_scale() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).unwrap();
        let table = &output.tables[0];
        assert_eq!(table.len(), 3);
        for row in &table.rows {
            // Whenever the experiment ran, the bound must hold (column 5).
            if row[4] != "n/a" {
                assert_eq!(row[4], "yes", "ratio bound violated for {}", row[0]);
                let ratio: f64 = row[3].parse().unwrap();
                assert!(ratio >= 1.0);
                assert!(ratio <= scale.epsilon.exp() + 1e-6);
            }
        }
    }
}
