//! WAL durability: append throughput per fsync policy, replay cost vs
//! event count, and the checkpoint's tail-bounding effect.
//!
//! Not a paper experiment — it characterizes the crash-safe budget ledger
//! (`pcor-service::DurableLedger` over `pcor-wal`) added for warm
//! restarts. Two questions matter operationally:
//!
//! 1. **What does durability cost on the write path?** Appending the same
//!    budget-event records under each [`FsyncPolicy`]: `every_record` is
//!    the upper bound (one `fdatasync` per acknowledged record),
//!    `every_n` amortizes, `on_commit` (the default) syncs only at commit
//!    points — the two-phase protocol's natural durability boundary.
//! 2. **What does recovery cost on startup?** Replay is linear in the
//!    events scanned, so an uncheckpointed log replays its whole history
//!    while a checkpointed one replays `O(checkpoint + tail)`. The sweep
//!    measures both on the same history; the summary reports the
//!    speedup. Results land in `BENCH_wal.json` via `reproduce --json`.
//! 3. **Does group commit pay under concurrency?** Concurrent committers
//!    drive reserve/commit pairs through the [`DurableLedger`] with the
//!    leader/follower fsync coalescing on and off; the off rows are the
//!    pre-group in-lock-fsync baseline.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_service::{BudgetLedger, DurableLedger, WalConfig};
use pcor_telemetry::BudgetEvent;
use pcor_wal::{FsyncPolicy, Wal, WalOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A fresh scratch directory under the system temp root.
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pcor-bench-wal-{tag}-{}-{unique}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_error(err: pcor_wal::WalError) -> BenchError {
    BenchError::Service(format!("wal: {err}"))
}

fn service_error(err: pcor_service::ServiceError) -> BenchError {
    BenchError::Service(err.to_string())
}

/// One reserve/commit event pair, serialized exactly as the journal writes
/// them (JSON with the audit seq baked in).
fn event_pair(seq: u64, trace: u64) -> [String; 2] {
    let reserved = BudgetEvent::Reserved {
        seq,
        analyst: format!("analyst-{}", trace % 7),
        dataset: "salary".to_string(),
        epsilon: 0.25,
        mechanism: Some("exponential".to_string()),
        trace,
    };
    let committed = BudgetEvent::Committed {
        seq: seq + 1,
        analyst: format!("analyst-{}", trace % 7),
        dataset: "salary".to_string(),
        epsilon: 0.25,
        mechanism: Some("exponential".to_string()),
        trace,
    };
    [
        serde_json::to_string(&reserved).expect("events serialize"),
        serde_json::to_string(&committed).expect("events serialize"),
    ]
}

/// Appends `records` budget events (reserve/commit pairs; the commit is
/// the commit point) under `policy`, returning (records/sec, fsyncs,
/// bytes).
fn measure_append(records: usize, policy: FsyncPolicy) -> Result<(f64, u64, u64)> {
    let dir = scratch_dir("append");
    let options = WalOptions { dir: dir.clone(), fsync: policy, ..WalOptions::default() };
    let (mut wal, _) = Wal::open(options).map_err(wal_error)?;
    let started = Instant::now();
    for pair in 0..(records as u64 / 2) {
        let [reserved, committed] = event_pair(pair * 2, pair + 1);
        wal.append(reserved.as_bytes(), false).map_err(wal_error)?;
        wal.append(committed.as_bytes(), true).map_err(wal_error)?;
    }
    wal.sync().map_err(wal_error)?;
    let elapsed = started.elapsed().as_secs_f64();
    let stats = wal.stats();
    drop(wal);
    std::fs::remove_dir_all(&dir).map_err(|e| BenchError::Service(e.to_string()))?;
    Ok((stats.appended_records as f64 / elapsed.max(1e-12), stats.fsyncs, stats.appended_bytes))
}

/// Builds a log of `events` raw journal records (fast, minimal syncing),
/// ready for replay measurement.
fn build_history(dir: &Path, events: usize) -> Result<()> {
    let options = WalOptions {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::EveryNRecords(1 << 20),
        ..WalOptions::default()
    };
    let (mut wal, _) = Wal::open(options).map_err(wal_error)?;
    for pair in 0..(events as u64 / 2) {
        let [reserved, committed] = event_pair(pair * 2, pair + 1);
        wal.append(reserved.as_bytes(), false).map_err(wal_error)?;
        wal.append(committed.as_bytes(), false).map_err(wal_error)?;
    }
    wal.sync().map_err(wal_error)?;
    Ok(())
}

/// Drives `committers` threads through a [`DurableLedger`], each issuing
/// `pairs` reserve/commit pairs, and returns (commits/sec, fsyncs).
///
/// With `group_commit` the journal coalesces concurrent commit fsyncs
/// through the [`GroupWal`](pcor_wal::GroupWal) leader/follower protocol;
/// without it every committer syncs inside the journal lock — the
/// pre-group baseline.
fn measure_group_commit(committers: usize, pairs: usize, group_commit: bool) -> Result<(f64, u64)> {
    let dir = scratch_dir("group");
    let config = WalConfig {
        group_commit,
        // No auto-checkpoints: the measurement is pure append + fsync.
        checkpoint_interval: 0,
        ..WalConfig::at(dir.clone())
    };
    let durable = DurableLedger::open(config, BudgetLedger::new(1e9)).map_err(service_error)?;
    let started = Instant::now();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..committers)
            .map(|worker| {
                let durable = &durable;
                scope.spawn(move || -> Result<()> {
                    let ledger = durable.ledger();
                    let analyst = format!("committer-{worker}");
                    for i in 0..pairs as u64 {
                        let trace = (worker as u64) * pairs as u64 + i + 1;
                        let r = ledger
                            .reserve_traced(&analyst, "salary", 0.25, trace, None)
                            .map_err(service_error)?;
                        ledger.commit(r);
                    }
                    Ok(())
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("committer thread panicked")?;
        }
        Ok::<(), BenchError>(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    let commits = (committers * pairs) as f64;
    let committed: f64 = durable.ledger().snapshot().iter().map(|entry| entry.spent).sum();
    if (committed - 0.25 * commits).abs() > 1e-6 {
        return Err(BenchError::Service(format!(
            "group-commit ledger committed {committed}, expected {}",
            0.25 * commits
        )));
    }
    let fsyncs = durable.wal_stats().fsyncs;
    drop(durable);
    std::fs::remove_dir_all(&dir).map_err(|e| BenchError::Service(e.to_string()))?;
    Ok((commits / elapsed.max(1e-12), fsyncs))
}

/// Opens the log and returns (events replayed, replay seconds, committed ε
/// across all accounts — the correctness digest).
fn measure_replay(dir: &Path) -> Result<(usize, f64, f64)> {
    let durable = DurableLedger::open(WalConfig::at(dir.to_path_buf()), BudgetLedger::new(1e9))
        .map_err(service_error)?;
    let report = durable.report();
    let committed: f64 = durable.ledger().snapshot().iter().map(|entry| entry.spent).sum();
    Ok((report.events_replayed, report.replay_duration.as_secs_f64().max(1e-9), committed))
}

/// Runs the WAL durability experiment.
///
/// # Errors
/// Returns [`BenchError::Service`] on WAL failures or when a replayed
/// balance diverges from the appended history.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let (append_records, replay_sweep, tail_events, committer_sweep, commit_pairs): (
        usize,
        &[usize],
        usize,
        &[usize],
        usize,
    ) = if scale.salary_records < 2_000 {
        (600, &[600, 2_400], 24, &[1, 4], 40)
    } else {
        (8_000, &[4_000, 16_000, 64_000], 64, &[1, 4, 8], 250)
    };

    // ---- Append throughput per fsync policy. ----
    let mut append_table = Table::new(
        format!(
            "WAL append throughput per fsync policy ({append_records} budget events, \
             reserve/commit pairs; commit = commit point)"
        ),
        &["Policy", "records/sec", "fsyncs", "bytes", "MB/s"],
    );
    let policies =
        [FsyncPolicy::EveryRecord, FsyncPolicy::EveryNRecords(64), FsyncPolicy::OnCommit];
    for policy in policies {
        let (rate, fsyncs, bytes) = measure_append(append_records, policy)?;
        let mbps = bytes as f64 / (append_records as f64 / rate.max(1e-12)) / 1e6;
        append_table.push_row(vec![
            policy.name().to_string(),
            format!("{rate:.0}"),
            fsyncs.to_string(),
            bytes.to_string(),
            format!("{mbps:.2}"),
        ]);
    }

    // ---- Replay cost vs event count, with and without a checkpoint. ----
    let mut replay_table = Table::new(
        "WAL replay on startup: full history vs checkpoint + tail".to_string(),
        &["events in log", "Variant", "events replayed", "replay ms", "events/sec"],
    );
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for &events in replay_sweep {
        let dir = scratch_dir("replay");
        build_history(&dir, events)?;
        let expected_committed = 0.25 * (events / 2) as f64;

        // Cold: every event of the history is scanned and folded.
        let (replayed, full_seconds, committed) = measure_replay(&dir)?;
        if replayed != events {
            return Err(BenchError::Service(format!(
                "replay scanned {replayed} of {events} events"
            )));
        }
        if (committed - expected_committed).abs() > 1e-6 {
            return Err(BenchError::Service(format!(
                "replayed balance {committed} diverged from appended history \
                 {expected_committed}"
            )));
        }
        replay_table.push_row(vec![
            events.to_string(),
            "full replay".to_string(),
            replayed.to_string(),
            format!("{:.3}", full_seconds * 1e3),
            format!("{:.0}", replayed as f64 / full_seconds),
        ]);

        // Checkpoint the same history, land a small tail after it, replay
        // again: the scan is now bounded by the tail, not the history.
        {
            let durable = DurableLedger::open(WalConfig::at(dir.clone()), BudgetLedger::new(1e9))
                .map_err(service_error)?;
            durable.checkpoint(None).map_err(service_error)?;
            let ledger = durable.ledger();
            for t in 0..(tail_events as u64 / 2) {
                let r = ledger
                    .reserve_traced("tail-analyst", "salary", 0.25, 1_000_000 + t, None)
                    .map_err(service_error)?;
                ledger.commit(r);
            }
        }
        let (tail_replayed, tail_seconds, tail_committed) = measure_replay(&dir)?;
        if tail_replayed != tail_events {
            return Err(BenchError::Service(format!(
                "checkpointed replay scanned {tail_replayed} events, expected the \
                 {tail_events}-event tail"
            )));
        }
        let expected_total = expected_committed + 0.25 * (tail_events / 2) as f64;
        if (tail_committed - expected_total).abs() > 1e-6 {
            return Err(BenchError::Service(format!(
                "checkpointed balance {tail_committed} diverged from {expected_total}"
            )));
        }
        replay_table.push_row(vec![
            events.to_string(),
            format!("checkpoint + {tail_events}-event tail"),
            tail_replayed.to_string(),
            format!("{:.3}", tail_seconds * 1e3),
            format!("{:.0}", tail_replayed as f64 / tail_seconds),
        ]);
        speedups.push((events, full_seconds / tail_seconds));
        std::fs::remove_dir_all(&dir).map_err(|e| BenchError::Service(e.to_string()))?;
    }

    let mut summary = Table::new(
        "WAL recovery summary (checkpoint compaction effect)",
        &["events in log", "full-replay / checkpointed-replay time"],
    );
    for (events, speedup) in speedups {
        summary.push_row(vec![events.to_string(), format!("{speedup:.1}x")]);
    }

    // ---- Cross-request group commit vs in-lock fsync. ----
    let mut group_table = Table::new(
        format!(
            "Group commit: concurrent committers through the durable ledger \
             ({commit_pairs} reserve/commit pairs per committer, fsync on commit)"
        ),
        &["committers", "Variant", "commits/sec", "fsyncs"],
    );
    for &committers in committer_sweep {
        for group in [true, false] {
            let (rate, fsyncs) = measure_group_commit(committers, commit_pairs, group)?;
            group_table.push_row(vec![
                committers.to_string(),
                if group { "group commit" } else { "in-lock fsync" }.to_string(),
                format!("{rate:.0}"),
                fsyncs.to_string(),
            ]);
        }
    }

    Ok(ExperimentOutput {
        tables: vec![append_table, replay_table, summary, group_table],
        ..ExperimentOutput::default()
    })
}

use super::ExperimentOutput;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_experiment_reports_policies_and_tail_bounded_replay() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).expect("wal experiment");
        assert_eq!(output.tables.len(), 4);
        // 3 fsync policies.
        assert_eq!(output.tables[0].rows.len(), 3);
        for row in &output.tables[0].rows {
            let rate: f64 = row[1].parse().unwrap();
            assert!(rate > 0.0, "policy {} reported no throughput", row[0]);
        }
        // 2 sweep points x 2 variants; the checkpointed variant replays
        // exactly the tail (the load-bearing durability claim — replay is
        // O(checkpoint + tail), already hard-checked inside `run`).
        assert_eq!(output.tables[1].rows.len(), 4);
        for row in output.tables[1].rows.chunks(2) {
            let full: usize = row[0][2].parse().unwrap();
            let tail: usize = row[1][2].parse().unwrap();
            assert!(tail < full, "the checkpoint must bound the replayed tail");
        }
        assert_eq!(output.tables[2].rows.len(), 2);
        // 2 committer counts x {group commit, in-lock fsync}; every
        // variant moves commits (the ε digest is hard-checked inside
        // `run`, so a passing row proves zero lost commits too).
        assert_eq!(output.tables[3].rows.len(), 4);
        for row in &output.tables[3].rows {
            let rate: f64 = row[2].parse().unwrap();
            assert!(rate > 0.0, "{} committers ({}) reported no throughput", row[0], row[1]);
        }
    }
}
