//! Tables 12–13: COE match between a dataset and its neighbors at group
//! privacy distances ΔD ∈ {1, 5, 10, 25}, for the Grubbs, LOF and Histogram
//! detectors, on the reduced salary (Table 12) and homicide (Table 13)
//! workloads.
//!
//! The paper does not spell out its set-match measure; we report the Jaccard
//! similarity `|COE(D) ∩ COE(D')| / |COE(D) ∪ COE(D')|` (documented in
//! EXPERIMENTS.md), which equals 100% exactly when the OCDP assumption
//! `COE(D) = COE(D')` holds.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::workloads::Workload;
use crate::Result;
use pcor_core::enumerate_coe;
use pcor_core::privacy::{compare_references, reindex_after_removal};
use pcor_core::runner::find_random_outliers;
use pcor_data::generator::{homicide_dataset, salary_dataset, HomicideConfig, SalaryConfig};
use pcor_data::Dataset;
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::DetectorKind;

use super::ExperimentOutput;

/// Group-privacy distances reported in the paper.
pub const DELTAS: [usize; 4] = [1, 5, 10, 25];

/// Table 12: the salary dataset.
///
/// # Errors
/// Propagates generation/enumeration errors.
pub fn run_salary(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(scale.salary_records))?;
    run_for(scale, &dataset, "Table 12: COE Match - Salary dataset", "coe-salary")
}

/// Table 13: the homicide dataset.
///
/// # Errors
/// Propagates generation/enumeration errors.
pub fn run_homicide(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset =
        homicide_dataset(&HomicideConfig::reduced().with_records(scale.homicide_records))?;
    run_for(scale, &dataset, "Table 13: COE Match - Homicide dataset", "coe-homicide")
}

fn run_for(
    scale: &ExperimentScale,
    dataset: &Dataset,
    title: &str,
    rng_label: &str,
) -> Result<ExperimentOutput> {
    let utility = PopulationSizeUtility;
    let mut rng = Workload::rng(scale, rng_label);
    let mut table = Table::new(title, &["Algorithm", "dD=1", "dD=5", "dD=10", "dD=25"]);

    for kind in DetectorKind::paper_detectors() {
        let detector = kind.build();
        let outliers = match find_random_outliers(
            dataset,
            detector.as_ref(),
            scale.coe_outliers,
            3_000,
            &mut rng,
        ) {
            Ok(o) => o,
            Err(_) => {
                table.push_row(vec![
                    kind.to_string(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
                continue;
            }
        };
        let mut row = vec![kind.to_string()];
        for delta in DELTAS {
            let mut total = 0.0;
            let mut count = 0usize;
            for outlier in &outliers {
                let reference =
                    enumerate_coe(dataset, outlier.record_id, detector.as_ref(), &utility, 22)?;
                for _ in 0..scale.coe_neighbors {
                    let (neighbor, removed) = dataset
                        .random_neighbor(&mut rng, delta, &[outlier.record_id])
                        .map_err(pcor_core::PcorError::from)?;
                    let new_id = reindex_after_removal(outlier.record_id, &removed)
                        .expect("the outlier record is protected from removal");
                    let neighbor_ref =
                        enumerate_coe(&neighbor, new_id, detector.as_ref(), &utility, 22)?;
                    total += compare_references(&reference, &neighbor_ref).jaccard;
                    count += 1;
                }
            }
            row.push(format!("{:.1}%", 100.0 * total / count.max(1) as f64));
        }
        table.push_row(row);
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salary_coe_match_reports_three_detectors_and_four_deltas() {
        let output = run_salary(&ExperimentScale::smoke()).unwrap();
        assert_eq!(output.tables.len(), 1);
        let table = &output.tables[0];
        assert_eq!(table.len(), 3);
        assert_eq!(table.headers.len(), 5);
        assert!(table.title.contains("Table 12"));
        // Every populated cell is a percentage between 0 and 100.
        for row in &table.rows {
            for cell in &row[1..] {
                if cell != "n/a" {
                    let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                    assert!((0.0..=100.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn single_record_neighbors_match_better_than_distant_ones() {
        // The qualitative trend of Tables 12-13: dD = 1 matches at least as
        // well as dD = 25 on average.
        let output = run_salary(&ExperimentScale::smoke()).unwrap();
        let table = &output.tables[0];
        let mut near_total = 0.0;
        let mut far_total = 0.0;
        let mut rows = 0.0;
        for row in &table.rows {
            if row[1] == "n/a" || row[4] == "n/a" {
                continue;
            }
            near_total += row[1].trim_end_matches('%').parse::<f64>().unwrap();
            far_total += row[4].trim_end_matches('%').parse::<f64>().unwrap();
            rows += 1.0;
        }
        if rows > 0.0 {
            assert!(near_total / rows + 1e-9 >= far_total / rows);
        }
    }
}
