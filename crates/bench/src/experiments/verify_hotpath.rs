//! Verify-hotpath: throughput and allocation profile of one `f_M`
//! verification call, before and after the incremental engine.
//!
//! Not a paper experiment — the paper's runtime numbers are essentially
//! counts of `f_M` evaluations, and this measures what one evaluation costs
//! on each engine generation while walking the context graph by single-bit
//! flips (the access pattern of BFS, DFS, random walk and the Gray-code
//! enumeration):
//!
//! * **from-scratch (seed)** — the historical engine, replicated verbatim:
//!   `Dataset::population` allocates two fresh bitmaps and re-runs the
//!   OR/AND pass over every attribute, the population is popcounted twice
//!   (utility + size), and a fresh metrics `Vec` is gathered through the
//!   per-`Record` indirection before the detector re-scans it;
//! * **scratch reuse** — `Dataset::population_into` on a
//!   [`PopulationScratch`] plus the columnar metric gather: same passes,
//!   zero allocation;
//! * **incremental cursor** — the new engine: a [`PopulationCursor`]
//!   advancing by one flip (one attribute-block union update + one fused
//!   AND/popcount pass) and the detector answered from single-pass
//!   shifted population moments, exactly as `pcor_core::Verifier`
//!   evaluates;
//! * **incremental sharded** — the same cursor with the fused pass forcibly
//!   sharded across scoped threads. Bit-identical by construction; at
//!   laptop-scale `n` the spawn overhead dominates (the auto policy only
//!   shards beyond ~4 M records), which this row makes visible.
//!
//! Every path walks the *same* flip sequence and must produce the same
//! per-step population sizes and outlier verdicts — the experiment
//! hard-fails on any divergence. Results land in `BENCH_verify.json` via
//! `reproduce --json`, extending the BENCH trajectory of `BENCH_batch.json`.

use crate::alloc_probe;
use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_data::{Context, Dataset, PopulationCursor, PopulationScratch, ShardPolicy};
use pcor_dp::{PopulationSizeUtility, Utility};
use pcor_outlier::{OutlierDetector, PopulationMoments, ZScoreDetector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::time::Instant;

use super::ExperimentOutput;

/// Single-bit flips evaluated per path.
const STEPS: usize = 1_024;

/// One path's digest over the flip sequence: must be identical across
/// engines (bit-identical populations ⇒ identical sizes and verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Digest {
    population_sizes: u64,
    matching: u64,
}

/// The seed engine's verification, replicated verbatim from the pre-engine
/// `Verifier::evaluate`: allocating population, double popcount, AoS metric
/// gather into a fresh `Vec`, slice detector.
fn seed_engine_step(
    dataset: &Dataset,
    context: &Context,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
) -> Result<(usize, bool)> {
    let population = dataset.population(context)?;
    let covers = population.contains(outlier_id);
    let _utility_score = utility.score(dataset, context, &population);
    let population_size = population.count();
    let matching = if covers {
        let mut metrics = Vec::with_capacity(population_size);
        let mut target_index = 0usize;
        for (pos, id) in population.iter_ones().enumerate() {
            if id == outlier_id {
                target_index = pos;
            }
            metrics.push(dataset.record(id).metric());
        }
        detector.is_outlier(&metrics, target_index)
    } else {
        false
    };
    Ok((population_size, matching))
}

/// The new engine's verification at a cursor position: fused population +
/// moment-based detector verdict (what `pcor_core::Verifier` runs per fresh
/// evaluation).
fn engine_step(
    dataset: &Dataset,
    cursor: &mut PopulationCursor<'_>,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
) -> (usize, bool) {
    let (context, population, population_size) = cursor.evaluated();
    let _utility_score = utility.score(dataset, context, population);
    let matching = if population.contains(outlier_id) {
        let value = dataset.metric(outlier_id);
        let (sum, sum_sq_dev) = dataset.population_metric_moments(population, value);
        detector
            .is_outlier_by_moments(&PopulationMoments::new(population_size, sum, sum_sq_dev), value)
    } else {
        false
    };
    (population_size, matching)
}

/// Runs the verify-hotpath comparison.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers, and a [`BenchError::Service`] divergence error if
/// any engine generation disagrees with the seed engine.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    // Tiny scales (smoke / CI) keep their size; real runs measure at
    // n >= 10k, where the acceptance numbers are defined.
    let records = if scale.salary_records < 2_000 {
        scale.salary_records
    } else {
        scale.salary_records.max(10_000)
    };
    let dataset = pcor_data::generator::salary_dataset(
        &pcor_data::generator::SalaryConfig::reduced().with_records(records),
    )?;
    let detector = ZScoreDetector::default();
    let utility = PopulationSizeUtility;
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0xF00D);
    let outliers = pcor_core::runner::find_random_outliers(&dataset, &detector, 1, 2_000, &mut rng)
        .map_err(|_| BenchError::NoOutlierFound)?;
    let outlier_id = outliers[0].record_id;
    let start = outliers[0].starting_context.clone();
    let t = dataset.schema().total_values();

    // One shared random single-bit flip sequence over the bits *outside*
    // the record's minimal context: the searches spend their budget on
    // super-contexts of `C_V` (contexts dropping one of V's own values
    // short-circuit cheaply on every engine generation), so this measures
    // the expensive, fully-verified case.
    let minimal = dataset.minimal_context(outlier_id)?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
    let flips: Vec<usize> =
        (0..STEPS).map(|_| free_bits[rng.random_range(0..free_bits.len())]).collect();

    let n_threads = ShardPolicy::auto().threads.max(2);
    let mut table = Table::new(
        format!(
            "Verify hot path: one f_M evaluation per single-bit flip \
             (n = {records}, t = {t}, {STEPS} flips, ZScore + PopulationSize)"
        ),
        &["Path", "calls/sec", "ns/call", "allocs/call", "bytes/sec", "Speedup"],
    );

    let mut digests: Vec<Digest> = Vec::new();
    let mut baseline_rate = 0.0f64;
    let paths: [&str; 4] =
        ["from-scratch (seed)", "scratch reuse", "incremental cursor", "incremental sharded"];
    for (index, path) in paths.iter().enumerate() {
        let started = Instant::now();
        let (outcome, allocs) = alloc_probe::counted(|| -> Result<(Digest, Option<u64>)> {
            let mut sizes = 0u64;
            let mut matches = 0u64;
            let mut words: Option<u64> = None;
            match index {
                0 => {
                    let mut context = start.clone();
                    for &bit in &flips {
                        context.flip(bit);
                        let (size, matching) =
                            seed_engine_step(&dataset, &context, outlier_id, &detector, &utility)?;
                        sizes += size as u64;
                        matches += matching as u64;
                    }
                }
                1 => {
                    // Reused scratch + columnar slice gather: the same
                    // passes as the seed engine, zero allocation.
                    let mut context = start.clone();
                    let mut scratch = PopulationScratch::for_dataset(&dataset);
                    let mut metrics_buf = Vec::with_capacity(dataset.len());
                    for &bit in &flips {
                        context.flip(bit);
                        let population = dataset.population_into(&context, &mut scratch)?;
                        let _utility_score = utility.score(&dataset, &context, population);
                        let matching = if population.contains(outlier_id) {
                            let target = dataset
                                .gather_population_metrics(population, outlier_id, &mut metrics_buf)
                                .expect("coverage checked above");
                            detector.is_outlier(&metrics_buf, target)
                        } else {
                            false
                        };
                        sizes += population.count() as u64;
                        matches += matching as u64;
                    }
                }
                _ => {
                    let policy = if index == 2 {
                        ShardPolicy::serial()
                    } else {
                        ShardPolicy::forced(n_threads)
                    };
                    let mut cursor = PopulationCursor::with_policy(&dataset, &start, policy)?;
                    for &bit in &flips {
                        cursor.flip(bit);
                        let (size, matching) =
                            engine_step(&dataset, &mut cursor, outlier_id, &detector, &utility);
                        sizes += size as u64;
                        matches += matching as u64;
                    }
                    words = Some(cursor.words_scanned());
                }
            }
            Ok((Digest { population_sizes: sizes, matching: matches }, words))
        });
        let (digest, words) = outcome?;
        let elapsed = started.elapsed().as_secs_f64();
        let rate = STEPS as f64 / elapsed.max(1e-12);
        if index == 0 {
            baseline_rate = rate;
        }
        digests.push(digest);
        // Bitmap bandwidth from the engine's own words-scanned counter
        // (64-bit words, so bytes = words * 8). Only the cursor engine
        // meters its passes; the historical paths have no counter and
        // report `n/a` rather than an estimate.
        let bytes_per_sec = words
            .map(|w| format!("{:.0}", (w as f64 * 8.0) / elapsed.max(1e-12)))
            .unwrap_or_else(|| "n/a".to_string());
        table.push_row(vec![
            path.to_string(),
            format!("{rate:.0}"),
            format!("{:.0}", elapsed * 1e9 / STEPS as f64),
            allocs
                .map(|a| format!("{:.1}", a as f64 / STEPS as f64))
                .unwrap_or_else(|| "n/a".to_string()),
            bytes_per_sec,
            format!("{:.2}x", rate / baseline_rate.max(1e-12)),
        ]);
    }

    // Hard identity guarantee: every engine generation saw the exact same
    // populations and verdicts over the shared flip sequence. The workload
    // is fully deterministic (fixed seed, fixed generator, IEEE f64 ops in
    // a fixed order), so this check cannot flake run-to-run; it can only
    // fail if a code change introduces a genuine engine divergence — e.g. a
    // population mismatch, or a detector verdict landing within ~1 ulp of
    // its threshold where the slice and moment arithmetic legitimately
    // round apart (worth investigating, not papering over).
    for (index, digest) in digests.iter().enumerate() {
        if *digest != digests[0] {
            return Err(BenchError::Service(format!(
                "engine divergence: path `{}` disagreed with the seed engine",
                paths[index]
            )));
        }
    }

    Ok(ExperimentOutput { tables: vec![table], figures: vec![] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_agree_and_report_rates() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).expect("verify-hotpath experiment");
        assert_eq!(output.tables.len(), 1);
        let table = &output.tables[0];
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row.len(), 6);
            let rate: f64 = row[1].parse().unwrap();
            assert!(rate > 0.0, "path {} reported no throughput", row[0]);
        }
        // The cursor engines meter their fused passes, so their bytes/sec
        // column must carry a real positive number; the historical paths
        // have no counter and report `n/a`.
        for row in &table.rows[2..] {
            let bytes: f64 = row[4].parse().unwrap();
            assert!(bytes > 0.0, "path {} reported no bandwidth", row[0]);
        }
        for row in &table.rows[..2] {
            assert_eq!(row[4], "n/a");
        }
        // No wall-clock ratio assertions here: timing comparisons belong in
        // the experiment's reported output (BENCH_verify.json), not in a
        // pass/fail unit test that would flake on loaded CI runners. The
        // load-bearing correctness check — every engine generation produced
        // identical population sizes and verdicts — already ran inside
        // `run` (it returns an error on any divergence).
    }
}
