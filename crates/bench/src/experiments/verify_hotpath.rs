//! Verify-hotpath: throughput and allocation profile of one `f_M`
//! verification call, before and after the incremental engine.
//!
//! Not a paper experiment — the paper's runtime numbers are essentially
//! counts of `f_M` evaluations, and this measures what one evaluation costs
//! on each engine generation while walking the context graph by single-bit
//! flips (the access pattern of BFS, DFS, random walk and the Gray-code
//! enumeration):
//!
//! * **from-scratch (seed)** — the historical engine, replicated verbatim:
//!   `Dataset::population` allocates two fresh bitmaps and re-runs the
//!   OR/AND pass over every attribute, the population is popcounted twice
//!   (utility + size), and a fresh metrics `Vec` is gathered through the
//!   per-`Record` indirection before the detector re-scans it;
//! * **scratch reuse** — `Dataset::population_into` on a
//!   [`PopulationScratch`] plus the columnar metric gather: same passes,
//!   zero allocation;
//! * **incremental cursor (rescan)** — a [`PopulationCursor`] advancing by
//!   one flip (one attribute-block union update + one fused AND/popcount
//!   pass through the dispatched kernel), but with the detector's shifted
//!   moments recomputed from scratch every call — the engine as it stood
//!   before the moment tracker;
//! * **incremental moments** — the same cursor with
//!   [`PopulationCursor::track_moments`] enabled: the moments are carried
//!   as centered sufficient statistics and updated from the XOR word-diff
//!   of consecutive populations (Neumaier-compensated, with a scheduled
//!   full refresh every [`PopulationCursor::MOMENT_REFRESH_INTERVAL`]
//!   syncs), exactly as `pcor_core::Verifier` evaluates;
//! * **incremental sharded (gated)** — the tracked-moments cursor under the
//!   production pooled policy. Below the measured break-even
//!   ([`ShardPolicy::POOLED_MIN_WORDS`]) the pass runs serial on the
//!   dispatched kernel and the row stays allocation-free; sharding only
//!   engages where it pays.
//!
//! The `words/call` column counts every 64-bit word an engine touches per
//! evaluation (fused pass + moment maintenance) from the cursor's own
//! meters — the incremental-moments row must scan strictly fewer words per
//! call than the full-rescan row, and `run` hard-fails if it does not.
//!
//! A second table microbenchmarks the fused AND+popcount kernels themselves
//! (every kernel the host supports, scalar always included) over synthetic
//! word streams, reporting raw bytes/sec and the fraction of the machine's
//! measured STREAM-triad bandwidth ([`crate::membw`]) each kernel sustains.
//!
//! Every engine path walks the *same* flip sequence and must produce the
//! same per-step population sizes and outlier verdicts — the experiment
//! hard-fails on any divergence, and likewise if any kernel's output is not
//! bit-identical to scalar. Results land in `BENCH_verify.json` via
//! `reproduce --json`, extending the BENCH trajectory of `BENCH_batch.json`.

use crate::alloc_probe;
use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_data::kernel::{self, KernelKind};
use pcor_data::{Context, Dataset, PopulationCursor, PopulationScratch, RecordBitmap, ShardPolicy};
use pcor_dp::{PopulationSizeUtility, Utility};
use pcor_outlier::{OutlierDetector, PopulationMoments, ZScoreDetector};
use pcor_runtime::ThreadPool;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;
use std::time::Instant;

use super::{ExperimentOutput, RunEnvironment};

/// Single-bit flips evaluated per path.
const STEPS: usize = 1_024;

/// One path's digest over the flip sequence: must be identical across
/// engines (bit-identical populations ⇒ identical sizes and verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Digest {
    population_sizes: u64,
    matching: u64,
}

/// The seed engine's verification, replicated verbatim from the pre-engine
/// `Verifier::evaluate`: allocating population, double popcount, AoS metric
/// gather into a fresh `Vec`, slice detector.
fn seed_engine_step(
    dataset: &Dataset,
    context: &Context,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
) -> Result<(usize, bool)> {
    let population = dataset.population(context)?;
    let covers = population.contains(outlier_id);
    let _utility_score = utility.score(dataset, context, &population);
    let population_size = population.count();
    let matching = if covers {
        let mut metrics = Vec::with_capacity(population_size);
        let mut target_index = 0usize;
        for (pos, id) in population.iter_ones().enumerate() {
            if id == outlier_id {
                target_index = pos;
            }
            metrics.push(dataset.record(id).metric());
        }
        detector.is_outlier(&metrics, target_index)
    } else {
        false
    };
    Ok((population_size, matching))
}

/// Cursor verification with the moments recomputed from scratch each call
/// (the pre-tracker engine). Returns `(size, matching, moment_words)` where
/// `moment_words` counts what the rescan touched: one sweep of the
/// population bitmap plus one metric load per member.
fn rescan_engine_step(
    dataset: &Dataset,
    cursor: &mut PopulationCursor<'_>,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
) -> (usize, bool, u64) {
    let (context, population, population_size) = cursor.evaluated();
    let _utility_score = utility.score(dataset, context, population);
    let pop_words = population.words().len() as u64;
    let (matching, moment_words) = if population.contains(outlier_id) {
        let value = dataset.metric(outlier_id);
        let (sum, sum_sq_dev) = dataset.population_metric_moments(population, value);
        let verdict = detector.is_outlier_by_moments(
            &PopulationMoments::new(population_size, sum, sum_sq_dev),
            value,
        );
        (verdict, pop_words + population_size as u64)
    } else {
        (false, 0)
    };
    (population_size, matching, moment_words)
}

/// Cursor verification answered from the tracked moments (the production
/// engine; `cursor` must have `track_moments` enabled). Word accounting
/// comes from the cursor's own `moment_words_scanned` meter.
fn tracked_engine_step(
    dataset: &Dataset,
    cursor: &mut PopulationCursor<'_>,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
) -> (usize, bool) {
    let (context, population, population_size) = cursor.evaluated();
    let _utility_score = utility.score(dataset, context, population);
    let covers = population.contains(outlier_id);
    let matching = if covers {
        let value = dataset.metric(outlier_id);
        let (sum, sum_sq_dev) = cursor.moments();
        detector
            .is_outlier_by_moments(&PopulationMoments::new(population_size, sum, sum_sq_dev), value)
    } else {
        false
    };
    (population_size, matching)
}

/// Fills a bitmap's words from a splitmix-style PRNG.
fn seeded_stream(words: usize, mut state: u64) -> RecordBitmap {
    let mut bitmap = RecordBitmap::new(words * 64);
    for w in bitmap.words_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *w = state;
    }
    bitmap
}

/// Microbenchmarks every supported fused-pass kernel over synthetic word
/// streams: raw bytes/sec, fraction of measured triad bandwidth, and speedup
/// over scalar. Hard-fails if any kernel's count or output bitmap diverges
/// from the scalar reference.
fn kernel_microbench(scale: &ExperimentScale, triad: f64, nproc: usize) -> Result<Table> {
    // Streams sized past the last-level cache at real scales so bytes/sec is
    // a memory number, not a cache number; smoke keeps unit tests fast.
    let words = if scale.salary_records < 2_000 { 1 << 12 } else { 1 << 20 };
    const REST: usize = 3;
    let first = seeded_stream(words, scale.seed ^ 0x5EED);
    let rest: Vec<RecordBitmap> =
        (0..REST).map(|i| seeded_stream(words, scale.seed ^ (0xA5A5 + i as u64))).collect();
    // Read-byte accounting, matching the engine table: the pass streams the
    // first bitmap plus each rest bitmap once per call.
    let bytes_per_pass = (words * (1 + REST) * 8) as f64;
    let target_bytes = if scale.salary_records < 2_000 { 1 << 25 } else { 1 << 28 } as f64;
    let iters = ((target_bytes / bytes_per_pass) as usize).max(3);

    let mut expected_out = vec![0u64; words];
    let expected = kernel::scalar_pass(first.words(), &rest, &mut expected_out, 0);

    let selected = kernel::selected();
    let mut rates: Vec<(KernelKind, f64)> = Vec::new();
    let mut out = vec![0u64; words];
    for kind in KernelKind::supported() {
        let func = kind.func();
        // Warm-up pass doubles as the bit-identity check against scalar.
        out.fill(u64::MAX);
        let count = func(first.words(), &rest, &mut out, 0);
        if count != expected || out != expected_out {
            return Err(BenchError::Service(format!(
                "kernel divergence: `{kind}` disagreed with the scalar reference"
            )));
        }
        let started = Instant::now();
        let mut checksum = 0usize;
        for _ in 0..iters {
            checksum = checksum.wrapping_add(func(first.words(), &rest, &mut out, 0));
        }
        let elapsed = started.elapsed().as_secs_f64();
        std::hint::black_box(checksum);
        rates.push((kind, bytes_per_pass * iters as f64 / elapsed.max(1e-12)));
    }
    let scalar_rate = rates
        .iter()
        .find(|(kind, _)| *kind == KernelKind::Scalar)
        .map(|&(_, rate)| rate)
        .expect("scalar kernel is always supported");

    let mut table = Table::new(
        format!(
            "Fused AND+popcount kernels ({words} words x {} streams, {iters} passes/kernel, \
             triad = {:.2} GB/s, nproc = {nproc})",
            1 + REST,
            triad / 1e9
        ),
        &["Kernel", "dispatched", "bytes/sec", "% membw", "vs scalar"],
    );
    for (kind, rate) in &rates {
        table.push_row(vec![
            kind.name().to_string(),
            if *kind == selected { "yes".to_string() } else { String::new() },
            format!("{rate:.0}"),
            format!("{:.0}%", rate / triad.max(1e-12) * 100.0),
            format!("{:.2}x", rate / scalar_rate.max(1e-12)),
        ]);
    }
    Ok(table)
}

/// Runs the verify-hotpath comparison.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers, and a [`BenchError::Service`] divergence error if
/// any engine generation disagrees with the seed engine, any kernel
/// disagrees with scalar, or the tracked-moments engine fails to scan
/// strictly fewer words per call than the rescan engine.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    // Tiny scales (smoke / CI) keep their size; real runs measure at
    // n >= 10k, where the acceptance numbers are defined.
    let records = if scale.salary_records < 2_000 {
        scale.salary_records
    } else {
        scale.salary_records.max(10_000)
    };
    let dataset = pcor_data::generator::salary_dataset(
        &pcor_data::generator::SalaryConfig::reduced().with_records(records),
    )?;
    let detector = ZScoreDetector::default();
    let utility = PopulationSizeUtility;
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0xF00D);
    let outliers = pcor_core::runner::find_random_outliers(&dataset, &detector, 1, 2_000, &mut rng)
        .map_err(|_| BenchError::NoOutlierFound)?;
    let outlier_id = outliers[0].record_id;
    let origin = dataset.metric(outlier_id);
    let start = outliers[0].starting_context.clone();
    let t = dataset.schema().total_values();

    let nproc = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
    let triad = crate::membw::triad_bytes_per_sec();
    let selected = kernel::selected();

    // One shared random single-bit flip sequence over the bits *outside*
    // the record's minimal context: the searches spend their budget on
    // super-contexts of `C_V` (contexts dropping one of V's own values
    // short-circuit cheaply on every engine generation), so this measures
    // the expensive, fully-verified case.
    let minimal = dataset.minimal_context(outlier_id)?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
    let flips: Vec<usize> =
        (0..STEPS).map(|_| free_bits[rng.random_range(0..free_bits.len())]).collect();

    // The gated row uses the production pooled policy: persistent pool, one
    // shard per worker, serial below the measured break-even. The pool is
    // built outside the counted section — it is process state, not per-call
    // cost.
    let pool = Arc::new(ThreadPool::for_available_parallelism());

    let mut table = Table::new(
        format!(
            "Verify hot path: one f_M evaluation per single-bit flip \
             (n = {records}, t = {t}, {STEPS} flips, ZScore + PopulationSize, \
             kernel = {selected})"
        ),
        &["Path", "calls/sec", "ns/call", "allocs/call", "words/call", "bytes/sec", "Speedup"],
    );

    let mut digests: Vec<Digest> = Vec::new();
    let mut words_per_path: Vec<Option<u64>> = Vec::new();
    let mut baseline_rate = 0.0f64;
    let paths: [&str; 5] = [
        "from-scratch (seed)",
        "scratch reuse",
        "incremental cursor (rescan)",
        "incremental moments",
        "incremental sharded (gated)",
    ];
    for (index, path) in paths.iter().enumerate() {
        let started = Instant::now();
        let (outcome, allocs) = alloc_probe::counted(|| -> Result<(Digest, Option<u64>)> {
            let mut sizes = 0u64;
            let mut matches = 0u64;
            let mut words: Option<u64> = None;
            match index {
                0 => {
                    let mut context = start.clone();
                    for &bit in &flips {
                        context.flip(bit);
                        let (size, matching) =
                            seed_engine_step(&dataset, &context, outlier_id, &detector, &utility)?;
                        sizes += size as u64;
                        matches += matching as u64;
                    }
                }
                1 => {
                    // Reused scratch + columnar slice gather: the same
                    // passes as the seed engine, zero allocation.
                    let mut context = start.clone();
                    let mut scratch = PopulationScratch::for_dataset(&dataset);
                    let mut metrics_buf = Vec::with_capacity(dataset.len());
                    for &bit in &flips {
                        context.flip(bit);
                        let population = dataset.population_into(&context, &mut scratch)?;
                        let _utility_score = utility.score(&dataset, &context, population);
                        let matching = if population.contains(outlier_id) {
                            let target = dataset
                                .gather_population_metrics(population, outlier_id, &mut metrics_buf)
                                .expect("coverage checked above");
                            detector.is_outlier(&metrics_buf, target)
                        } else {
                            false
                        };
                        sizes += population.count() as u64;
                        matches += matching as u64;
                    }
                }
                2 => {
                    let mut cursor =
                        PopulationCursor::with_policy(&dataset, &start, ShardPolicy::serial())?;
                    let mut moment_words = 0u64;
                    for &bit in &flips {
                        cursor.flip(bit);
                        let (size, matching, scanned) = rescan_engine_step(
                            &dataset,
                            &mut cursor,
                            outlier_id,
                            &detector,
                            &utility,
                        );
                        sizes += size as u64;
                        matches += matching as u64;
                        moment_words += scanned;
                    }
                    words = Some(cursor.words_scanned() + moment_words);
                }
                _ => {
                    let policy = if index == 3 {
                        ShardPolicy::serial()
                    } else {
                        ShardPolicy::pooled(Arc::clone(&pool))
                    };
                    let mut cursor = PopulationCursor::with_policy(&dataset, &start, policy)?;
                    cursor.track_moments(origin);
                    for &bit in &flips {
                        cursor.flip(bit);
                        let (size, matching) = tracked_engine_step(
                            &dataset,
                            &mut cursor,
                            outlier_id,
                            &detector,
                            &utility,
                        );
                        sizes += size as u64;
                        matches += matching as u64;
                    }
                    words = Some(cursor.words_scanned() + cursor.moment_words_scanned());
                }
            }
            Ok((Digest { population_sizes: sizes, matching: matches }, words))
        });
        let (digest, words) = outcome?;
        let elapsed = started.elapsed().as_secs_f64();
        let rate = STEPS as f64 / elapsed.max(1e-12);
        if index == 0 {
            baseline_rate = rate;
        }
        digests.push(digest);
        words_per_path.push(words);
        // Word/byte traffic from the engines' own meters (fused pass plus
        // moment maintenance; 64-bit words, so bytes = words * 8). Only the
        // cursor engines meter their passes; the historical paths have no
        // counter and report `n/a` rather than an estimate.
        table.push_row(vec![
            path.to_string(),
            format!("{rate:.0}"),
            format!("{:.0}", elapsed * 1e9 / STEPS as f64),
            allocs
                .map(|a| format!("{:.1}", a as f64 / STEPS as f64))
                .unwrap_or_else(|| "n/a".to_string()),
            words
                .map(|w| format!("{:.1}", w as f64 / STEPS as f64))
                .unwrap_or_else(|| "n/a".to_string()),
            words
                .map(|w| format!("{:.0}", (w as f64 * 8.0) / elapsed.max(1e-12)))
                .unwrap_or_else(|| "n/a".to_string()),
            format!("{:.2}x", rate / baseline_rate.max(1e-12)),
        ]);
    }

    // Hard identity guarantee: every engine generation saw the exact same
    // populations and verdicts over the shared flip sequence. The workload
    // is fully deterministic (fixed seed, fixed generator, IEEE f64 ops in
    // a fixed order), so this check cannot flake run-to-run; it can only
    // fail if a code change introduces a genuine engine divergence — e.g. a
    // population mismatch, or a detector verdict landing within ~1 ulp of
    // its threshold where the slice and moment arithmetic legitimately
    // round apart (worth investigating, not papering over).
    for (index, digest) in digests.iter().enumerate() {
        if *digest != digests[0] {
            return Err(BenchError::Service(format!(
                "engine divergence: path `{}` disagreed with the seed engine",
                paths[index]
            )));
        }
    }

    // The point of the moment tracker: strictly less word traffic per call
    // than recomputing the moments from scratch. Deterministic for the same
    // reason as the digest check — the meters count work, not time.
    let rescan_words = words_per_path[2].expect("rescan engine meters its words");
    let tracked_words = words_per_path[3].expect("tracked engine meters its words");
    if tracked_words >= rescan_words {
        return Err(BenchError::Service(format!(
            "moment tracker regression: tracked engine scanned {tracked_words} words \
             vs {rescan_words} for the full rescan"
        )));
    }

    let kernels = kernel_microbench(scale, triad, nproc)?;
    Ok(ExperimentOutput {
        tables: vec![table, kernels],
        figures: vec![],
        environment: Some(RunEnvironment {
            nproc,
            kernel: selected.name().to_string(),
            triad_bytes_per_sec: triad,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_agree_and_report_rates() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).expect("verify-hotpath experiment");
        assert_eq!(output.tables.len(), 2);
        let table = &output.tables[0];
        assert_eq!(table.rows.len(), 5);
        for row in &table.rows {
            assert_eq!(row.len(), 7);
            let rate: f64 = row[1].parse().unwrap();
            assert!(rate > 0.0, "path {} reported no throughput", row[0]);
        }
        // The cursor engines meter their words, so words/call and bytes/sec
        // must carry real positive numbers; the historical paths have no
        // counter and report `n/a`.
        for row in &table.rows[2..] {
            let words: f64 = row[4].parse().unwrap();
            assert!(words > 0.0, "path {} reported no word traffic", row[0]);
            let bytes: f64 = row[5].parse().unwrap();
            assert!(bytes > 0.0, "path {} reported no bandwidth", row[0]);
        }
        for row in &table.rows[..2] {
            assert_eq!(row[4], "n/a");
            assert_eq!(row[5], "n/a");
        }
        // The tracked-moments row scans strictly fewer words per call than
        // the rescan row (also hard-enforced inside `run`).
        let rescan: f64 = table.rows[2][4].parse().unwrap();
        let tracked: f64 = table.rows[3][4].parse().unwrap();
        assert!(tracked < rescan, "tracked {tracked} >= rescan {rescan}");
        // No wall-clock ratio assertions here: timing comparisons belong in
        // the experiment's reported output (BENCH_verify.json), not in a
        // pass/fail unit test that would flake on loaded CI runners. The
        // load-bearing correctness check — every engine generation produced
        // identical population sizes and verdicts — already ran inside
        // `run` (it returns an error on any divergence).

        // Kernel table: scalar always present, exactly one dispatched row,
        // and every bytes/sec entry is a real positive number.
        let kernels = &output.tables[1];
        assert!(kernels.rows.iter().any(|row| row[0] == "scalar"));
        assert_eq!(kernels.rows.iter().filter(|row| row[1] == "yes").count(), 1);
        for row in &kernels.rows {
            assert_eq!(row.len(), 5);
            let rate: f64 = row[2].parse().unwrap();
            assert!(rate > 0.0, "kernel {} reported no throughput", row[0]);
            assert!(row[3].ends_with('%'), "kernel {} membw column: {}", row[0], row[3]);
        }

        // Environment metadata rides along for the JSON artifact.
        let env = output.environment.as_ref().expect("environment recorded");
        assert!(env.nproc >= 1);
        assert!(env.triad_bytes_per_sec > 0.0);
        assert_eq!(env.kernel, pcor_data::kernel::selected().name());
    }
}
