//! Selection-mechanism ablation: Exponential vs permute-and-flip vs
//! report-noisy-max at equal ε.
//!
//! Not a paper experiment — this measures the axis the pluggable
//! [`SelectionMechanism`](pcor_dp::SelectionMechanism) API opens. Two
//! views, both at the same total budget:
//!
//! 1. **Exact single-draw distributions** over the workload's reference
//!    file (`COE_M` with utilities, the paper's utility-normalization
//!    object): per mechanism, the exact expected released utility, its
//!    ratio to the true best, and the probability of releasing the true
//!    best context. No sampling noise — permute-and-flip's dominance over
//!    the Exponential mechanism (McKenna & Sheldon, Theorem 4) is visible
//!    directly, and report-noisy-max reproduces the Exponential column
//!    exactly (Gumbel-max equivalence).
//! 2. **End-to-end BFS releases** through a `ReleaseSession` built with
//!    each mechanism: mean utility ratio, releases/sec and fresh `f_M`
//!    calls/sec. The verification engine dominates the cost, so calls/sec
//!    shows whether a mechanism's draw overhead is visible at all.
//!
//! The true-best normalization comes from the service registry's new
//! reference-file cache ([`DatasetRegistry::reference_file`]): the first
//! mechanism's run pays the `COE_M` enumeration, the other two hit the
//! cache — exactly the Direct-mode deployment pattern the cache exists
//! for. Results land in `BENCH_mechanisms.json` via `reproduce --json`.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::workloads::{Workload, WorkloadKind};
use crate::{BenchError, Result};
use pcor_core::{MechanismKind, ReleaseSession, ReleaseSpec, SamplingAlgorithm};
use pcor_dp::budget::OcdpGuarantee;
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::{DetectorKind, ZScoreDetector};
use pcor_service::DatasetRegistry;
use std::time::Instant;

use super::ExperimentOutput;

/// Runs the mechanism ablation.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers; propagates release and enumeration errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = ZScoreDetector::default();
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let record_id = workload.outlier.record_id;

    // The registry serves (and caches) the reference file used for
    // normalization — one enumeration, shared by every mechanism below.
    let registry = DatasetRegistry::new();
    let entry = registry.register("salary", workload.dataset.clone());

    // --- Exact one-draw distributions over COE_M ----------------------
    // Both budget splits the algorithms actually run with: the single-draw
    // split ε₁ = ε/2 (Direct/Uniform/Random-Walk) and the graph-search
    // split ε₁ = ε/(2n+2) (the per-step budget of DFS/BFS, where the
    // mechanisms genuinely differ — at ε₁ = ε/2 the population-size scores
    // concentrate every mechanism on the optimum). The same n feeds the
    // end-to-end BFS runs below, so the exact rows are the ground truth
    // for the per-step budget those sessions actually draw with.
    let samples = scale.samples.min(25);
    let single_draw = OcdpGuarantee::single_draw(scale.epsilon)
        .map_err(pcor_core::PcorError::Dp)?
        .epsilon_per_invocation;
    let graph_split = OcdpGuarantee::graph_search(scale.epsilon, samples)
        .map_err(pcor_core::PcorError::Dp)?
        .epsilon_per_invocation;
    let splits = [("eps/2", single_draw), ("eps/(2n+2)", graph_split)];
    let mut exact = Table::new(
        format!(
            "Mechanism distributions at equal ε (exact draw over COE_M, eps = {}, \
             n = {samples}, salary, ZScore)",
            scale.epsilon
        ),
        &["Split", "Mechanism", "E[utility]", "E[utility] / best", "P(true best)", "|COE_M|"],
    );
    let mut expected_utilities = Vec::new();
    for (split_name, epsilon1) in splits {
        for kind in MechanismKind::all() {
            let (reference, _) = registry
                .reference_file(&entry, record_id, DetectorKind::ZScore, 22)
                .map_err(|e| BenchError::Service(e.to_string()))?;
            let scores: Vec<f64> = reference.entries.iter().map(|e| e.utility).collect();
            let mechanism = kind.build(epsilon1, 1.0).map_err(pcor_core::PcorError::Dp)?;
            let probabilities =
                mechanism.probabilities(&scores).map_err(pcor_core::PcorError::Dp)?;
            let expected: f64 = probabilities.iter().zip(&scores).map(|(p, u)| p * u).sum();
            let best_mass: f64 = probabilities
                .iter()
                .zip(&scores)
                .filter(|(_, &u)| (u - reference.max_utility).abs() < 1e-9)
                .map(|(p, _)| p)
                .sum();
            expected_utilities.push((kind, expected));
            exact.push_row(vec![
                split_name.to_string(),
                kind.to_string(),
                format!("{expected:.3}"),
                format!("{:.4}", expected / reference.max_utility),
                format!("{best_mass:.4}"),
                reference.len().to_string(),
            ]);
        }
    }
    // The registry cache must have served every repeat enumeration.
    let cache = registry.cache_stats();
    debug_assert_eq!(cache.reference_misses, 1);
    debug_assert_eq!(cache.reference_hits, 5);

    // --- End-to-end BFS releases per mechanism ------------------------
    let mut end_to_end = Table::new(
        format!(
            "End-to-end BFS releases per mechanism (eps = {}, n = {samples}, \
             {} repetitions, salary, ZScore)",
            scale.epsilon, scale.repetitions
        ),
        &["Mechanism", "Mean utility ratio", "Mean samples", "Releases/s", "f_M calls/s"],
    );
    let utility = PopulationSizeUtility;
    for kind in MechanismKind::all() {
        let mut session =
            ReleaseSession::builder(&workload.dataset, &detector, &utility).mechanism(kind).build();
        session.seed_starting_context(record_id, workload.outlier.starting_context.clone());
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, scale.epsilon).with_samples(samples);
        let mut ratio_total = 0.0;
        let mut samples_total = 0usize;
        let started = Instant::now();
        for repetition in 0..scale.repetitions {
            let result =
                session.release_with_seed(record_id, &spec, scale.seed ^ repetition as u64)?;
            ratio_total += workload.reference.utility_ratio(result.utility);
            samples_total += result.samples_collected;
        }
        let wall = started.elapsed().as_secs_f64();
        let stats = session.stats();
        debug_assert_eq!(stats.mechanism_releases.count(kind), scale.repetitions as u64);
        end_to_end.push_row(vec![
            kind.to_string(),
            format!("{:.4}", ratio_total / scale.repetitions as f64),
            format!("{:.1}", samples_total as f64 / scale.repetitions as f64),
            format!("{:.1}", scale.repetitions as f64 / wall.max(1e-9)),
            format!("{:.0}", stats.verification_calls as f64 / wall.max(1e-9)),
        ]);
    }

    // Sanity for the headline claim: PF's expected utility is never below
    // EM's at equal ε (exact distributions, so this is deterministic) —
    // checked at both budget splits.
    for pair in expected_utilities.chunks(MechanismKind::all().len()) {
        let em = pair.iter().find(|(k, _)| *k == MechanismKind::Exponential).expect("EM row").1;
        let pf = pair.iter().find(|(k, _)| *k == MechanismKind::PermuteAndFlip).expect("PF row").1;
        if pf < em - 1e-9 {
            return Err(BenchError::Service(format!(
                "permute-and-flip expected utility {pf} fell below exponential {em}"
            )));
        }
    }

    Ok(ExperimentOutput { tables: vec![exact, end_to_end], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_and_flip_dominates_and_noisy_max_matches_exponential() {
        let mut scale = ExperimentScale::smoke();
        scale.repetitions = 3;
        scale.samples = 8;
        let output = run(&scale).expect("mechanism ablation");
        assert_eq!(output.tables.len(), 2);
        let exact = &output.tables[0];
        assert_eq!(exact.rows.len(), 6, "three mechanisms at two budget splits");
        for split_rows in exact.rows.chunks(3) {
            let expected: Vec<f64> = split_rows.iter().map(|row| row[2].parse().unwrap()).collect();
            let (em, pf, rnm) = (expected[0], expected[1], expected[2]);
            assert!(pf >= em - 1e-9, "PF {pf} must not trail EM {em}");
            assert!((rnm - em).abs() < 1e-6, "RNM {rnm} must reproduce EM {em}");
            // Ratios are valid fractions of the true best.
            for row in split_rows {
                let ratio: f64 = row[3].parse().unwrap();
                assert!((0.0..=1.0 + 1e-9).contains(&ratio));
            }
        }
        let end_to_end = &output.tables[1];
        assert_eq!(end_to_end.rows.len(), 3);
        for row in &end_to_end.rows {
            let ratio: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&ratio), "utility ratio {ratio}");
        }
    }
}
