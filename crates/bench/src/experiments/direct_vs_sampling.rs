//! Section 1.2 headline: the direct (exhaustive) approach versus PCOR-BFS.
//!
//! The paper reports three days for the direct approach versus 37 minutes for
//! BFS on the 51 k-record salary dataset (t = 25). The asymptotic gap —
//! `O(2^t)` verifications versus `O(n·t)`-ish — is what matters; this
//! experiment measures both on the reduced schema (t = 14), where the direct
//! approach is still feasible, and reports runtimes, verification counts and
//! the utility each attains.

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::Table;
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::LofDetector;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// Runs the direct-vs-BFS comparison.
///
/// # Errors
/// Propagates workload-construction and measurement errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let mut rng = Workload::rng(scale, "direct-vs-bfs");
    // The direct approach is expensive; a couple of repetitions suffice to
    // show the gap.
    let direct_reps = scale.repetitions.clamp(2, 5);

    let mut table = Table::new(
        "Section 1.2: Direct approach vs PCOR-BFS (reduced schema, t = 14)",
        &["Approach", "Tavg", "Avg f_M calls", "Utility", "eps"],
    );

    for (name, algorithm, reps) in [
        ("Direct (Alg. 1)", SamplingAlgorithm::Direct, direct_reps),
        ("PCOR-BFS (Alg. 5)", SamplingAlgorithm::Bfs, scale.repetitions),
    ] {
        let config = PcorConfig::new(algorithm, scale.epsilon)
            .with_samples(scale.samples)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&workload.reference),
            reps,
            &mut rng,
        )?;
        table.push_row(vec![
            name.to_string(),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            format!("{:.0}", cell.avg_verification_calls),
            cell.utility.map(|u| format!("{:.2}", u.mean)).unwrap_or_else(|| "-".into()),
            format!("{}", scale.epsilon),
        ]);
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_uses_far_fewer_verification_calls_than_direct() {
        let output = run(&ExperimentScale::smoke()).unwrap();
        let table = &output.tables[0];
        assert_eq!(table.len(), 2);
        let direct_calls: f64 = table.rows[0][2].parse().unwrap();
        let bfs_calls: f64 = table.rows[1][2].parse().unwrap();
        assert!(
            direct_calls > 3.0 * bfs_calls,
            "direct {direct_calls} vs bfs {bfs_calls}: the asymptotic gap should be visible"
        );
    }
}
