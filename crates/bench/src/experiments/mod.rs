//! One experiment module per table/figure group of the paper's evaluation.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`sampling`] | Tables 2–3, Figure 1 — the four sampling algorithms |
//! | [`overlap`] | Tables 4–5, Figure 2 — the overlap utility |
//! | [`detectors`] | Tables 6–7, Figure 3 — Grubbs and Histogram detectors |
//! | [`epsilon_sweep`] | Tables 8–9, Figure 4 — effect of the privacy budget |
//! | [`samples_sweep`] | Tables 10–11, Figure 5 — effect of the sample count |
//! | [`coe_match`] | Tables 12–13 — COE match under group privacy |
//! | [`ratio_check`] | Section 6.7 — empirical `e^ε` ratio check |
//! | [`direct_vs_sampling`] | Section 1.2 headline — direct approach vs. BFS |
//! | [`service_throughput`] | (beyond the paper) `pcor-service` throughput vs. worker count |
//! | [`batch`] | (beyond the paper) batched releases vs. equivalent singles |
//! | [`verify_hotpath`] | (beyond the paper) `f_M` evaluation engines: from-scratch vs. incremental |
//! | [`pool_breakeven`] | (beyond the paper) sharded-pass break-even: spawn-per-pass vs. persistent pool |
//! | [`mechanisms`] | (beyond the paper) DP selection mechanisms at equal ε: Exponential vs permute-and-flip vs report-noisy-max |
//! | [`wal`] | (beyond the paper) WAL durability: append throughput per fsync policy, replay vs checkpointed replay |
//! | [`net`] | (beyond the paper) `pcor-net` reactor: frames/sec, p99 round trip and shed rate vs connections × in-flight |

pub mod batch;
pub mod coe_match;
pub mod detectors;
pub mod direct_vs_sampling;
pub mod epsilon_sweep;
pub mod mechanisms;
pub mod net;
pub mod overlap;
pub mod pool_breakeven;
pub mod ratio_check;
pub mod samples_sweep;
pub mod sampling;
pub mod service_throughput;
pub mod verify_hotpath;
pub mod wal;

use crate::report::{Histogram, Table};
use serde::{Deserialize, Serialize};

/// Machine context a benchmark run was measured under, persisted alongside
/// the tables so a committed `BENCH_*.json` is interpretable later: the same
/// bytes/sec means something different on 1 core without AVX-512 than on 32
/// cores with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEnvironment {
    /// Logical CPUs visible to the process (`nproc`).
    pub nproc: usize,
    /// The fused-pass kernel the dispatcher selected (`PCOR_KERNEL` respected).
    pub kernel: String,
    /// Measured STREAM-triad memory bandwidth in bytes/sec — the denominator
    /// of the `% membw` column in the kernel table.
    pub triad_bytes_per_sec: f64,
}

/// The output of one experiment: paper-style tables plus the histogram series
/// behind the corresponding figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentOutput {
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Histogram series (figures).
    pub figures: Vec<Histogram>,
    /// Machine context, when the experiment measured it (absent in older
    /// `BENCH_*.json` files; missing fields deserialize to `None`).
    pub environment: Option<RunEnvironment>,
}

impl ExperimentOutput {
    /// Merges another output into this one. The first measured environment
    /// wins — all experiments in one invocation ran on the same machine.
    pub fn extend(&mut self, other: ExperimentOutput) {
        self.tables.extend(other.tables);
        self.figures.extend(other.figures);
        if self.environment.is_none() {
            self.environment = other.environment;
        }
    }
}

impl std::fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for table in &self.tables {
            writeln!(f, "{table}")?;
        }
        for figure in &self.figures {
            writeln!(f, "{figure}")?;
        }
        Ok(())
    }
}

/// The identifiers accepted by the `reproduce` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Tables 2–3 + Figure 1.
    Sampling,
    /// Tables 4–5 + Figure 2.
    Overlap,
    /// Tables 6–7 + Figure 3.
    Detectors,
    /// Tables 8–9 + Figure 4.
    EpsilonSweep,
    /// Tables 10–11 + Figure 5.
    SamplesSweep,
    /// Table 12 (salary).
    CoeMatchSalary,
    /// Table 13 (homicide).
    CoeMatchHomicide,
    /// Section 6.7 ratio check.
    RatioCheck,
    /// Section 1.2 direct-vs-BFS headline.
    Direct,
    /// Serving-layer throughput vs. worker count (beyond the paper).
    ServiceThroughput,
    /// Batched releases vs. equivalent single requests (beyond the paper).
    BatchVsSingles,
    /// `f_M` verification engines: from-scratch vs. incremental/sharded
    /// (beyond the paper).
    VerifyHotpath,
    /// Sharded-pass break-even: spawn-per-pass vs. persistent-pool
    /// execution across dataset sizes (beyond the paper).
    PoolBreakeven,
    /// DP selection mechanisms at equal ε: Exponential vs permute-and-flip
    /// vs report-noisy-max (beyond the paper).
    Mechanisms,
    /// WAL durability: append throughput per fsync policy and replay cost
    /// with/without checkpoints (beyond the paper).
    Wal,
    /// Reactor wire front: frames/sec, p99 round trip and shed rate across
    /// connections × pipelined in-flight envelopes (beyond the paper).
    Net,
}

impl ExperimentId {
    /// All experiments in presentation order.
    pub fn all() -> Vec<ExperimentId> {
        vec![
            ExperimentId::Sampling,
            ExperimentId::Overlap,
            ExperimentId::Detectors,
            ExperimentId::EpsilonSweep,
            ExperimentId::SamplesSweep,
            ExperimentId::CoeMatchSalary,
            ExperimentId::CoeMatchHomicide,
            ExperimentId::RatioCheck,
            ExperimentId::Direct,
            ExperimentId::ServiceThroughput,
            ExperimentId::BatchVsSingles,
            ExperimentId::VerifyHotpath,
            ExperimentId::PoolBreakeven,
            ExperimentId::Mechanisms,
            ExperimentId::Wal,
            ExperimentId::Net,
        ]
    }

    /// Parses a command-line selector into experiment ids.
    pub fn parse(selector: &str) -> Vec<ExperimentId> {
        match selector {
            "all" => Self::all(),
            "table2" | "table3" | "sampling" | "figure1" => vec![ExperimentId::Sampling],
            "table4" | "table5" | "overlap" | "figure2" => vec![ExperimentId::Overlap],
            "table6" | "table7" | "detectors" | "figure3" => vec![ExperimentId::Detectors],
            "table8" | "table9" | "epsilon" | "figure4" => vec![ExperimentId::EpsilonSweep],
            "table10" | "table11" | "samples" | "figure5" => vec![ExperimentId::SamplesSweep],
            "table12" | "coe-salary" => vec![ExperimentId::CoeMatchSalary],
            "table13" | "coe-homicide" => vec![ExperimentId::CoeMatchHomicide],
            "ratio" => vec![ExperimentId::RatioCheck],
            "direct" => vec![ExperimentId::Direct],
            "service" | "throughput" => vec![ExperimentId::ServiceThroughput],
            "batch" | "batch-vs-singles" => vec![ExperimentId::BatchVsSingles],
            "verify" | "verify-hotpath" | "hotpath" => vec![ExperimentId::VerifyHotpath],
            "pool" | "pool-breakeven" | "breakeven" => vec![ExperimentId::PoolBreakeven],
            "mechanisms" | "mechanism" => vec![ExperimentId::Mechanisms],
            "wal" | "durability" | "wal-replay" => vec![ExperimentId::Wal],
            "net" | "reactor" | "wire" => vec![ExperimentId::Net],
            "figures" => vec![
                ExperimentId::Sampling,
                ExperimentId::Overlap,
                ExperimentId::Detectors,
                ExperimentId::EpsilonSweep,
                ExperimentId::SamplesSweep,
            ],
            _ => vec![],
        }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ExperimentId::Sampling => "sampling (Tables 2-3, Figure 1)",
            ExperimentId::Overlap => "overlap utility (Tables 4-5, Figure 2)",
            ExperimentId::Detectors => "detectors (Tables 6-7, Figure 3)",
            ExperimentId::EpsilonSweep => "epsilon sweep (Tables 8-9, Figure 4)",
            ExperimentId::SamplesSweep => "sample-count sweep (Tables 10-11, Figure 5)",
            ExperimentId::CoeMatchSalary => "COE match, salary (Table 12)",
            ExperimentId::CoeMatchHomicide => "COE match, homicide (Table 13)",
            ExperimentId::RatioCheck => "empirical ratio check (Section 6.7)",
            ExperimentId::Direct => "direct vs BFS (Section 1.2)",
            ExperimentId::ServiceThroughput => "service throughput vs workers (pcor-service)",
            ExperimentId::BatchVsSingles => "batched releases vs equivalent singles (pcor-service)",
            ExperimentId::VerifyHotpath => {
                "verify hot path: f_M evaluation engines (pcor-data/core)"
            }
            ExperimentId::PoolBreakeven => {
                "pool break-even: spawn vs persistent-pool sharding (pcor-runtime/data)"
            }
            ExperimentId::Mechanisms => {
                "selection mechanisms at equal eps: EM vs PF vs RNM (pcor-dp/core)"
            }
            ExperimentId::Wal => {
                "WAL durability: fsync policies + checkpointed replay (pcor-wal/service)"
            }
            ExperimentId::Net => {
                "reactor wire front: frames/sec, p99 RTT, shed rate (pcor-net/service)"
            }
        };
        write!(f, "{name}")
    }
}

/// Runs one experiment at the given scale.
///
/// # Errors
/// Propagates the experiment's errors.
pub fn run(id: ExperimentId, scale: &crate::ExperimentScale) -> crate::Result<ExperimentOutput> {
    match id {
        ExperimentId::Sampling => sampling::run(scale),
        ExperimentId::Overlap => overlap::run(scale),
        ExperimentId::Detectors => detectors::run(scale),
        ExperimentId::EpsilonSweep => epsilon_sweep::run(scale),
        ExperimentId::SamplesSweep => samples_sweep::run(scale),
        ExperimentId::CoeMatchSalary => coe_match::run_salary(scale),
        ExperimentId::CoeMatchHomicide => coe_match::run_homicide(scale),
        ExperimentId::RatioCheck => ratio_check::run(scale),
        ExperimentId::Direct => direct_vs_sampling::run(scale),
        ExperimentId::ServiceThroughput => service_throughput::run(scale),
        ExperimentId::BatchVsSingles => batch::run(scale),
        ExperimentId::VerifyHotpath => verify_hotpath::run(scale),
        ExperimentId::PoolBreakeven => pool_breakeven::run(scale),
        ExperimentId::Mechanisms => mechanisms::run(scale),
        ExperimentId::Wal => wal::run(scale),
        ExperimentId::Net => net::run(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_parsing_covers_all_aliases() {
        assert_eq!(ExperimentId::parse("all").len(), ExperimentId::all().len());
        assert_eq!(ExperimentId::parse("table2"), vec![ExperimentId::Sampling]);
        assert_eq!(ExperimentId::parse("figure4"), vec![ExperimentId::EpsilonSweep]);
        assert_eq!(ExperimentId::parse("table13"), vec![ExperimentId::CoeMatchHomicide]);
        assert_eq!(ExperimentId::parse("ratio"), vec![ExperimentId::RatioCheck]);
        assert_eq!(ExperimentId::parse("direct"), vec![ExperimentId::Direct]);
        assert_eq!(ExperimentId::parse("service"), vec![ExperimentId::ServiceThroughput]);
        assert_eq!(ExperimentId::parse("throughput"), vec![ExperimentId::ServiceThroughput]);
        assert_eq!(ExperimentId::parse("batch"), vec![ExperimentId::BatchVsSingles]);
        assert_eq!(ExperimentId::parse("batch-vs-singles"), vec![ExperimentId::BatchVsSingles]);
        assert_eq!(ExperimentId::parse("verify"), vec![ExperimentId::VerifyHotpath]);
        assert_eq!(ExperimentId::parse("verify-hotpath"), vec![ExperimentId::VerifyHotpath]);
        assert_eq!(ExperimentId::parse("pool"), vec![ExperimentId::PoolBreakeven]);
        assert_eq!(ExperimentId::parse("pool-breakeven"), vec![ExperimentId::PoolBreakeven]);
        assert_eq!(ExperimentId::parse("mechanisms"), vec![ExperimentId::Mechanisms]);
        assert_eq!(ExperimentId::parse("mechanism"), vec![ExperimentId::Mechanisms]);
        assert_eq!(ExperimentId::parse("net"), vec![ExperimentId::Net]);
        assert_eq!(ExperimentId::parse("reactor"), vec![ExperimentId::Net]);
        assert_eq!(ExperimentId::parse("figures").len(), 5);
        assert!(ExperimentId::parse("nonsense").is_empty());
        for id in ExperimentId::all() {
            assert!(!id.to_string().is_empty());
        }
    }

    #[test]
    fn output_extend_concatenates() {
        let mut a = ExperimentOutput::default();
        let mut b = ExperimentOutput::default();
        b.tables.push(crate::Table::new("T", &["x"]));
        b.figures.push(crate::Histogram::from_values("F", &[1.0, 2.0], 2));
        a.extend(b);
        assert_eq!(a.tables.len(), 1);
        assert_eq!(a.figures.len(), 1);
        assert!(a.to_string().contains('T'));
    }
}
