//! Serving-layer throughput: queries/second vs. worker-pool size.
//!
//! Not a paper experiment — this measures the `pcor-service` subsystem the
//! ROADMAP's scaling goal needs: a fixed stream of release queries from
//! several analysts against a shared salary dataset, executed by worker
//! pools of increasing size. Reported per pool size: wall time, throughput,
//! mean per-query latency and the starting-context cache hit rate.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_core::runner::find_random_outliers;
use pcor_core::SamplingAlgorithm;
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_outlier::DetectorKind;
use pcor_service::{BudgetLedger, DatasetRegistry, ReleaseRequest, Server, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;
use std::time::Instant;

use super::ExperimentOutput;

/// Worker-pool sizes compared.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Number of analysts issuing queries round-robin.
const ANALYSTS: usize = 3;

/// Runs the throughput-vs-workers comparison.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers and propagates service errors as release failures.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(scale.salary_records))?;
    let detector = DetectorKind::ZScore;
    let built = detector.build();
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0x5EC1CE);
    // A small pool of distinct records keeps the query mix realistic while
    // still exercising the starting-context cache with repeats.
    let outliers = find_random_outliers(&dataset, built.as_ref(), 4, 2_000, &mut rng)
        .map_err(|_| BenchError::NoOutlierFound)?;
    let records: Vec<usize> = outliers.iter().map(|q| q.record_id).collect();

    let queries_per_worker_count = (scale.repetitions * ANALYSTS).max(ANALYSTS);
    let mut table = Table::new(
        format!(
            "Service throughput: {} queries ({} analysts, BFS, eps = {}, n = {}) vs. workers",
            queries_per_worker_count, ANALYSTS, scale.epsilon, scale.samples
        ),
        &["Workers", "Wall (ms)", "Throughput (q/s)", "Mean latency (ms)", "Cache hit %"],
    );

    for &workers in &WORKER_COUNTS {
        // Fresh registry and ledger per pool size: identical work, cold cache.
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("salary", dataset.clone());
        let ledger = Arc::new(BudgetLedger::new(f64::MAX / 2.0));
        let server = Server::start(
            ServerConfig::default().with_workers(workers).with_queue_capacity(256),
            Arc::clone(&registry),
            ledger,
        );

        let started = Instant::now();
        let pending: Vec<_> = (0..queries_per_worker_count)
            .map(|i| {
                let request = ReleaseRequest::new(
                    &format!("analyst-{}", i % ANALYSTS),
                    "salary",
                    records[i % records.len()],
                )
                .with_detector(detector)
                .with_algorithm(SamplingAlgorithm::Bfs)
                .with_epsilon(scale.epsilon)
                .with_samples(scale.samples)
                .with_seed(scale.seed ^ i as u64);
                server.submit(request)
            })
            .collect::<std::result::Result<_, _>>()
            .map_err(|e| BenchError::Service(e.to_string()))?;
        for handle in pending {
            handle.wait().map_err(|e| BenchError::Service(e.to_string()))?;
        }
        let wall = started.elapsed();
        let metrics = server.metrics();
        let cache = registry.cache_stats();
        let lookups = (cache.hits + cache.misses).max(1);
        table.push_row(vec![
            workers.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", metrics.served as f64 / wall.as_secs_f64()),
            format!("{:.2}", metrics.mean_latency.as_secs_f64() * 1e3),
            format!("{:.1}", 100.0 * cache.hits as f64 / lookups as f64),
        ]);
        server.shutdown();
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_produces_one_row_per_worker_count() {
        let mut scale = ExperimentScale::smoke();
        scale.repetitions = 2;
        scale.samples = 5;
        let output = run(&scale).expect("service throughput experiment");
        assert_eq!(output.tables.len(), 1);
        assert_eq!(output.tables[0].rows.len(), WORKER_COUNTS.len());
        for row in &output.tables[0].rows {
            assert_eq!(row.len(), 5);
            let throughput: f64 = row[2].parse().unwrap();
            assert!(throughput > 0.0, "throughput must be positive, got {throughput}");
        }
    }
}
