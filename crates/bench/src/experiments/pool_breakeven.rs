//! Pool-breakeven: where sharded population evaluation starts paying, per
//! execution mode.
//!
//! Not a paper experiment — PR 3's sharded fused AND/popcount pass spawned
//! fresh `std::thread::scope` workers per pass, which costs tens of
//! microseconds and pushed the auto-shard threshold to
//! `ShardPolicy::AUTO_MIN_WORDS` (2^16 words ≈ 4.2 M records). The
//! persistent work-stealing pool of `pcor-runtime` replaces the spawn with
//! a few queue operations (the submitting thread helps execute), which is
//! what `ShardPolicy::POOLED_MIN_WORDS` (2^12 words ≈ 260 k records) is
//! calibrated against. This experiment measures, across dataset sizes `n`:
//!
//! * **serial** — the single-threaded fused pass (baseline);
//! * **spawn x2** — two shards via per-pass thread spawns (the PR 3
//!   mechanism, forced on below its threshold to expose the spawn cost);
//! * **pool auto** — [`ShardPolicy::pooled`] on a machine-sized resident
//!   pool: *the production policy*. It right-sizes to the pool (a
//!   single-worker pool stays serial, more workers shard from
//!   `POOLED_MIN_WORDS`), so its ratio is ≥ 1x wherever the machine has
//!   parallelism to give and exactly 1x (parity) where it does not;
//! * **pool x2** — two shards forced onto the pool, isolating the
//!   resident-dispatch overhead for an apples-to-apples comparison with
//!   `spawn x2`.
//!
//! Every path walks the same flip sequence and must report the same
//! population sizes — the experiment hard-fails on divergence. The
//! reported crossover is the smallest measured `n` at which the pooled
//! pass holds ≥ 1x of serial (2-decimal parity); with the spawn mechanism
//! that point sits at the 2^16-word boundary, with the pool it drops to
//! the bottom of the sweep. Results land in `BENCH_pool.json` via
//! `reproduce --json`.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_data::{Attribute, Context, Dataset, PopulationCursor, Record, Schema, ShardPolicy};
use pcor_runtime::ThreadPool;
use std::sync::Arc;
use std::time::Instant;

/// Measurement repetitions per (n, path); the best rate is kept.
const REPS: usize = 3;

/// Builds a synthetic dataset of `n` records over a small fixed schema
/// (3 attributes, 9 values → m = 3 cached unions per pass) with a
/// deterministic value mix, cheaply enough to sweep into the millions.
fn synthetic_dataset(n: usize, seed: u64) -> Result<Dataset> {
    let schema = Schema::new(
        vec![
            Attribute::from_values("A", &["a0", "a1", "a2"]),
            Attribute::from_values("B", &["b0", "b1"]),
            Attribute::from_values("C", &["c0", "c1", "c2", "c3"]),
        ],
        "M",
    )
    .map_err(BenchError::Data)?;
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let records: Vec<Record> = (0..n)
        .map(|_| {
            Record::new(
                vec![(next() % 3) as u16, (next() % 2) as u16, (next() % 4) as u16],
                (next() % 10_000) as f64,
            )
        })
        .collect();
    Dataset::new(schema, records).map_err(BenchError::Data)
}

/// One measured path: walks `flips` single-bit moves on a cursor under
/// `policy`, returning (best passes/sec over `REPS`, digest of sizes).
fn measure(
    dataset: &Dataset,
    start: &Context,
    flips: &[usize],
    policy: ShardPolicy,
) -> Result<(f64, u64)> {
    let mut best_rate = 0.0f64;
    let mut digest = 0u64;
    for rep in 0..REPS {
        let mut cursor = PopulationCursor::with_policy(dataset, start, policy.clone())
            .map_err(BenchError::Data)?;
        // Warm: the first pass builds the unions.
        let mut sizes = cursor.population_size() as u64;
        let started = Instant::now();
        for &bit in flips {
            cursor.flip(bit);
            sizes = sizes.wrapping_add(cursor.population_size() as u64);
        }
        let elapsed = started.elapsed().as_secs_f64();
        let rate = flips.len() as f64 / elapsed.max(1e-12);
        if rep == 0 {
            digest = sizes;
        } else if sizes != digest {
            return Err(BenchError::Service("non-deterministic digest within one path".into()));
        }
        best_rate = best_rate.max(rate);
    }
    Ok((best_rate, digest))
}

/// Runs the pool-breakeven sweep.
///
/// # Errors
/// Returns [`BenchError::Service`] if any sharded path's population sizes
/// diverge from the serial pass.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    // Sweep the record space from well below the pooled threshold up to
    // the spawn mechanism's 2^16-word break-even. Smoke runs stay tiny.
    let (sweep, flips_budget): (&[usize], usize) = if scale.salary_records < 2_000 {
        (&[16_384, 65_536], 1 << 22)
    } else {
        (&[65_536, 262_144, 1_048_576, 2_097_152, 4_194_304], 1 << 25)
    };

    // Two resident pools: one sized to the machine (the production
    // deployment of `ShardPolicy::pooled`) and one with two workers, so
    // the forced two-shard comparison against spawn x2 exists even on a
    // single-core host.
    let machine_pool = Arc::new(ThreadPool::for_available_parallelism());
    let wide_pool = Arc::new(ThreadPool::new(2));

    let mut table = Table::new(
        format!(
            "Pool break-even: sharded fused AND/popcount pass vs serial \
             (machine pool: {} workers; spawn break-even at {} words)",
            machine_pool.workers(),
            ShardPolicy::AUTO_MIN_WORDS
        ),
        &["n", "words", "Path", "passes/sec", "us/pass", "vs serial"],
    );
    let mut crossover: Option<usize> = None;

    for &n in sweep {
        let dataset = synthetic_dataset(n, scale.seed ^ n as u64)?;
        let t = dataset.schema().total_values();
        let words = n.div_ceil(64);
        // Flip only bits outside the first record's minimal context so
        // every step keeps a non-empty well-formed context mix; the
        // sequence is shared by all paths.
        let minimal = dataset.minimal_context(0).map_err(BenchError::Data)?;
        let start = Context::full(t);
        let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
        let steps = (flips_budget / n).clamp(24, 1_024);
        let mut state = scale.seed | 1;
        let flips: Vec<usize> = (0..steps)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                free_bits[(state >> 33) as usize % free_bits.len()]
            })
            .collect();

        let paths: Vec<(&str, ShardPolicy)> = vec![
            ("serial", ShardPolicy::serial()),
            ("spawn x2", ShardPolicy::forced(2)),
            ("pool auto", ShardPolicy::pooled(Arc::clone(&machine_pool))),
            ("pool x2", ShardPolicy::pooled_forced(Arc::clone(&wide_pool), 2)),
        ];
        let mut serial_rate = 0.0f64;
        let mut serial_digest = 0u64;
        for (index, (name, policy)) in paths.into_iter().enumerate() {
            let (rate, digest) = measure(&dataset, &start, &flips, policy)?;
            if index == 0 {
                serial_rate = rate;
                serial_digest = digest;
            } else if digest != serial_digest {
                return Err(BenchError::Service(format!(
                    "engine divergence: path `{name}` disagreed with serial at n = {n}"
                )));
            }
            let ratio = rate / serial_rate.max(1e-12);
            if name == "pool auto" && crossover.is_none() && ratio >= 0.995 {
                // ≥ 1x at 2-decimal parity: the pooled policy holds serial
                // performance (and shards profitably where the machine has
                // parallelism) from this n on.
                crossover = Some(n);
            }
            table.push_row(vec![
                n.to_string(),
                words.to_string(),
                name.to_string(),
                format!("{rate:.0}"),
                format!("{:.2}", 1e6 / rate.max(1e-12)),
                format!("{ratio:.2}x"),
            ]);
        }
    }

    let mut summary = Table::new(
        "Pool break-even summary (thresholds in 64-bit record words)",
        &["Quantity", "Value"],
    );
    summary.push_row(vec![
        "spawn break-even (ShardPolicy::AUTO_MIN_WORDS)".into(),
        format!(
            "{} words (~{} records)",
            ShardPolicy::AUTO_MIN_WORDS,
            ShardPolicy::AUTO_MIN_WORDS * 64
        ),
    ]);
    summary.push_row(vec![
        "pooled threshold (ShardPolicy::POOLED_MIN_WORDS)".into(),
        format!(
            "{} words (~{} records)",
            ShardPolicy::POOLED_MIN_WORDS,
            ShardPolicy::POOLED_MIN_WORDS * 64
        ),
    ]);
    summary.push_row(vec![
        "measured pool-auto crossover (>= 1x serial)".into(),
        match crossover {
            Some(n) => format!("n = {n} ({} words)", n.div_ceil(64)),
            None => "not reached in sweep".into(),
        },
    ]);

    Ok(ExperimentOutput { tables: vec![table, summary], ..ExperimentOutput::default() })
}

use super::ExperimentOutput;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_all_paths_with_identical_digests() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).expect("pool-breakeven experiment");
        assert_eq!(output.tables.len(), 2);
        let table = &output.tables[0];
        // 2 sizes x 4 paths at smoke scale.
        assert_eq!(table.rows.len(), 8);
        for row in &table.rows {
            assert_eq!(row.len(), 6);
            let rate: f64 = row[3].parse().unwrap();
            assert!(rate > 0.0, "path {} reported no throughput", row[2]);
        }
        let summary = &output.tables[1];
        assert_eq!(summary.rows.len(), 3);
        // No wall-clock ratio assertions: timing comparisons belong in the
        // reported output (BENCH_pool.json), not in a unit test that would
        // flake on loaded CI runners. The load-bearing correctness check —
        // identical population digests across execution modes — already
        // ran inside `run`.
    }
}
