//! Tables 2–3 and Figure 1: comparison of the four sampling algorithms
//! (Uniform, Random-Walk, DP-DFS, DP-BFS) with the LOF detector and the
//! population-size utility at `ε = 0.2`.

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::{Histogram, Table};
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::LofDetector;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// Runs the sampling-algorithm comparison.
///
/// # Errors
/// Propagates workload-construction and measurement errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let mut rng = Workload::rng(scale, "tables-2-3");

    let mut performance = Table::new(
        "Table 2: Sampling Methods Comparison - Performance",
        &["Algorithm", "Tmin", "Tmax", "Tavg", "eps", "Outlier"],
    );
    let mut utility_table = Table::new(
        "Table 3: Sampling Methods Comparison - Utility",
        &["Algorithm", "Utility", "CI", "eps", "Outlier"],
    );
    let mut output = ExperimentOutput::default();

    for algorithm in SamplingAlgorithm::sampling_algorithms() {
        let config = PcorConfig::new(algorithm, scale.epsilon)
            .with_samples(scale.samples)
            .with_max_attempts(scale.uniform_attempt_cap)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&workload.reference),
            scale.repetitions,
            &mut rng,
        )?;

        performance.push_row(vec![
            algorithm.to_string(),
            RuntimeSummary::humanize(cell.runtime.min_secs),
            RuntimeSummary::humanize(cell.runtime.max_secs),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            format!("{}", scale.epsilon),
            "LOF".into(),
        ]);
        if let Some(summary) = &cell.utility {
            utility_table.push_row(vec![
                algorithm.to_string(),
                format!("{:.2}", summary.mean),
                format!("({:.2}, {:.2})", summary.ci_lower, summary.ci_upper),
                format!("{}", scale.epsilon),
                "LOF".into(),
            ]);
        }
        output.figures.push(Histogram::from_values(
            format!("Figure 1: {algorithm} utility-ratio distribution"),
            &cell.utility_ratios,
            10,
        ));
        output.figures.push(Histogram::from_values(
            format!("Figure 1: {algorithm} runtime distribution (seconds)"),
            &cell.runtimes_secs,
            10,
        ));
    }

    output.tables.push(performance);
    output.tables.push(utility_table);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_experiment_produces_both_tables_and_figures() {
        let output = run(&ExperimentScale::smoke()).unwrap();
        assert_eq!(output.tables.len(), 2);
        assert_eq!(output.tables[0].len(), 4); // four sampling algorithms
        assert!(output.tables[1].len() >= 3);
        assert_eq!(output.figures.len(), 8);
        let rendered = output.to_string();
        assert!(rendered.contains("Table 2"));
        assert!(rendered.contains("BFS"));
    }
}
