//! Tables 4–5 and Figure 2: DP-DFS and DP-BFS with the *overlap* utility
//! (`u = |D_C ∩ D_{C_V}|`), LOF detector.

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::{Histogram, Table};
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{enumerate_coe, PcorConfig, SamplingAlgorithm};
use pcor_dp::OverlapUtility;
use pcor_outlier::LofDetector;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// Runs the overlap-utility comparison.
///
/// # Errors
/// Propagates workload-construction and measurement errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = LofDetector::default();
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let utility = OverlapUtility::new(&workload.dataset, workload.outlier.starting_context.clone())
        .map_err(pcor_core::PcorError::from)?;
    // Reference file under the overlap utility (the population-size reference
    // bundled in the workload does not apply here).
    let reference =
        enumerate_coe(&workload.dataset, workload.outlier.record_id, &detector, &utility, 22)?;
    let mut rng = Workload::rng(scale, "tables-4-5");

    let mut performance = Table::new(
        "Table 4: Intersection Overlap Utility - Performance",
        &["Algorithm", "Tmin", "Tmax", "Tavg", "eps", "Outlier"],
    );
    let mut utility_table = Table::new(
        "Table 5: Intersection Overlap Utility - Utility",
        &["Algorithm", "Utility", "CI", "eps", "Outlier"],
    );
    let mut output = ExperimentOutput::default();

    for algorithm in [SamplingAlgorithm::Dfs, SamplingAlgorithm::Bfs] {
        let config = PcorConfig::new(algorithm, scale.epsilon)
            .with_samples(scale.samples)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&reference),
            scale.repetitions,
            &mut rng,
        )?;
        performance.push_row(vec![
            algorithm.to_string(),
            RuntimeSummary::humanize(cell.runtime.min_secs),
            RuntimeSummary::humanize(cell.runtime.max_secs),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            format!("{}", scale.epsilon),
            "LOF".into(),
        ]);
        if let Some(summary) = &cell.utility {
            utility_table.push_row(vec![
                algorithm.to_string(),
                format!("{:.2}", summary.mean),
                format!("({:.2}, {:.2})", summary.ci_lower, summary.ci_upper),
                format!("{}", scale.epsilon),
                "LOF".into(),
            ]);
        }
        output.figures.push(Histogram::from_values(
            format!("Figure 2: {algorithm} overlap-utility distribution"),
            &cell.utility_ratios,
            10,
        ));
        output.figures.push(Histogram::from_values(
            format!("Figure 2: {algorithm} runtime distribution (seconds)"),
            &cell.runtimes_secs,
            10,
        ));
    }

    output.tables.push(performance);
    output.tables.push(utility_table);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_experiment_reports_dfs_and_bfs() {
        let output = run(&ExperimentScale::smoke()).unwrap();
        assert_eq!(output.tables.len(), 2);
        assert_eq!(output.tables[0].len(), 2);
        assert_eq!(output.figures.len(), 4);
        assert!(output.to_string().contains("Table 4"));
    }
}
