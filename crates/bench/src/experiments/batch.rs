//! Batch-vs-singles: verification cost and throughput of the batched
//! release endpoint against equivalent single-record requests.
//!
//! Not a paper experiment — this measures the win the ROADMAP's batched
//! release API promises: a batch binds dataset + detector once, shares one
//! release session (and its memoized per-record verifiers) across all
//! items, and therefore issues fewer fresh `f_M` verification calls than
//! the same query mix sent as independent single requests. Reported per
//! batch size: total fresh `f_M` calls on both paths, the call ratio and
//! the wall-clock speedup.
//!
//! Both paths start on a fresh server (cold registry cache, fresh ledger)
//! over an identical query mix that revisits a small pool of outlier
//! records — the paper's experiments repeatedly query the same
//! dataset/detector pair, which is exactly where batching pays.

use crate::config::ExperimentScale;
use crate::report::Table;
use crate::{BenchError, Result};
use pcor_core::runner::find_random_outliers;
use pcor_data::Dataset;
use pcor_outlier::DetectorKind;
use pcor_service::{
    BatchItem, BatchReleaseRequest, BudgetLedger, DatasetRegistry, ReleaseRequest, Server,
    ServerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::ExperimentOutput;

/// Query-mix sizes compared (N singles vs one N-item batch).
const BATCH_SIZES: [usize; 3] = [4, 8, 16];

fn fresh_server(dataset: &Dataset) -> Server {
    let registry = Arc::new(DatasetRegistry::new());
    registry.register("salary", dataset.clone());
    let ledger = Arc::new(BudgetLedger::new(f64::MAX / 2.0));
    Server::start(ServerConfig::default().with_workers(1).with_queue_capacity(64), registry, ledger)
}

/// Runs the batch-vs-singles comparison.
///
/// # Errors
/// Returns [`BenchError::NoOutlierFound`] when the workload has no
/// contextual outliers and propagates service errors as release failures.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let dataset = pcor_data::generator::salary_dataset(
        &pcor_data::generator::SalaryConfig::reduced().with_records(scale.salary_records),
    )?;
    let detector = DetectorKind::ZScore;
    let built = detector.build();
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0xBA7C4);
    let outliers = find_random_outliers(&dataset, built.as_ref(), 3, 2_000, &mut rng)
        .map_err(|_| BenchError::NoOutlierFound)?;
    let records: Vec<usize> = outliers.iter().map(|q| q.record_id).collect();

    let samples = scale.samples.min(20);
    let mut table = Table::new(
        format!(
            "Batch vs singles: fresh f_M calls and wall time (BFS, eps = {}, n = {samples}, \
             {} distinct records)",
            scale.epsilon,
            records.len()
        ),
        &[
            "Queries",
            "Singles f_M",
            "Batch f_M",
            "Call ratio",
            "Singles (ms)",
            "Batch (ms)",
            "Speedup",
        ],
    );

    for &queries in &BATCH_SIZES {
        let mix: Vec<usize> = (0..queries).map(|i| records[i % records.len()]).collect();

        // N independent single requests on a cold server.
        let single_server = fresh_server(&dataset);
        let single_started = Instant::now();
        let mut single_calls = 0usize;
        for (i, &record_id) in mix.iter().enumerate() {
            let response = single_server
                .execute(
                    ReleaseRequest::new("bench", "salary", record_id)
                        .with_detector(detector)
                        .with_epsilon(scale.epsilon)
                        .with_samples(samples)
                        .with_seed(scale.seed ^ i as u64),
                )
                .map_err(|e| BenchError::Service(e.to_string()))?;
            single_calls += response.verification_calls;
        }
        let single_wall = single_started.elapsed();
        single_server.shutdown();

        // The same mix as one batch on an equally cold server.
        let batch_server = fresh_server(&dataset);
        let batch_started = Instant::now();
        let batch_response = batch_server
            .execute_batch(
                BatchReleaseRequest::new("bench", "salary").with_detector(detector).with_items(
                    mix.iter()
                        .enumerate()
                        .map(|(i, &record_id)| {
                            BatchItem::new(record_id)
                                .with_epsilon(scale.epsilon)
                                .with_samples(samples)
                                .with_seed(scale.seed ^ i as u64)
                        })
                        .collect(),
                ),
            )
            .map_err(|e| BenchError::Service(e.to_string()))?;
        let batch_wall = batch_started.elapsed();
        batch_server.shutdown();

        if batch_response.released() != queries {
            return Err(BenchError::Service(format!(
                "batch released {} of {queries} items",
                batch_response.released()
            )));
        }
        let batch_calls = batch_response.verification_calls;
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        table.push_row(vec![
            queries.to_string(),
            single_calls.to_string(),
            batch_calls.to_string(),
            format!("{:.2}", batch_calls as f64 / single_calls.max(1) as f64),
            format!("{:.2}", ms(single_wall)),
            format!("{:.2}", ms(batch_wall)),
            format!("{:.2}x", ms(single_wall) / ms(batch_wall).max(1e-9)),
        ]);
    }

    Ok(ExperimentOutput { tables: vec![table], ..ExperimentOutput::default() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_always_issues_fewer_calls_than_singles() {
        let mut scale = ExperimentScale::smoke();
        scale.samples = 8;
        let output = run(&scale).expect("batch experiment");
        assert_eq!(output.tables.len(), 1);
        assert_eq!(output.tables[0].rows.len(), BATCH_SIZES.len());
        for row in &output.tables[0].rows {
            assert_eq!(row.len(), 7);
            let singles: usize = row[1].parse().unwrap();
            let batch: usize = row[2].parse().unwrap();
            assert!(
                batch < singles,
                "the batch path must amortize verification ({batch} vs {singles})"
            );
        }
    }
}
