//! Tables 10–11 and Figure 5: the effect of the sample count
//! `n ∈ {25, 50, 100, 200}` on runtime and utility (PCOR-BFS, LOF, ε = 0.2).
//!
//! At laptop scale the sweep is proportionally reduced so its largest setting
//! stays affordable while preserving the trend (runtime grows roughly
//! linearly-to-quadratically with `n`; utility first improves then degrades
//! because `ε₁ = ε/(2n+2)` shrinks).

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::{Histogram, Table};
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::LofDetector;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// The sample counts swept (scaled from the paper's 25/50/100/200 by the
/// configured base sample count: `n ∈ {base/2, base, 2·base, 4·base}`).
pub fn sample_counts(scale: &ExperimentScale) -> [usize; 4] {
    let base = scale.samples.max(2);
    [base / 2, base, base * 2, base * 4]
}

/// Runs the sample-count sweep.
///
/// # Errors
/// Propagates workload-construction and measurement errors.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let workload = Workload::build(WorkloadKind::Salary, scale, &detector)?;
    let mut rng = Workload::rng(scale, "tables-10-11");

    let mut performance = Table::new(
        "Table 10: Effect of # of samples on performance",
        &["# Samples", "Tmin", "Tmax", "Tavg", "Sampling", "Outlier"],
    );
    let mut utility_table = Table::new(
        "Table 11: Effect of # of samples on utility",
        &["# Samples", "Utility", "CI", "Sampling", "Outlier"],
    );
    let mut output = ExperimentOutput::default();

    for n in sample_counts(scale) {
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, scale.epsilon)
            .with_samples(n)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            &detector,
            &utility,
            &config,
            Some(&workload.reference),
            scale.repetitions,
            &mut rng,
        )?;
        performance.push_row(vec![
            n.to_string(),
            RuntimeSummary::humanize(cell.runtime.min_secs),
            RuntimeSummary::humanize(cell.runtime.max_secs),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            "BFS".into(),
            "LOF".into(),
        ]);
        if let Some(summary) = &cell.utility {
            utility_table.push_row(vec![
                n.to_string(),
                format!("{:.2}", summary.mean),
                format!("({:.2}, {:.2})", summary.ci_lower, summary.ci_upper),
                "BFS".into(),
                "LOF".into(),
            ]);
        }
        output.figures.push(Histogram::from_values(
            format!("Figure 5: n = {n} utility-ratio distribution"),
            &cell.utility_ratios,
            10,
        ));
        output.figures.push(Histogram::from_values(
            format!("Figure 5: n = {n} runtime distribution (seconds)"),
            &cell.runtimes_secs,
            10,
        ));
    }

    output.tables.push(performance);
    output.tables.push(utility_table);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_sweep_covers_four_settings_and_runtime_grows() {
        let scale = ExperimentScale::smoke();
        let output = run(&scale).unwrap();
        assert_eq!(output.tables[0].len(), 4);
        assert_eq!(output.tables[1].len(), 4);
        assert_eq!(output.figures.len(), 8);
        assert!(output.to_string().contains("Table 10"));
    }

    #[test]
    fn sample_counts_scale_with_the_configuration() {
        let scale = ExperimentScale::smoke();
        let counts = sample_counts(&scale);
        assert_eq!(counts[1], scale.samples);
        assert!(counts[0] < counts[1] && counts[1] < counts[2] && counts[2] < counts[3]);
    }
}
