//! Tables 6–7 and Figure 3: PCOR-BFS with the Grubbs and Histogram detectors
//! on the reduced salary workload (Section 6.5).

use crate::config::ExperimentScale;
use crate::measure::measure_cell;
use crate::report::{Histogram, Table};
use crate::workloads::{Workload, WorkloadKind};
use crate::Result;
use pcor_core::{PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::DetectorKind;
use pcor_stats::RuntimeSummary;

use super::ExperimentOutput;

/// Runs the detector-compatibility experiment (Grubbs + Histogram, BFS).
///
/// # Errors
/// Propagates workload-construction and measurement errors. A detector that
/// finds no contextual outlier in the synthetic workload is reported as a row
/// with `n/a` entries rather than an error, mirroring how the paper would
/// simply pick a different outlier.
pub fn run(scale: &ExperimentScale) -> Result<ExperimentOutput> {
    let utility = PopulationSizeUtility;
    let mut rng = Workload::rng(scale, "tables-6-7");

    let mut performance = Table::new(
        "Table 6: Outlier Detection Algorithms - Performance",
        &["Algorithm", "Tmin", "Tmax", "Tavg", "eps", "Sampling"],
    );
    let mut utility_table = Table::new(
        "Table 7: Outlier Detection Algorithms - Utility",
        &["Algorithm", "Utility", "CI", "eps", "Sampling"],
    );
    let mut output = ExperimentOutput::default();

    for kind in [DetectorKind::Grubbs, DetectorKind::Histogram] {
        let detector = kind.build();
        let workload = match Workload::build(WorkloadKind::Salary, scale, detector.as_ref()) {
            Ok(w) => w,
            Err(crate::BenchError::NoOutlierFound) => {
                performance.push_row(vec![
                    kind.to_string(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    format!("{}", scale.epsilon),
                    "BFS".into(),
                ]);
                continue;
            }
            Err(e) => return Err(e),
        };
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, scale.epsilon)
            .with_samples(scale.samples)
            .with_starting_context(workload.outlier.starting_context.clone());
        let cell = measure_cell(
            &workload.dataset,
            workload.outlier.record_id,
            detector.as_ref(),
            &utility,
            &config,
            Some(&workload.reference),
            scale.repetitions,
            &mut rng,
        )?;
        performance.push_row(vec![
            kind.to_string(),
            RuntimeSummary::humanize(cell.runtime.min_secs),
            RuntimeSummary::humanize(cell.runtime.max_secs),
            RuntimeSummary::humanize(cell.runtime.avg_secs),
            format!("{}", scale.epsilon),
            "BFS".into(),
        ]);
        if let Some(summary) = &cell.utility {
            utility_table.push_row(vec![
                kind.to_string(),
                format!("{:.2}", summary.mean),
                format!("({:.2}, {:.2})", summary.ci_lower, summary.ci_upper),
                format!("{}", scale.epsilon),
                "BFS".into(),
            ]);
        }
        output.figures.push(Histogram::from_values(
            format!("Figure 3: {kind} utility-ratio distribution"),
            &cell.utility_ratios,
            10,
        ));
        output.figures.push(Histogram::from_values(
            format!("Figure 3: {kind} runtime distribution (seconds)"),
            &cell.runtimes_secs,
            10,
        ));
    }

    output.tables.push(performance);
    output.tables.push(utility_table);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detectors_experiment_produces_rows_for_grubbs_and_histogram() {
        let output = run(&ExperimentScale::smoke()).unwrap();
        assert_eq!(output.tables.len(), 2);
        assert_eq!(output.tables[0].len(), 2);
        assert!(output.to_string().contains("Table 6"));
        assert!(output.to_string().contains("Grubbs"));
        assert!(output.to_string().contains("Histogram"));
    }
}
