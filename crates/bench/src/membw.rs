//! STREAM-style memory-bandwidth microprobe.
//!
//! The fused AND+popcount kernels are memory-bound at every realistic scale:
//! each pass streams `1 + |attributes|` read-only word streams and one output
//! stream with a handful of ALU ops per word. Reporting their raw bytes/sec
//! is therefore only half a result — the interesting number is *what fraction
//! of the machine's attainable bandwidth* each kernel sustains. This module
//! measures that ceiling the same way STREAM does: the triad pattern
//! `a[i] = b[i] + s * c[i]` over arrays far larger than the last-level cache,
//! counting three 8-byte streams per element (two reads, one write — the
//! classic STREAM byte accounting, which ignores the write-allocate fill).
//!
//! The probe runs once per process ([`std::sync::OnceLock`]) and costs a few
//! hundred milliseconds; benchmark tables embed the result via
//! [`crate::experiments::RunEnvironment`].

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

/// Elements per array: 2^21 doubles = 16 MiB per array, 48 MiB working set —
/// past any last-level cache this harness will meet, so the probe measures
/// DRAM, not cache, bandwidth.
const TRIAD_LEN: usize = 1 << 21;

/// Timed triad sweeps; the fastest one is reported (slower sweeps caught an
/// interfering process or a frequency ramp, not a slower memory system).
const TRIAD_REPS: usize = 4;

/// Measured triad bandwidth in bytes/sec, probed once per process.
pub fn triad_bytes_per_sec() -> f64 {
    static TRIAD: OnceLock<f64> = OnceLock::new();
    *TRIAD.get_or_init(measure_triad)
}

fn measure_triad() -> f64 {
    let mut a = vec![0.0f64; TRIAD_LEN];
    let b: Vec<f64> = (0..TRIAD_LEN).map(|i| (i % 4096) as f64).collect();
    let c: Vec<f64> = (0..TRIAD_LEN).map(|i| ((i * 7) % 4096) as f64 * 0.5).collect();
    let scalar = 3.0f64;

    // Warm-up sweep: touches every page so the timed sweeps never pay the
    // first-fault cost, and gives the frequency governor a nudge.
    triad_sweep(&mut a, &b, &c, scalar);

    let mut best = f64::INFINITY;
    for _ in 0..TRIAD_REPS {
        let started = Instant::now();
        triad_sweep(&mut a, &b, &c, scalar);
        best = best.min(started.elapsed().as_secs_f64());
    }
    let bytes = (3 * std::mem::size_of::<f64>() * TRIAD_LEN) as f64;
    bytes / best.max(1e-12)
}

#[inline(never)]
fn triad_sweep(a: &mut [f64], b: &[f64], c: &[f64], scalar: f64) {
    for ((a, &b), &c) in a.iter_mut().zip(b).zip(c) {
        *a = b + scalar * c;
    }
    black_box(a.first());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_a_positive_stable_bandwidth() {
        let first = triad_bytes_per_sec();
        assert!(first.is_finite() && first > 0.0, "triad bandwidth: {first}");
        // OnceLock: the probe must not re-run (identical value, no delay).
        assert_eq!(first, triad_bytes_per_sec());
    }
}
