//! Experiment scale configuration.
//!
//! One knob controls how faithful (and how slow) the reproduction is. The
//! defaults target a laptop; `paper()` mirrors the sizes reported in
//! Section 6 of the paper.

use serde::{Deserialize, Serialize};

/// The scale at which the experiments run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Records in the (reduced) salary workload.
    pub salary_records: usize,
    /// Records in the (reduced) homicide workload.
    pub homicide_records: usize,
    /// Repetitions per configuration (the paper uses 200).
    pub repetitions: usize,
    /// Number of samples `n` collected by the sampling algorithms (paper: 50).
    pub samples: usize,
    /// Total privacy budget `ε` (paper: 0.2).
    pub epsilon: f64,
    /// Number of random outliers averaged over in the COE-match experiments
    /// (paper: 100).
    pub coe_outliers: usize,
    /// Number of random neighboring datasets per outlier in the COE-match
    /// experiments (paper: 50).
    pub coe_neighbors: usize,
    /// Attempt cap for uniform sampling.
    pub uniform_attempt_cap: usize,
    /// Master seed for all randomness in the harness.
    pub seed: u64,
}

impl ExperimentScale {
    /// Laptop-scale defaults: minutes, not days, while preserving the shape of
    /// every table and figure.
    pub fn quick() -> Self {
        ExperimentScale {
            // Large enough that population-size differences between contexts
            // dominate the per-step budget (the utility-guided searches need a
            // visible gradient), small enough for laptop runtimes.
            salary_records: 8_000,
            homicide_records: 8_000,
            repetitions: 12,
            samples: 50,
            epsilon: 0.2,
            coe_outliers: 5,
            coe_neighbors: 5,
            uniform_attempt_cap: 60_000,
            seed: 0x5EED,
        }
    }

    /// A micro scale used by unit tests of the harness itself (seconds).
    pub fn smoke() -> Self {
        ExperimentScale {
            salary_records: 700,
            homicide_records: 800,
            repetitions: 4,
            samples: 10,
            epsilon: 0.2,
            coe_outliers: 2,
            coe_neighbors: 2,
            uniform_attempt_cap: 20_000,
            seed: 0x5EED,
        }
    }

    /// The paper's reported scale (Section 6): use only if you have hours to
    /// days of compute to spare.
    pub fn paper() -> Self {
        ExperimentScale {
            salary_records: 11_000,
            homicide_records: 28_000,
            repetitions: 200,
            samples: 50,
            epsilon: 0.2,
            coe_outliers: 100,
            coe_neighbors: 50,
            uniform_attempt_cap: 2_000_000,
            seed: 0x5EED,
        }
    }

    /// Parses a scale name (`quick`, `smoke`, `paper`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "smoke" => Some(Self::smoke()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cost() {
        let smoke = ExperimentScale::smoke();
        let quick = ExperimentScale::quick();
        let paper = ExperimentScale::paper();
        assert!(smoke.salary_records < quick.salary_records);
        assert!(quick.salary_records < paper.salary_records);
        assert!(smoke.repetitions < quick.repetitions);
        assert!(quick.repetitions < paper.repetitions);
        assert_eq!(paper.repetitions, 200);
        assert_eq!(paper.samples, 50);
        assert_eq!(paper.epsilon, 0.2);
    }

    #[test]
    fn by_name_resolves_presets() {
        assert_eq!(ExperimentScale::by_name("quick"), Some(ExperimentScale::quick()));
        assert_eq!(ExperimentScale::by_name("smoke"), Some(ExperimentScale::smoke()));
        assert_eq!(ExperimentScale::by_name("paper"), Some(ExperimentScale::paper()));
        assert_eq!(ExperimentScale::by_name("warp"), None);
        assert_eq!(ExperimentScale::default(), ExperimentScale::quick());
    }
}
