//! `reproduce` — regenerate the tables and figures of the PCOR paper.
//!
//! ```text
//! Usage: reproduce [--scale smoke|quick|paper] [--json <path>] [SELECTOR ...]
//!
//! Selectors (default: all):
//!   all                 every experiment
//!   table2 .. table13   the corresponding table (paired tables run together)
//!   figure1 .. figure5  the experiment behind the corresponding figure
//!   sampling overlap detectors epsilon samples coe-salary coe-homicide
//!   ratio direct figures service batch verify pool mechanisms wal net
//! ```
//!
//! Examples:
//!
//! ```bash
//! cargo run --release -p pcor-bench --bin reproduce -- table2 table3
//! cargo run --release -p pcor-bench --bin reproduce -- --scale quick all
//! cargo run --release -p pcor-bench --bin reproduce -- --json results.json all
//! ```

use pcor_bench::experiments::{self, ExperimentId, ExperimentOutput};
use pcor_bench::ExperimentScale;
use std::alloc::{GlobalAlloc, Layout, System};
use std::time::Instant;

/// System allocator wrapper feeding `pcor_bench::alloc_probe` so experiments
/// (notably `verify-hotpath`) can report allocations per call. Counting is
/// one relaxed atomic increment per allocation — noise for the wall-clock
/// numbers, which measure µs-scale sections.
struct CountingAllocator;

// SAFETY: delegates allocation verbatim to `System`; the only addition is a
// side-effect-free atomic counter bump.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        pcor_bench::alloc_probe::note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        pcor_bench::alloc_probe::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    pcor_bench::alloc_probe::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::quick();
    let mut selectors: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                match ExperimentScale::by_name(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}' (expected smoke, quick or paper)");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "Usage: reproduce [--scale smoke|quick|paper] [--json <path>] [SELECTOR ...]"
                );
                println!("Selectors: all, table2..table13, figure1..figure5, sampling, overlap,");
                println!(
                    "           detectors, epsilon, samples, coe-salary, coe-homicide, ratio,"
                );
                println!("           direct, service, batch, verify, pool, mechanisms, wal");
                return;
            }
            other => selectors.push(other.to_string()),
        }
        i += 1;
    }
    if selectors.is_empty() {
        selectors.push("all".to_string());
    }

    let mut ids: Vec<ExperimentId> = Vec::new();
    for selector in &selectors {
        let parsed = ExperimentId::parse(selector);
        if parsed.is_empty() {
            eprintln!("unknown experiment selector '{selector}' (try --help)");
            std::process::exit(2);
        }
        for id in parsed {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }

    println!(
        "PCOR reproduction harness — scale: {} records (salary), {} repetitions, eps = {}, n = {}\n",
        scale.salary_records, scale.repetitions, scale.epsilon, scale.samples
    );

    let mut combined = ExperimentOutput::default();
    for id in ids {
        println!(">>> running {id}");
        let start = Instant::now();
        match experiments::run(id, &scale) {
            Ok(output) => {
                println!("    done in {:.1?}\n", start.elapsed());
                print!("{output}");
                combined.extend(output);
            }
            Err(err) => {
                eprintln!("    FAILED: {err}\n");
            }
        }
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&combined) {
            Ok(json) => {
                if let Err(err) = std::fs::write(&path, json) {
                    eprintln!("could not write {path}: {err}");
                } else {
                    println!("wrote results to {path}");
                }
            }
            Err(err) => eprintln!("could not serialize results: {err}"),
        }
    }
}
