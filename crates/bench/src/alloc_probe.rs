//! Allocation counting hooks for the experiment harness.
//!
//! The library side is plain safe code: two atomics and their readers. The
//! `reproduce` binary installs a counting `GlobalAlloc` wrapper around the
//! system allocator that calls [`note_alloc`] on every allocation (the
//! `unsafe impl` lives in the binary — this crate forbids unsafe code), so
//! experiments such as `verify-hotpath` can report *allocations per call*
//! before and after the zero-allocation engine. When no counting allocator
//! is installed (unit tests, criterion benches), [`installed`] is `false`
//! and the experiments report allocation counts as unavailable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Called by the binary's counting allocator on every allocation.
pub fn note_alloc() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Marks the counting allocator as installed (called once at startup by the
/// binary that registered it).
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Whether a counting allocator is feeding [`note_alloc`].
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Total allocations observed so far (monotone; diff two readings around a
/// measured section).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(result, allocations during f)`, or `None` for the
/// count when no counting allocator is installed.
pub fn counted<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    let before = allocations();
    let result = f();
    let after = allocations();
    (result, installed().then_some(after - before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_inert_without_an_installed_allocator() {
        // Unit tests run without the counting allocator; the probe must
        // report unavailability rather than a bogus zero.
        let (value, count) = counted(|| vec![1u8; 128].len());
        assert_eq!(value, 128);
        if !installed() {
            assert_eq!(count, None);
        }
        // The raw counter API stays monotone.
        let before = allocations();
        note_alloc();
        assert!(allocations() > before);
    }
}
