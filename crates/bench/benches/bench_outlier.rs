//! Criterion micro-benchmarks of the outlier detectors (the cost of one
//! `f_M` verification for populations of different sizes). Supports Tables 6–7
//! by showing where the per-detector runtime differences come from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_data::generator::sample_standard_normal;
use pcor_outlier::{
    GrubbsDetector, HistogramDetector, LofDetector, OutlierDetector, ZScoreDetector,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn population(size: usize) -> Vec<f64> {
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let mut values: Vec<f64> =
        (0..size - 1).map(|_| 100.0 + 15.0 * sample_standard_normal(&mut rng)).collect();
    values.push(400.0); // one clear outlier at the end
    values
}

fn bench_detectors(c: &mut Criterion) {
    let detectors: Vec<(&str, Box<dyn OutlierDetector>)> = vec![
        ("grubbs", Box::new(GrubbsDetector::default())),
        ("histogram", Box::new(HistogramDetector::default())),
        ("lof", Box::new(LofDetector::default())),
        ("zscore", Box::new(ZScoreDetector::default())),
    ];
    for (name, detector) in &detectors {
        let mut group = c.benchmark_group(format!("detector_{name}"));
        for &size in &[100usize, 1_000, 10_000] {
            let values = population(size);
            let target = values.len() - 1;
            group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
                b.iter(|| black_box(detector.is_outlier(&values, target)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
