//! Criterion micro-benchmarks of the Exponential mechanism — the privacy
//! primitive invoked once per expansion step in DP-DFS/DP-BFS and once for the
//! final draw of every algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_dp::{ExponentialMechanism, LaplaceMechanism};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_exponential_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("exponential_select");
    let mechanism = ExponentialMechanism::new(0.002, 1.0).unwrap();
    for &candidates in &[10usize, 100, 1_000, 10_000] {
        let scores: Vec<f64> = (0..candidates).map(|i| (i % 977) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(candidates), &candidates, |b, _| {
            let mut rng = ChaCha12Rng::seed_from_u64(7);
            b.iter(|| black_box(mechanism.select(&scores, &mut rng).unwrap()));
        });
    }
    group.finish();
}

fn bench_exponential_probabilities(c: &mut Criterion) {
    let mechanism = ExponentialMechanism::new(0.1, 1.0).unwrap();
    let scores: Vec<f64> =
        (0..1_000).map(|i| if i % 7 == 0 { f64::NEG_INFINITY } else { (i % 977) as f64 }).collect();
    c.bench_function("exponential_probabilities_1000", |b| {
        b.iter(|| black_box(mechanism.probabilities(&scores).unwrap()));
    });
}

fn bench_laplace(c: &mut Criterion) {
    let mechanism = LaplaceMechanism::new(0.1, 1.0).unwrap();
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    c.bench_function("laplace_release", |b| {
        b.iter(|| black_box(mechanism.release(black_box(1234.0), &mut rng)));
    });
}

criterion_group!(benches, bench_exponential_select, bench_exponential_probabilities, bench_laplace);
criterion_main!(benches);
