//! End-to-end Criterion benchmarks: a full PCOR-BFS release (the paper's
//! recommended configuration) across dataset sizes, detectors and utilities.
//! Supports Tables 6–11 by exposing how the release cost scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_core::runner::find_random_outlier;
use pcor_core::{enumerate_coe, release_context, PcorConfig, SamplingAlgorithm};
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_dp::{OverlapUtility, PopulationSizeUtility, Utility};
use pcor_outlier::{DetectorKind, LofDetector};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_bfs_across_dataset_sizes(c: &mut Criterion) {
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let mut group = c.benchmark_group("bfs_release_by_records");
    group.sample_size(10);
    for &records in &[1_000usize, 3_000, 8_000] {
        let dataset = salary_dataset(&SalaryConfig::reduced().with_records(records)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let Ok(outlier) = find_random_outlier(&dataset, &detector, 800, &mut rng) else {
            continue;
        };
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2)
            .with_samples(30)
            .with_starting_context(outlier.starting_context.clone());
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            let mut rng = ChaCha12Rng::seed_from_u64(31);
            b.iter(|| {
                black_box(
                    release_context(
                        &dataset,
                        outlier.record_id,
                        &detector,
                        &utility,
                        &config,
                        &mut rng,
                    )
                    .expect("release"),
                )
            });
        });
    }
    group.finish();
}

fn bench_bfs_across_detectors(c: &mut Criterion) {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(3_000)).unwrap();
    let utility = PopulationSizeUtility;
    let mut group = c.benchmark_group("bfs_release_by_detector");
    group.sample_size(10);
    for kind in DetectorKind::paper_detectors() {
        let detector = kind.build();
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let Ok(outlier) = find_random_outlier(&dataset, detector.as_ref(), 800, &mut rng) else {
            continue;
        };
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2)
            .with_samples(30)
            .with_starting_context(outlier.starting_context.clone());
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            let mut rng = ChaCha12Rng::seed_from_u64(37);
            b.iter(|| {
                black_box(
                    release_context(
                        &dataset,
                        outlier.record_id,
                        detector.as_ref(),
                        &utility,
                        &config,
                        &mut rng,
                    )
                    .expect("release"),
                )
            });
        });
    }
    group.finish();
}

fn bench_utilities_and_reference(c: &mut Criterion) {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(2_000)).unwrap();
    let detector = LofDetector::default();
    let mut rng = ChaCha12Rng::seed_from_u64(41);
    let Ok(outlier) = find_random_outlier(&dataset, &detector, 800, &mut rng) else {
        return;
    };
    let overlap = OverlapUtility::new(&dataset, outlier.starting_context.clone()).unwrap();
    let population = PopulationSizeUtility;
    let utilities: Vec<(&str, &dyn Utility)> =
        vec![("population", &population), ("overlap", &overlap)];

    let mut group = c.benchmark_group("bfs_release_by_utility");
    group.sample_size(10);
    for (name, utility) in utilities {
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2)
            .with_samples(30)
            .with_starting_context(outlier.starting_context.clone());
        group.bench_function(name, |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(43);
            b.iter(|| {
                black_box(
                    release_context(
                        &dataset,
                        outlier.record_id,
                        &detector,
                        utility,
                        &config,
                        &mut rng,
                    )
                    .expect("release"),
                )
            });
        });
    }
    group.finish();

    // The reference-file enumeration (the paper's three-day job, here t = 14).
    c.bench_function("reference_file_enumeration_t14", |b| {
        b.iter(|| {
            black_box(
                enumerate_coe(&dataset, outlier.record_id, &detector, &PopulationSizeUtility, 22)
                    .expect("enumeration"),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_bfs_across_dataset_sizes,
    bench_bfs_across_detectors,
    bench_utilities_and_reference
);
criterion_main!(benches);
