//! Criterion micro-benchmarks of the data substrate: context-population
//! evaluation and neighbor generation. These are the inner loops behind every
//! table in the paper (each `f_M` call filters the dataset once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_data::Context;
use pcor_graph::ContextGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_population_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_evaluation");
    for &records in &[1_000usize, 5_000, 20_000] {
        let dataset = salary_dataset(&SalaryConfig::reduced().with_records(records)).unwrap();
        let t = dataset.schema().total_values();
        let graph = ContextGraph::new(t);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let contexts: Vec<Context> = (0..64).map(|_| graph.random_vertex(0.5, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let context = &contexts[i % contexts.len()];
                i += 1;
                black_box(dataset.population_size(context).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_neighbor_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_generation");
    for &t in &[14usize, 25, 64] {
        let graph = ContextGraph::new(t);
        let context = Context::full(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(graph.neighbors(&context).len()));
        });
    }
    group.finish();
}

fn bench_minimal_context_and_cover(c: &mut Criterion) {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(5_000)).unwrap();
    let context = dataset.minimal_context(0).unwrap();
    c.bench_function("covers_check", |b| {
        b.iter(|| black_box(dataset.covers(&context, 0).unwrap()));
    });
    c.bench_function("minimal_context", |b| {
        b.iter(|| black_box(dataset.minimal_context(42).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_population_evaluation,
    bench_neighbor_generation,
    bench_minimal_context_and_cover
);
criterion_main!(benches);
