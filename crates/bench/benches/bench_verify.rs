//! Criterion micro-benchmarks of the `f_M` verification hot path: the
//! from-scratch population evaluation against the incremental
//! scratch/cursor engine, at several dataset sizes. The `verify-hotpath`
//! experiment (`reproduce -- verify`) reports the same comparison with
//! allocation counts; this harness tracks regressions per engine layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_data::{Context, PopulationCursor, PopulationScratch, ShardPolicy};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::ZScoreDetector;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn flip_sequence(t: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..t)).collect()
}

fn bench_population_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_engines");
    for &records in &[10_000usize, 50_000] {
        let dataset = salary_dataset(&SalaryConfig::reduced().with_records(records)).unwrap();
        let t = dataset.schema().total_values();
        let start = Context::full(t);
        let flips = flip_sequence(t, 64, 7);

        group.bench_with_input(BenchmarkId::new("from_scratch", records), &records, |b, _| {
            let mut context = start.clone();
            let mut i = 0usize;
            b.iter(|| {
                context.flip(flips[i % flips.len()]);
                i += 1;
                black_box(dataset.population(&context).unwrap().count())
            });
        });

        group.bench_with_input(BenchmarkId::new("scratch_reuse", records), &records, |b, _| {
            let mut context = start.clone();
            let mut scratch = PopulationScratch::for_dataset(&dataset);
            let mut i = 0usize;
            b.iter(|| {
                context.flip(flips[i % flips.len()]);
                i += 1;
                black_box(dataset.population_into(&context, &mut scratch).unwrap().count())
            });
        });

        group.bench_with_input(BenchmarkId::new("cursor_serial", records), &records, |b, _| {
            let mut cursor =
                PopulationCursor::with_policy(&dataset, &start, ShardPolicy::serial()).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                cursor.flip(flips[i % flips.len()]);
                i += 1;
                black_box(cursor.population_size())
            });
        });
    }
    group.finish();
}

fn bench_verifier_evaluate(c: &mut Criterion) {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(10_000)).unwrap();
    let t = dataset.schema().total_values();
    let detector = ZScoreDetector::default();
    let utility = PopulationSizeUtility;
    let flips = flip_sequence(t, 64, 11);

    // Steady-state memoized evaluation: the cyclic flip walk revisits a
    // small set of contexts, so after the first cycle every call is a
    // fingerprint cache hit — the latency BFS/DFS pay when re-scoring an
    // already-evaluated frontier.
    c.bench_function("verifier_evaluate_cached_walk", |b| {
        let mut verifier = pcor_core::Verifier::new(&dataset, &detector, &utility, 0);
        let mut context = Context::full(t);
        let mut i = 0usize;
        b.iter(|| {
            context.flip(flips[i % flips.len()]);
            i += 1;
            black_box(verifier.evaluate(&context).unwrap().population_size)
        });
    });

    // Fresh evaluations: a new verifier per iteration evaluates 8 distinct
    // contexts, so every call is a cache miss. The reported time is 8 fresh
    // evaluations plus one verifier/cursor construction — divide by 8 for a
    // per-call upper bound on the miss path.
    let fresh_contexts: Vec<Context> = {
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let mut context = Context::full(t);
        (0..8)
            .map(|_| {
                context.flip(rng.random_range(0..t));
                context.clone()
            })
            .collect()
    };
    c.bench_function("verifier_evaluate_fresh_x8", |b| {
        b.iter(|| {
            let mut verifier = pcor_core::Verifier::new(&dataset, &detector, &utility, 0);
            let mut total = 0usize;
            for context in &fresh_contexts {
                total += verifier.evaluate(context).unwrap().population_size;
            }
            black_box(total)
        });
    });

    // The batched child-generation primitive: all t neighbors of one vertex
    // in a single cursor walk. A fresh verifier per iteration keeps every
    // neighbor a cache miss (the memoized replay is covered by the cached
    // walk above).
    c.bench_function("verifier_evaluate_neighbors_fresh", |b| {
        let base = Context::full(t);
        b.iter(|| {
            let mut verifier = pcor_core::Verifier::new(&dataset, &detector, &utility, 0);
            black_box(verifier.evaluate_neighbors(&base).unwrap().len())
        });
    });
}

criterion_group!(benches, bench_population_engines, bench_verifier_evaluate);
criterion_main!(benches);
