//! Criterion benchmark behind Table 2: one full release per sampling
//! algorithm (Uniform, Random-Walk, DP-DFS, DP-BFS) on the reduced salary
//! workload with the LOF detector and population-size utility.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_bench::workloads::{Workload, WorkloadKind};
use pcor_bench::ExperimentScale;
use pcor_core::{release_context, PcorConfig, SamplingAlgorithm};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::LofDetector;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_sampling_algorithms(c: &mut Criterion) {
    let scale = ExperimentScale::smoke();
    let detector = LofDetector::default();
    let utility = PopulationSizeUtility;
    let workload =
        Workload::build(WorkloadKind::Salary, &scale, &detector).expect("workload construction");

    let mut group = c.benchmark_group("sampling_release");
    group.sample_size(10);
    for algorithm in SamplingAlgorithm::sampling_algorithms() {
        let config = PcorConfig::new(algorithm, scale.epsilon)
            .with_samples(scale.samples)
            .with_max_attempts(scale.uniform_attempt_cap)
            .with_starting_context(workload.outlier.starting_context.clone());
        group.bench_with_input(BenchmarkId::from_parameter(algorithm), &algorithm, |b, _| {
            let mut rng = ChaCha12Rng::seed_from_u64(99);
            b.iter(|| {
                black_box(
                    release_context(
                        &workload.dataset,
                        workload.outlier.record_id,
                        &detector,
                        &utility,
                        &config,
                        &mut rng,
                    )
                    .expect("release"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_algorithms);
criterion_main!(benches);
