//! Criterion benchmark behind the Section 1.2 headline: the direct (O(2^t))
//! approach versus PCOR-BFS on schemas of growing size. The absolute times are
//! hardware-dependent; the *ratio* is the reproduction target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_core::runner::find_random_outlier;
use pcor_core::{release_context, PcorConfig, SamplingAlgorithm};
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_dp::PopulationSizeUtility;
use pcor_outlier::ZScoreDetector;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_direct_vs_bfs(c: &mut Criterion) {
    // Sweep the schema size: t = 11, 14 on a small record count so the direct
    // approach stays measurable.
    let detector = ZScoreDetector::new(3.0);
    let utility = PopulationSizeUtility;

    let t11 =
        SalaryConfig { num_job_titles: 4, num_employers: 4, num_years: 3, ..SalaryConfig::tiny() }
            .with_records(800);
    let t14 = SalaryConfig::reduced().with_records(800);

    for (label, cfg) in [("t11", t11), ("t14", t14)] {
        let dataset = salary_dataset(&cfg).expect("dataset");
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let Ok(outlier) = find_random_outlier(&dataset, &detector, 500, &mut rng) else {
            continue;
        };
        let mut group = c.benchmark_group(format!("direct_vs_bfs_{label}"));
        group.sample_size(10);
        for algorithm in [SamplingAlgorithm::Direct, SamplingAlgorithm::Bfs] {
            let config = PcorConfig::new(algorithm, 0.2)
                .with_samples(20)
                .with_starting_context(outlier.starting_context.clone());
            group.bench_with_input(BenchmarkId::from_parameter(algorithm), &algorithm, |b, _| {
                let mut rng = ChaCha12Rng::seed_from_u64(17);
                b.iter(|| {
                    black_box(
                        release_context(
                            &dataset,
                            outlier.record_id,
                            &detector,
                            &utility,
                            &config,
                            &mut rng,
                        )
                        .expect("release"),
                    )
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_direct_vs_bfs);
criterion_main!(benches);
