//! Criterion benchmark of the `pcor-service` worker pool: a fixed batch of
//! multi-analyst release queries against a shared salary dataset, across
//! pool sizes. Complements the `service` experiment of the `reproduce`
//! binary with per-batch wall-clock numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcor_core::runner::find_random_outlier;
use pcor_core::SamplingAlgorithm;
use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_outlier::DetectorKind;
use pcor_service::{BudgetLedger, DatasetRegistry, ReleaseRequest, Server, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;
use std::sync::Arc;

const BATCH: usize = 24;

fn bench_service_batch(c: &mut Criterion) {
    let dataset = salary_dataset(&SalaryConfig::reduced().with_records(2_000)).unwrap();
    let detector = DetectorKind::ZScore;
    let built = detector.build();
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let Ok(outlier) = find_random_outlier(&dataset, built.as_ref(), 800, &mut rng) else {
        eprintln!("no outlier found; skipping service benchmark");
        return;
    };

    let mut group = c.benchmark_group("service_batch_release");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4] {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("salary", dataset.clone());
        let ledger = Arc::new(BudgetLedger::new(f64::MAX / 2.0));
        let server = Server::start(
            ServerConfig::default().with_workers(workers).with_queue_capacity(64),
            registry,
            ledger,
        );
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                let pending: Vec<_> = (0..BATCH)
                    .map(|i| {
                        seed += 1;
                        let request = ReleaseRequest::new(
                            &format!("analyst-{}", i % 3),
                            "salary",
                            outlier.record_id,
                        )
                        .with_detector(detector)
                        .with_algorithm(SamplingAlgorithm::Bfs)
                        .with_epsilon(0.2)
                        .with_samples(10)
                        .with_seed(seed);
                        server.submit(request).expect("submit")
                    })
                    .collect();
                for handle in pending {
                    black_box(handle.wait().expect("release"));
                }
            });
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_service_batch);
criterion_main!(benches);
