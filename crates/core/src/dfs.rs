//! Algorithm 4: differentially private depth-first search.
//!
//! Ordinary DFS is deterministic, so it cannot satisfy differential privacy
//! (an output that is certain under `D₁` may be impossible under `D₂`). The
//! paper's modification replaces the arbitrary "next child" choice with an
//! Exponential-mechanism draw over the matching, unvisited children, guided by
//! the utility function. The search maintains a stack; when the top vertex has
//! no eligible children it is popped, otherwise one child is drawn and pushed.
//! After `n` vertices have been visited, a final Exponential-mechanism draw
//! over the visited set selects the release.
//!
//! Each of the (at most) `n` expansion draws and the final draw costs `2ε₁Δu`,
//! so the total guarantee is `((2n+2)ε₁)`-OCDP (Theorem 5.5) and PCOR sets
//! `ε₁ = ε/(2n+2)` to spend exactly the configured budget. The complexity is
//! `O(n·t)` (Theorem 5.6).

use crate::select::mechanism_draw;
use crate::starting::{resolve_starting_context, DEFAULT_SEARCH_BUDGET};
use crate::verify::Verifier;
use crate::{PcorConfig, PcorResult, Result, SamplingAlgorithm};
use pcor_data::Context;
use rand::Rng;
use std::collections::HashSet;
use std::time::Duration;

/// Runs differentially private depth-first search (Algorithm 4).
///
/// # Errors
/// * [`crate::PcorError::NoStartingContext`] when no matching starting context
///   exists;
/// * verification/mechanism errors otherwise.
pub fn run<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    config: &PcorConfig,
    rng: &mut R,
) -> Result<PcorResult> {
    let start = resolve_starting_context(
        verifier,
        config.starting_context.as_ref(),
        DEFAULT_SEARCH_BUDGET,
    )?;

    let mechanism = config.mechanism_kind();
    let guarantee =
        SamplingAlgorithm::Dfs.guarantee(config.epsilon, config.samples)?.with_mechanism(mechanism);
    let epsilon1 = guarantee.epsilon_per_invocation;
    let step_mechanism = mechanism.build(epsilon1, verifier.utility().sensitivity())?;

    let mut stack: Vec<Context> = vec![start.clone()];
    let mut visited_set: HashSet<Context> = HashSet::new();
    let mut visited: Vec<Context> = Vec::new();

    while visited.len() < config.samples && !stack.is_empty() {
        let current = stack.last().expect("stack checked non-empty").clone();
        if visited_set.insert(current.clone()) {
            visited.push(current.clone());
        }

        // Generate the matching, unvisited children of the current vertex in
        // one batched cursor walk (visited children are cache hits).
        let mut children: Vec<Context> = Vec::new();
        let mut child_scores: Vec<f64> = Vec::new();
        let neighbor_evals = verifier.evaluate_neighbors(&current)?;
        for (bit, evaluation) in neighbor_evals.iter().enumerate() {
            if !evaluation.matching {
                continue;
            }
            let child = current.with_flipped(bit);
            if visited_set.contains(&child) {
                continue;
            }
            children.push(child);
            child_scores.push(evaluation.utility);
        }

        if children.is_empty() {
            stack.pop();
        } else {
            // The utility-guided, differentially private child selection.
            let mut erased: &mut R = rng;
            let index = step_mechanism.select(&child_scores, &mut erased)?;
            stack.push(children.swap_remove(index));
        }
    }

    let (context, utility) = mechanism_draw(verifier, &visited, mechanism, epsilon1, rng)?;
    Ok(PcorResult {
        context,
        utility,
        samples_collected: visited.len(),
        verification_calls: 0,
        guarantee,
        runtime: Duration::ZERO,
        algorithm: SamplingAlgorithm::Dfs,
        mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 2_000.0)];
        for i in 0..120 {
            records.push(Record::new(
                vec![(i % 3) as u16, ((i / 3) % 3) as u16],
                100.0 + (i % 11) as f64,
            ));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn dfs_releases_a_matching_context_with_split_budget() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Dfs, 0.2).with_samples(12);
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        assert!(result.samples_collected >= 1 && result.samples_collected <= 12);
        assert!((result.guarantee.epsilon_per_invocation - 0.2 / 26.0).abs() < 1e-12);
        assert!((result.guarantee.epsilon - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dfs_visits_at_most_n_contexts() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Dfs, 0.2).with_samples(3);
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(result.samples_collected <= 3);
    }

    #[test]
    fn dfs_utility_tends_to_beat_random_walk() {
        // The paper's headline comparison: utility-guided DFS reaches higher
        // utility than the blind random walk on average. Check on this small
        // workload over a handful of repetitions (both normalized by the true
        // maximum from exhaustive enumeration).
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = crate::coe::enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        let max = reference.max_utility;
        // At the paper's eps = 0.2 the per-step guidance is almost uniform on
        // a toy graph, so use a larger budget where the utility-guided
        // expansion is visible above run-to-run noise.
        let mut rng = ChaCha12Rng::seed_from_u64(2024);
        let mut dfs_total = 0.0;
        let mut walk_total = 0.0;
        for _ in 0..15 {
            let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
            let config = PcorConfig::new(SamplingAlgorithm::Dfs, 2.0).with_samples(10);
            dfs_total += run(&mut verifier, &config, &mut rng).unwrap().utility / max;

            let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
            let config = PcorConfig::new(SamplingAlgorithm::RandomWalk, 2.0).with_samples(10);
            walk_total +=
                crate::random_walk::run(&mut verifier, &config, &mut rng).unwrap().utility / max;
        }
        assert!(
            dfs_total >= walk_total * 0.9,
            "DFS utility {dfs_total} should not trail random walk {walk_total} by much"
        );
    }

    #[test]
    fn non_outlier_record_has_no_starting_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 50);
        let config = PcorConfig::new(SamplingAlgorithm::Dfs, 0.2);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(run(&mut verifier, &config, &mut rng), Err(crate::PcorError::NoStartingContext));
    }
}
