//! `COE_M` enumeration and the reference file.
//!
//! `COE_M(D, V)` (Definition 3.1) is the set of **all** matching contexts of a
//! record `V`. The paper materializes it into a *reference file* — every
//! context, its utility and whether `V` is an outlier in it — in order to
//! normalize the utility of PCOR's private answers ("the proportion of the
//! utility of the PCOR's output to the maximum utility", Section 6.2). On the
//! authors' 51 k-record dataset this took three days; here the enumeration is
//! restricted to the `2^(t−m)` contexts that actually cover `V` and is
//! parallelized across threads, which makes the reduced-scale workloads
//! (t ≤ 22) enumerable in seconds.

use crate::{PcorError, Result};
use pcor_data::{Context, Dataset};
use pcor_dp::Utility;
use pcor_outlier::OutlierDetector;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One matching context together with its utility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceEntry {
    /// The matching context.
    pub context: Context,
    /// Its utility score.
    pub utility: f64,
    /// Its population size `|D_C|`.
    pub population_size: usize,
}

/// The reference file for one record: all matching contexts with utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceFile {
    /// The queried record's id.
    pub outlier_id: usize,
    /// Every matching context with its utility, in enumeration order.
    pub entries: Vec<ReferenceEntry>,
    /// The maximum utility over all matching contexts.
    pub max_utility: f64,
    /// Total number of contexts examined (those covering the record).
    pub contexts_examined: usize,
}

impl ReferenceFile {
    /// Number of matching contexts (`|COE_M(D, V)|`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the record has no matching context at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The set of matching contexts.
    pub fn context_set(&self) -> HashSet<Context> {
        self.entries.iter().map(|e| e.context.clone()).collect()
    }

    /// The entry achieving the maximum utility (ties broken by enumeration
    /// order).
    pub fn maximum_entry(&self) -> Option<&ReferenceEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.utility.partial_cmp(&b.utility).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The utility ratio of a released context's utility against the maximum
    /// (`1.0` means the private answer matched the best possible context).
    pub fn utility_ratio(&self, utility: f64) -> f64 {
        if self.max_utility > 0.0 {
            utility / self.max_utility
        } else if utility == self.max_utility {
            1.0
        } else {
            0.0
        }
    }

    /// Whether a context is a matching context according to the reference.
    pub fn contains(&self, context: &Context) -> bool {
        self.entries.iter().any(|e| &e.context == context)
    }
}

/// Enumerates the Gray-code range `[lo, hi)` of the `2^|free_bits|`
/// super-contexts of `minimal` on one incremental cursor, collecting the
/// matching entries.
///
/// The binary-reflected Gray code visits every subset of the free bits
/// exactly once while consecutive steps differ in a single bit, so each step
/// costs one cursor flip plus one fused AND/popcount pass — no per-context
/// allocation. Used by both the serial and the multi-threaded enumeration
/// (each worker walks a disjoint mask range).
#[allow(clippy::too_many_arguments)]
fn enumerate_gray_range(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    minimal: &Context,
    free_bits: &[usize],
    lo: u64,
    hi: u64,
) -> Result<Vec<ReferenceEntry>> {
    // Position the start of the range: the Gray code of `lo`.
    let mut start = minimal.clone();
    let gray = lo ^ (lo >> 1);
    for (i, &bit) in free_bits.iter().enumerate() {
        if (gray >> i) & 1 == 1 {
            start.set(bit, true);
        }
    }
    let mut cursor = pcor_data::PopulationCursor::new(dataset, &start)?;
    let use_moments = detector.supports_moments();
    let mut metrics: Vec<f64> = Vec::new();
    let mut entries: Vec<ReferenceEntry> = Vec::new();
    for step in lo..hi {
        if step > lo {
            // gray(step) differs from gray(step - 1) in bit trailing_zeros(step).
            cursor.flip(free_bits[step.trailing_zeros() as usize]);
        }
        let (context, population, population_size) = cursor.evaluated();
        if crate::verify::classify_population(
            dataset,
            population,
            population_size,
            outlier_id,
            detector,
            use_moments,
            &mut metrics,
        ) {
            entries.push(ReferenceEntry {
                utility: utility.score(dataset, context, population),
                context: context.clone(),
                population_size,
            });
        }
    }
    Ok(entries)
}

/// Enumerates `COE_M(D, V)` on an existing memoized
/// [`Verifier`](crate::verify::Verifier), producing the reference file.
///
/// Unlike [`enumerate_coe`] this runs single-threaded but shares the
/// verifier's `f_M` cache: contexts already evaluated by earlier releases or
/// searches cost nothing, and everything this enumeration evaluates stays
/// memoized for later releases. This is the variant
/// [`crate::ReleaseSession::reference`] uses.
///
/// # Errors
/// * [`PcorError::TooManyAttributeValues`] when `t` exceeds `limit`;
/// * data-layer errors otherwise.
pub fn enumerate_coe_with(
    verifier: &mut crate::verify::Verifier<'_>,
    limit: usize,
) -> Result<ReferenceFile> {
    let dataset = verifier.dataset();
    let t = dataset.schema().total_values();
    if t > limit {
        return Err(PcorError::TooManyAttributeValues { t, limit });
    }
    let minimal = verifier.minimal_context()?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
    let total: u64 = 1u64 << free_bits.len();

    // Walk the space in Gray-code order: consecutive contexts differ in one
    // bit, so the verifier's cursor advances by a single flip per context
    // (cache hits for anything earlier releases already evaluated).
    let mut entries: Vec<ReferenceEntry> = Vec::new();
    let mut context = minimal;
    for step in 0..total {
        if step > 0 {
            context.flip(free_bits[step.trailing_zeros() as usize]);
        }
        let evaluation = verifier.evaluate(&context)?;
        if evaluation.matching {
            entries.push(ReferenceEntry {
                context: context.clone(),
                utility: evaluation.utility,
                population_size: evaluation.population_size,
            });
        }
    }
    entries.sort_by(|a, b| a.context.cmp(&b.context));
    let max_utility = entries.iter().map(|e| e.utility).fold(f64::NEG_INFINITY, f64::max);
    Ok(ReferenceFile {
        outlier_id: verifier.outlier_id(),
        entries,
        max_utility: if max_utility.is_finite() { max_utility } else { 0.0 },
        contexts_examined: total as usize,
    })
}

/// Enumerates `COE_M(D, V)` on a resident [`pcor_runtime::ThreadPool`]:
/// the Gray-code mask range is split into one chunk per pool worker and the
/// chunks run as fork-join tasks on the pool (the calling thread helps
/// execute), each on its own incremental cursor.
///
/// Results are identical to [`enumerate_coe`] — same entries, same
/// deterministic order — the difference is purely *where* the work runs: a
/// serving process enumerating reference files concurrently with releases
/// shares one set of resident workers instead of spawning a thread burst
/// per enumeration. This is the variant
/// [`crate::ReleaseSession::reference`] picks when the session borrows a
/// pool and the space is large enough to split.
///
/// # Errors
/// * [`PcorError::TooManyAttributeValues`] when `t` exceeds `limit`;
/// * data-layer errors otherwise.
pub fn enumerate_coe_on(
    pool: &pcor_runtime::ThreadPool,
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    limit: usize,
) -> Result<ReferenceFile> {
    let t = dataset.schema().total_values();
    if t > limit {
        return Err(PcorError::TooManyAttributeValues { t, limit });
    }
    if outlier_id >= dataset.len() {
        return Err(PcorError::InvalidConfig(format!(
            "outlier id {outlier_id} out of range for a dataset of {} records",
            dataset.len()
        )));
    }
    let minimal = dataset.minimal_context(outlier_id)?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
    let total: u64 = 1u64 << free_bits.len();

    let shards = (pool.workers() as u64).clamp(1, total.max(1)) as usize;
    let chunk = total.div_ceil(shards as u64);
    let mut results: Vec<Result<Vec<ReferenceEntry>>> =
        (0..total.div_ceil(chunk).max(1)).map(|_| Ok(Vec::new())).collect();
    pool.scope(|scope| {
        for (worker, slot) in results.iter_mut().enumerate() {
            let lo = worker as u64 * chunk;
            let hi = (lo + chunk).min(total);
            let minimal = &minimal;
            let free_bits = &free_bits;
            scope.spawn(move || {
                *slot = enumerate_gray_range(
                    dataset, outlier_id, detector, utility, minimal, free_bits, lo, hi,
                );
            });
        }
    });
    let mut entries: Vec<ReferenceEntry> = Vec::new();
    for result in results {
        entries.extend(result?);
    }
    // Deterministic order independent of scheduling, as in `enumerate_coe`.
    entries.sort_by(|a, b| a.context.cmp(&b.context));
    let max_utility = entries.iter().map(|e| e.utility).fold(f64::NEG_INFINITY, f64::max);
    Ok(ReferenceFile {
        outlier_id,
        entries,
        max_utility: if max_utility.is_finite() { max_utility } else { 0.0 },
        contexts_examined: total as usize,
    })
}

/// Enumerates `COE_M(D, V)`: every matching context of record `outlier_id`,
/// with utilities, producing the reference file.
///
/// Only the `2^(t−m)` contexts covering the record are examined. The work is
/// split across threads when the space is large.
///
/// # Errors
/// * [`PcorError::TooManyAttributeValues`] when `t` exceeds `limit`;
/// * data-layer errors otherwise.
pub fn enumerate_coe(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    limit: usize,
) -> Result<ReferenceFile> {
    let t = dataset.schema().total_values();
    if t > limit {
        return Err(PcorError::TooManyAttributeValues { t, limit });
    }
    if outlier_id >= dataset.len() {
        return Err(PcorError::InvalidConfig(format!(
            "outlier id {outlier_id} out of range for a dataset of {} records",
            dataset.len()
        )));
    }
    let minimal = dataset.minimal_context(outlier_id)?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();
    let total: u64 = 1u64 << free_bits.len();

    // Parallelize for large spaces; stay single-threaded for small ones to
    // avoid thread-spawn overhead in tests. Every worker walks its mask
    // range in Gray-code order on its own incremental cursor.
    let num_threads = if total >= 4_096 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
    } else {
        1
    };

    let mut entries: Vec<ReferenceEntry> = if num_threads <= 1 {
        enumerate_gray_range(
            dataset, outlier_id, detector, utility, &minimal, &free_bits, 0, total,
        )?
    } else {
        let chunk = total.div_ceil(num_threads as u64);
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..num_threads as u64 {
                let lo = worker * chunk;
                let hi = ((worker + 1) * chunk).min(total);
                let minimal = &minimal;
                let free_bits = &free_bits;
                handles.push(scope.spawn(move || {
                    enumerate_gray_range(
                        dataset, outlier_id, detector, utility, minimal, free_bits, lo, hi,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("enumeration worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::new();
        for r in results {
            out.extend(r?);
        }
        out
    };

    // Deterministic order independent of thread scheduling.
    entries.sort_by(|a, b| a.context.cmp(&b.context));
    let max_utility = entries.iter().map(|e| e.utility).fold(f64::NEG_INFINITY, f64::max);
    Ok(ReferenceFile {
        outlier_id,
        entries,
        max_utility: if max_utility.is_finite() { max_utility } else { 0.0 },
        contexts_examined: total as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0)];
        for i in 0..60 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        // Brute force over all 2^5 contexts with a fresh verifier.
        let mut verifier = crate::verify::Verifier::new(&dataset, &detector, &utility, 0);
        let mut expected = HashSet::new();
        for mask in 0..(1u32 << 5) {
            let context = Context::from_indices(5, (0..5).filter(|i| (mask >> i) & 1 == 1));
            if verifier.is_matching(&context).unwrap() {
                expected.insert(context);
            }
        }
        assert_eq!(reference.context_set(), expected);
        assert_eq!(reference.len(), expected.len());
        assert!(!reference.is_empty());
        assert_eq!(reference.contexts_examined, 1 << 3); // 2^(t-m) = 2^3
    }

    #[test]
    fn maximum_entry_and_ratios() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        let max_entry = reference.maximum_entry().unwrap();
        assert_eq!(max_entry.utility, reference.max_utility);
        assert_eq!(max_entry.population_size as f64, max_entry.utility);
        assert!((reference.utility_ratio(reference.max_utility) - 1.0).abs() < 1e-12);
        assert!(reference.utility_ratio(reference.max_utility / 2.0) < 1.0);
        assert!(reference.contains(&max_entry.context));
        assert!(!reference.contains(&Context::empty(5)));
    }

    #[test]
    fn non_outlier_record_has_empty_reference() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = enumerate_coe(&dataset, 5, &detector, &utility, 22).unwrap();
        assert!(reference.is_empty());
        assert_eq!(reference.max_utility, 0.0);
        assert!(reference.maximum_entry().is_none());
        assert_eq!(reference.utility_ratio(0.0), 1.0);
    }

    #[test]
    fn limits_and_bad_ids_are_rejected() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        assert!(matches!(
            enumerate_coe(&dataset, 0, &detector, &utility, 3),
            Err(PcorError::TooManyAttributeValues { t: 5, limit: 3 })
        ));
        assert!(matches!(
            enumerate_coe(&dataset, 1_000, &detector, &utility, 22),
            Err(PcorError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pool_enumeration_matches_serial_and_spawned() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let pool = pcor_runtime::ThreadPool::new(2);
        let via_pool = enumerate_coe_on(&pool, &dataset, 0, &detector, &utility, 22).unwrap();
        let via_spawn = enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        assert_eq!(via_pool, via_spawn, "pool and spawn enumeration must be identical");
        assert!(pool.stats().tasks_submitted > 0, "the enumeration must run on the pool");
        // Error paths mirror enumerate_coe.
        assert!(matches!(
            enumerate_coe_on(&pool, &dataset, 0, &detector, &utility, 3),
            Err(PcorError::TooManyAttributeValues { .. })
        ));
        assert!(matches!(
            enumerate_coe_on(&pool, &dataset, 1_000, &detector, &utility, 22),
            Err(PcorError::InvalidConfig(_))
        ));
    }

    #[test]
    fn parallel_and_serial_enumeration_agree() {
        // Use a schema large enough to trigger the parallel path (free bits
        // >= 12 -> total >= 4096).
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2", "a3", "a4"]),
                Attribute::from_values("B", &["b0", "b1", "b2", "b3", "b4"]),
                Attribute::from_values("C", &["c0", "c1", "c2", "c3", "c4"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0, 0], 9_000.0)];
        for i in 0..200u32 {
            records.push(Record::new(
                vec![(i % 5) as u16, ((i / 5) % 5) as u16, ((i / 25) % 5) as u16],
                100.0 + (i % 13) as f64,
            ));
        }
        let dataset = Dataset::new(schema, records).unwrap();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let reference = enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        // The parallel path ran (total = 2^12 = 4096 >= 4096). Verify against
        // the memoized verifier for a sample of entries.
        assert_eq!(reference.contexts_examined, 4096);
        let mut verifier = crate::verify::Verifier::new(&dataset, &detector, &utility, 0);
        for entry in reference.entries.iter().take(50) {
            assert!(verifier.is_matching(&entry.context).unwrap());
            assert_eq!(verifier.evaluate(&entry.context).unwrap().utility, entry.utility);
        }
    }
}
