//! The release engine: a [`ReleaseSession`] binds one
//! `(dataset, detector, utility)` triple and serves many releases from it.
//!
//! The paper's cost model is dominated by `f_M` verification calls, and its
//! experiments repeatedly query the same dataset/detector pair. The one-shot
//! [`release_context`](crate::release_context) entry point tears down the
//! memoized [`Verifier`] after every call, so repeat releases of the same
//! record pay the full verification cost again. A session keeps one verifier
//! **per queried record** alive across releases: the starting-context search
//! and every context evaluated by earlier releases stay memoized, so repeated
//! releases (different seeds, different ε, different algorithms) only pay for
//! contexts they have not seen before.
//!
//! Reusing the verifier is privacy-neutral: `f_M` is a deterministic function
//! of the dataset, so a memoized answer is byte-identical to a recomputed one
//! and the released distribution — and therefore the OCDP accounting — is
//! unchanged. Each release still consumes its own ε; the session amortizes
//! *computation*, never *budget*.
//!
//! ```
//! use pcor_core::session::{ReleaseSession, ReleaseSpec, SeedPolicy};
//! use pcor_core::SamplingAlgorithm;
//! use pcor_data::generator::{salary_dataset, SalaryConfig};
//! use pcor_dp::PopulationSizeUtility;
//! use pcor_outlier::ZScoreDetector;
//!
//! let dataset = salary_dataset(&SalaryConfig::tiny()).unwrap();
//! let detector = ZScoreDetector::default();
//! let utility = PopulationSizeUtility;
//!
//! let mut session = ReleaseSession::builder(&dataset, &detector, &utility)
//!     .seed_policy(SeedPolicy::Derived { base: 7 })
//!     .build();
//!
//! // Bind the session to records that actually are contextual outliers.
//! let outliers = session.find_outliers(1, 200).unwrap();
//! let record_id = outliers[0].record_id;
//!
//! let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(10);
//! let first = session.release(record_id, &spec).unwrap();
//! let second = session.release(record_id, &spec).unwrap();
//! // The second release reuses the memoized verifier: strictly fewer fresh
//! // verification calls than the first.
//! assert!(second.verification_calls < first.verification_calls);
//! assert!(first.guarantee.epsilon <= 0.2 + 1e-12);
//! ```

use crate::cancel::CancelToken;
use crate::coe::{enumerate_coe_on, enumerate_coe_with, ReferenceFile};
use crate::runner::OutlierQuery;
use crate::starting::{find_starting_context, DEFAULT_SEARCH_BUDGET};
use crate::verify::Verifier;
use crate::{PcorError, PcorResult, Result, SamplingAlgorithm};
use pcor_data::{Context, Dataset, KernelKind, ShardPolicy};
use pcor_dp::{MechanismKind, MechanismTally, Utility};
use pcor_outlier::OutlierDetector;
use pcor_runtime::ThreadPool;
use pcor_telemetry::{SpanId, Telemetry, TraceId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Reference-file spaces at or beyond this many contexts enumerate on the
/// session's pool (when one is attached); smaller spaces stay on the
/// memoized serial path, whose cache reuse outweighs parallelism.
const POOLED_REFERENCE_MIN_CONTEXTS: u64 = 4_096;

/// Per-candidate starting-context search budget used by
/// [`ReleaseSession::find_outliers`] (matches the historical behavior of
/// [`find_random_outlier`](crate::runner::find_random_outlier)).
const CANDIDATE_SEARCH_BUDGET: usize = 500;

/// Configuration of one PCOR release (formerly `PcorConfig`; the old name
/// remains available as a type alias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseSpec {
    /// Which release algorithm to run.
    pub algorithm: SamplingAlgorithm,
    /// Total OCDP privacy budget `ε`.
    pub epsilon: f64,
    /// Number of samples `n` the sampling algorithms collect (the paper's
    /// experiments use 25–200, default 50).
    pub samples: usize,
    /// Attempt cap for uniform sampling (it may otherwise never find `n`
    /// matching contexts).
    pub max_attempts: usize,
    /// Maximum `t` for which exhaustive enumeration (Direct / reference file)
    /// is permitted; protects against accidentally requesting `2^25` work.
    pub enumeration_limit: usize,
    /// Optional explicit starting context `C_V`; when `None` the release
    /// searches for one from the record's minimal context (a session caches
    /// the search result per record).
    pub starting_context: Option<Context>,
    /// The DP selection mechanism drawing every private choice of this
    /// release. `None` defers to the session's default (itself
    /// [`MechanismKind::Exponential`] unless overridden on the builder), so
    /// specs serialized before the mechanism axis existed keep their exact
    /// behavior.
    pub mechanism: Option<MechanismKind>,
}

impl ReleaseSpec {
    /// Creates a spec with the paper's defaults (`n = 50`, 200 000
    /// uniform-sampling attempts, enumeration limited to `t ≤ 22`).
    pub fn new(algorithm: SamplingAlgorithm, epsilon: f64) -> Self {
        ReleaseSpec {
            algorithm,
            epsilon,
            samples: 50,
            max_attempts: 200_000,
            enumeration_limit: 22,
            starting_context: None,
            mechanism: None,
        }
    }

    /// Sets the number of samples `n`.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the uniform-sampling attempt cap.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the exhaustive-enumeration limit on `t`.
    pub fn with_enumeration_limit(mut self, limit: usize) -> Self {
        self.enumeration_limit = limit;
        self
    }

    /// Provides an explicit starting context.
    pub fn with_starting_context(mut self, context: Context) -> Self {
        self.starting_context = Some(context);
        self
    }

    /// Selects the DP mechanism every private draw of this release goes
    /// through (overriding the session default).
    pub fn with_mechanism(mut self, mechanism: MechanismKind) -> Self {
        self.mechanism = Some(mechanism);
        self
    }

    /// The effective mechanism of this spec when run outside a session
    /// (`Exponential` unless explicitly set).
    pub fn mechanism_kind(&self) -> MechanismKind {
        self.mechanism.unwrap_or_default()
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// Returns [`PcorError::InvalidConfig`] for non-positive `ε` or zero
    /// samples.
    pub fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(PcorError::InvalidConfig(format!(
                "epsilon must be > 0, got {}",
                self.epsilon
            )));
        }
        if self.samples == 0 {
            return Err(PcorError::InvalidConfig("samples must be >= 1".into()));
        }
        Ok(())
    }
}

/// How a session derives the RNG seed of each release it runs through
/// [`ReleaseSession::release`] / [`ReleaseSession::release_batch`].
///
/// The explicit-seed entry points ([`ReleaseSession::release_with_seed`],
/// [`ReleaseSession::release_with_rng`]) bypass the policy. **Who picks the
/// seed matters for privacy** — see the seed caveat in the `pcor-service`
/// request documentation: seeds must come from entropy the analyst does not
/// know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Derive a fresh deterministic seed per release by mixing a base seed
    /// with the session's release counter (replayable, never repeats within
    /// a session).
    Derived {
        /// The base seed every per-release seed is derived from.
        base: u64,
    },
    /// The same fixed seed for every release (useful for audit replay of a
    /// single release; repeated releases are identical by construction).
    Fixed(u64),
}

impl Default for SeedPolicy {
    fn default() -> Self {
        SeedPolicy::Derived { base: 0 }
    }
}

impl SeedPolicy {
    /// The seed of the `sequence`-th draw under this policy.
    pub fn seed_for(&self, sequence: u64) -> u64 {
        match self {
            SeedPolicy::Fixed(seed) => *seed,
            SeedPolicy::Derived { base } => splitmix64(base.wrapping_add(sequence)),
        }
    }
}

/// SplitMix64 finalizer — decorrelates consecutive counter values into
/// well-spread seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a [`ReleaseSession`], binding the dataset, detector and utility
/// once and configuring the optional knobs.
pub struct ReleaseSessionBuilder<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn OutlierDetector,
    utility: &'a dyn Utility,
    seed_policy: SeedPolicy,
    search_budget: usize,
    pool: Option<Arc<ThreadPool>>,
    mechanism: MechanismKind,
    trace: Option<TraceContext>,
    cancel: Option<CancelToken>,
}

/// The telemetry hookup of a traced session: every release opens a
/// `session.release` span (with a `session.verify` child) under `parent`
/// within `trace`.
#[derive(Clone)]
struct TraceContext {
    telemetry: Telemetry,
    trace: TraceId,
    parent: Option<SpanId>,
}

impl<'a> ReleaseSessionBuilder<'a> {
    /// Sets the seed policy for [`ReleaseSession::release`].
    #[must_use]
    pub fn seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    /// Sets the session's default DP selection mechanism (default
    /// [`MechanismKind::Exponential`], the paper's primitive). Specs with an
    /// explicit [`ReleaseSpec::mechanism`] override it per release.
    #[must_use]
    pub fn mechanism(mut self, mechanism: MechanismKind) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the starting-context search budget (contexts examined before the
    /// search gives up; default [`DEFAULT_SEARCH_BUDGET`]).
    #[must_use]
    pub fn search_budget(mut self, budget: usize) -> Self {
        self.search_budget = budget.max(1);
        self
    }

    /// Lends the session a resident [`ThreadPool`]. The session then runs
    /// its parallel work on resident workers instead of spawning threads:
    ///
    /// * every verifier's fused AND/popcount pass shards on the pool via
    ///   [`ShardPolicy::pooled`] (engaging from
    ///   [`ShardPolicy::POOLED_MIN_WORDS`] words instead of the spawn
    ///   policy's [`ShardPolicy::AUTO_MIN_WORDS`]), which covers the
    ///   batched neighbor evaluation of the graph searches;
    /// * large reference-file enumerations run fork-join on the pool
    ///   ([`enumerate_coe_on`]).
    ///
    /// Like the verifier cache, the pool amortizes *computation only* —
    /// results are bit-identical to the serial engine, so the released
    /// distribution and the OCDP accounting are unchanged. One trade-off:
    /// a pool-parallel reference enumeration runs on scratch cursors, so
    /// its evaluations are counted in [`SessionStats`] but do not feed the
    /// record's memo cache (the serial path does both).
    #[must_use]
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a telemetry bundle and the caller's trace position. Every
    /// release the session runs then opens a `session.release` span (with a
    /// `session.verify` child around the search itself) parented to
    /// `parent` within `trace`, and records its wall time into the stage
    /// histograms. Sessions without a trace context emit nothing.
    #[must_use]
    pub fn trace_context(
        mut self,
        telemetry: Telemetry,
        trace: TraceId,
        parent: Option<SpanId>,
    ) -> Self {
        self.trace = Some(TraceContext { telemetry, trace, parent });
        self
    }

    /// Attaches a [`CancelToken`]: every verifier the session creates
    /// checks it before each fresh `f_M` evaluation, so a tripped token
    /// stops in-flight releases with [`PcorError::Cancelled`] within one
    /// verification call. The session stays usable afterwards — memo
    /// caches are intact — which is what lets a serving layer refund a
    /// cancelled release's budget and keep the session warm.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> ReleaseSession<'a> {
        ReleaseSession {
            dataset: self.dataset,
            detector: self.detector,
            utility: self.utility,
            seed_policy: self.seed_policy,
            search_budget: self.search_budget,
            pool: self.pool,
            mechanism: self.mechanism,
            trace: self.trace,
            cancel: self.cancel,
            verifiers: HashMap::new(),
            starting_contexts: HashMap::new(),
            references: HashMap::new(),
            pooled_reference_calls: 0,
            releases: 0,
            draws: 0,
            mechanism_releases: MechanismTally::default(),
        }
    }
}

/// Cumulative counters of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Records with a live verifier (distinct records queried so far).
    pub records_bound: usize,
    /// Successful releases served by the session.
    pub releases: u64,
    /// Total uncached `f_M` verification calls across all verifiers, plus
    /// the evaluations of any pool-parallel reference enumerations (those
    /// run on scratch cursors, every context fresh).
    pub verification_calls: usize,
    /// Total evaluation requests across all verifiers (cache hits included).
    pub cache_lookups: usize,
    /// Evaluation requests answered from the verifiers' memo caches.
    pub cache_hits: usize,
    /// Total distinct contexts memoized across all verifiers.
    pub cached_contexts: usize,
    /// Bitmap words read by the verifiers' fused population passes (×8
    /// gives the bytes the verification hot loop touched).
    pub words_scanned: u64,
    /// Words read by the verifiers' incremental moment syncs (bitmap diffs
    /// plus one word per metric load); zero for slice-path detectors.
    pub moment_words_scanned: u64,
    /// The fused-pass kernel the session's verifiers run with (the
    /// process-wide runtime dispatch — `PCOR_KERNEL` or feature detection).
    pub kernel: KernelKind,
    /// Starting contexts resolved and cached.
    pub starting_contexts: usize,
    /// Successful releases broken down by the selection mechanism that
    /// produced them.
    pub mechanism_releases: MechanismTally,
}

impl SessionStats {
    /// Fraction of evaluation requests answered from the memo caches
    /// (`0.0` before any lookup happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// A release engine bound to one `(dataset, detector, utility)` triple.
///
/// Created through [`ReleaseSession::builder`]. The session owns one
/// memoized [`Verifier`] per queried record, a starting-context cache and a
/// reference-file cache, all reused across releases — see the module docs
/// for why this is privacy-neutral.
pub struct ReleaseSession<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn OutlierDetector,
    utility: &'a dyn Utility,
    seed_policy: SeedPolicy,
    search_budget: usize,
    pool: Option<Arc<ThreadPool>>,
    mechanism: MechanismKind,
    trace: Option<TraceContext>,
    cancel: Option<CancelToken>,
    verifiers: HashMap<usize, Verifier<'a>>,
    starting_contexts: HashMap<usize, Context>,
    references: HashMap<usize, ReferenceFile>,
    /// Fresh `f_M` evaluations performed by pool-parallel reference
    /// enumerations (which run on scratch cursors outside the per-record
    /// verifiers, so their work must be counted separately to keep
    /// [`SessionStats::verification_calls`] complete).
    pooled_reference_calls: usize,
    releases: u64,
    draws: u64,
    mechanism_releases: MechanismTally,
}

impl<'a> ReleaseSession<'a> {
    /// Starts building a session over `dataset` with `detector` and
    /// `utility`.
    pub fn builder(
        dataset: &'a Dataset,
        detector: &'a dyn OutlierDetector,
        utility: &'a dyn Utility,
    ) -> ReleaseSessionBuilder<'a> {
        ReleaseSessionBuilder {
            dataset,
            detector,
            utility,
            seed_policy: SeedPolicy::default(),
            search_budget: DEFAULT_SEARCH_BUDGET,
            pool: None,
            mechanism: MechanismKind::default(),
            trace: None,
            cancel: None,
        }
    }

    /// The session's default DP selection mechanism (applied to specs that
    /// leave [`ReleaseSpec::mechanism`] unset).
    pub fn mechanism(&self) -> MechanismKind {
        self.mechanism
    }

    /// The resident pool the session runs parallel work on, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.pool.as_ref()
    }

    /// The dataset the session is bound to.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The seed policy of [`release`](ReleaseSession::release).
    pub fn seed_policy(&self) -> SeedPolicy {
        self.seed_policy
    }

    /// The cached starting context of `record_id`, if one has been resolved.
    pub fn starting_context(&self, record_id: usize) -> Option<&Context> {
        self.starting_contexts.get(&record_id)
    }

    /// Whether the session already holds a verifier for `record_id`.
    pub fn has_record(&self, record_id: usize) -> bool {
        self.verifiers.contains_key(&record_id)
    }

    /// Cumulative session counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            records_bound: self.verifiers.len(),
            releases: self.releases,
            verification_calls: self.verifiers.values().map(Verifier::calls).sum::<usize>()
                + self.pooled_reference_calls,
            cache_lookups: self.verifiers.values().map(Verifier::lookups).sum(),
            cache_hits: self.verifiers.values().map(Verifier::cache_hits).sum(),
            cached_contexts: self.verifiers.values().map(Verifier::distinct_contexts).sum(),
            words_scanned: self.verifiers.values().map(Verifier::words_scanned).sum(),
            moment_words_scanned: self.verifiers.values().map(Verifier::moment_words_scanned).sum(),
            kernel: self
                .verifiers
                .values()
                .next()
                .map_or_else(pcor_data::kernel::selected, Verifier::kernel),
            starting_contexts: self.starting_contexts.len(),
            mechanism_releases: self.mechanism_releases,
        }
    }

    fn verifier(&mut self, record_id: usize) -> &mut Verifier<'a> {
        let (dataset, detector, utility) = (self.dataset, self.detector, self.utility);
        let pool = self.pool.as_ref();
        let cancel = self.cancel.as_ref();
        self.verifiers.entry(record_id).or_insert_with(|| {
            let mut verifier = match pool {
                // With a pool attached, the verifier's fused passes shard on
                // resident workers (pool-sized, lower break-even). Results
                // are bit-identical either way.
                Some(pool) => Verifier::with_shard_policy(
                    dataset,
                    detector,
                    utility,
                    record_id,
                    ShardPolicy::pooled(Arc::clone(pool)),
                ),
                None => Verifier::new(dataset, detector, utility, record_id),
            };
            if let Some(token) = cancel {
                verifier.set_cancel_token(token.clone());
            }
            verifier
        })
    }

    /// Runs one release for `record_id`, seeding the RNG from the session's
    /// [`SeedPolicy`].
    ///
    /// # Errors
    /// As [`release_with_rng`](ReleaseSession::release_with_rng).
    pub fn release(&mut self, record_id: usize, spec: &ReleaseSpec) -> Result<PcorResult> {
        let seed = self.seed_policy.seed_for(self.draws);
        self.draws += 1;
        self.release_with_seed(record_id, spec, seed)
    }

    /// Runs one release for `record_id` with an explicit RNG seed
    /// (replayable: same session state + same seed ⇒ same released context).
    ///
    /// # Errors
    /// As [`release_with_rng`](ReleaseSession::release_with_rng).
    pub fn release_with_seed(
        &mut self,
        record_id: usize,
        spec: &ReleaseSpec,
        seed: u64,
    ) -> Result<PcorResult> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        self.release_with_rng(record_id, spec, &mut rng)
    }

    /// Runs one release for `record_id` drawing randomness from `rng`.
    ///
    /// The record's verifier (and its memoized `f_M` evaluations) is reused
    /// across calls; the result's `verification_calls` counts only the
    /// *fresh* calls this release performed.
    ///
    /// # Errors
    /// * [`PcorError::InvalidConfig`] for invalid specs or out-of-range ids;
    /// * [`PcorError::NoStartingContext`] when the record has no matching
    ///   context within the search budget (graph algorithms);
    /// * [`PcorError::NoSamples`] when sampling found no matching context;
    /// * verification/mechanism errors otherwise.
    pub fn release_with_rng<R: Rng + ?Sized>(
        &mut self,
        record_id: usize,
        spec: &ReleaseSpec,
        rng: &mut R,
    ) -> Result<PcorResult> {
        spec.validate()?;
        if record_id >= self.dataset.len() {
            return Err(PcorError::InvalidConfig(format!(
                "outlier id {record_id} out of range for a dataset of {} records",
                self.dataset.len()
            )));
        }
        let started = std::time::Instant::now();
        // Clone the (cheap, Arc-backed) trace hookup up front: the span
        // guards must outlive the mutable verifier borrow below.
        let trace = self.trace.clone();
        let release_span =
            trace.as_ref().map(|ctx| ctx.telemetry.span(ctx.trace, ctx.parent, "session.release"));
        let release_span_id = release_span.as_ref().map(pcor_telemetry::SpanGuard::id);
        // Snapshot before resolving the starting context so a first release
        // counts its search calls (matching the historical one-shot
        // behavior); cached repeats skip the search entirely.
        let calls_before = self.verifier(record_id).calls();
        let mut effective = spec.clone();
        // A spec without an explicit mechanism draws through the session
        // default (itself Exponential unless the builder overrode it).
        if effective.mechanism.is_none() {
            effective.mechanism = Some(self.mechanism);
        }
        if effective.starting_context.is_none() && effective.algorithm.needs_starting_context() {
            effective.starting_context = Some(self.resolve_starting_context(record_id)?);
        }
        let verifier = self.verifier(record_id);
        let mut result = {
            let _verify_span = trace
                .as_ref()
                .map(|ctx| ctx.telemetry.span(ctx.trace, release_span_id, "session.verify"));
            match effective.algorithm {
                SamplingAlgorithm::Direct => crate::direct::run(verifier, &effective, rng),
                SamplingAlgorithm::Uniform => crate::uniform::run(verifier, &effective, rng),
                SamplingAlgorithm::RandomWalk => crate::random_walk::run(verifier, &effective, rng),
                SamplingAlgorithm::Dfs => crate::dfs::run(verifier, &effective, rng),
                SamplingAlgorithm::Bfs => crate::bfs::run(verifier, &effective, rng),
            }
        }?;
        result.verification_calls = verifier.calls() - calls_before;
        result.runtime = started.elapsed();
        result.algorithm = effective.algorithm;
        self.releases += 1;
        self.mechanism_releases.record(result.mechanism);
        Ok(result)
    }

    /// Releases a context for every record in `record_ids` under one shared
    /// spec, seeding each release from the session's [`SeedPolicy`].
    ///
    /// Partial-failure semantics: every record gets its own `Result`; a
    /// failing record does not abort the rest of the batch. Repeated records
    /// share the memoized verifier, so they cost strictly fewer fresh
    /// verification calls than independent one-shot releases.
    pub fn release_batch(
        &mut self,
        record_ids: &[usize],
        spec: &ReleaseSpec,
    ) -> Vec<Result<PcorResult>> {
        record_ids.iter().map(|&record_id| self.release(record_id, spec)).collect()
    }

    /// Resolves (and caches) a starting context for `record_id`, searching
    /// with the session's budget on the record's memoized verifier.
    ///
    /// # Errors
    /// Returns [`PcorError::NoStartingContext`] when the record has no
    /// matching context within the budget.
    pub fn resolve_starting_context(&mut self, record_id: usize) -> Result<Context> {
        if let Some(context) = self.starting_contexts.get(&record_id) {
            return Ok(context.clone());
        }
        let budget = self.search_budget;
        let verifier = self.verifier(record_id);
        let context = find_starting_context(verifier, budget)?;
        self.starting_contexts.insert(record_id, context.clone());
        Ok(context)
    }

    /// Seeds the starting-context cache with an externally resolved context
    /// (e.g. a serving layer's shared cache). The context is **not**
    /// re-verified here; the release algorithms validate it before use.
    pub fn seed_starting_context(&mut self, record_id: usize, context: Context) {
        self.starting_contexts.insert(record_id, context);
    }

    /// Finds up to `count` distinct records of the dataset that are
    /// contextual outliers under the session's detector, examining up to
    /// `max_candidates` uniformly random candidates drawn from the session's
    /// [`SeedPolicy`]. Discovered starting contexts are cached for later
    /// releases.
    ///
    /// # Errors
    /// Returns [`PcorError::NoMatchingContext`] when not a single outlier
    /// was found.
    pub fn find_outliers(
        &mut self,
        count: usize,
        max_candidates: usize,
    ) -> Result<Vec<OutlierQuery>> {
        let seed = self.seed_policy.seed_for(self.draws);
        self.draws += 1;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        self.find_outliers_with_rng(count, max_candidates, &mut rng)
    }

    /// As [`find_outliers`](ReleaseSession::find_outliers), drawing candidate
    /// records from `rng`.
    ///
    /// # Errors
    /// Returns [`PcorError::NoMatchingContext`] when not a single outlier
    /// was found.
    pub fn find_outliers_with_rng<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        max_candidates: usize,
        rng: &mut R,
    ) -> Result<Vec<OutlierQuery>> {
        if self.dataset.is_empty() || count == 0 {
            return Err(PcorError::NoMatchingContext);
        }
        let mut found: Vec<OutlierQuery> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..max_candidates {
            if found.len() >= count {
                break;
            }
            let record_id = rng.random_range(0..self.dataset.len());
            if let Some(context) = self.starting_contexts.get(&record_id) {
                if seen.insert(record_id) {
                    found.push(OutlierQuery { record_id, starting_context: context.clone() });
                }
                continue;
            }
            // Search on the record's verifier if the session already holds
            // one, otherwise on a scratch verifier that is kept only when
            // the candidate turns out to be an outlier — a scan over
            // thousands of non-outlier candidates must not pin thousands of
            // memoized caches in memory.
            let mut scratch = if self.verifiers.contains_key(&record_id) {
                None
            } else {
                Some(Verifier::new(self.dataset, self.detector, self.utility, record_id))
            };
            let verifier = match scratch.as_mut() {
                Some(verifier) => verifier,
                None => self.verifiers.get_mut(&record_id).expect("checked above"),
            };
            match find_starting_context(verifier, CANDIDATE_SEARCH_BUDGET) {
                Ok(context) => {
                    if let Some(verifier) = scratch {
                        self.verifiers.insert(record_id, verifier);
                    }
                    self.starting_contexts.insert(record_id, context.clone());
                    if seen.insert(record_id) {
                        found.push(OutlierQuery { record_id, starting_context: context });
                    }
                }
                Err(PcorError::NoStartingContext) => {}
                Err(other) => return Err(other),
            }
        }
        if found.is_empty() {
            return Err(PcorError::NoMatchingContext);
        }
        Ok(found)
    }

    /// The reference file (`COE_M` enumeration) of `record_id`, cached for
    /// the session's lifetime.
    ///
    /// Small spaces enumerate serially on the record's memoized verifier
    /// (reusing — and feeding — its `f_M` cache). When the session
    /// [borrows a pool](ReleaseSessionBuilder::pool) with more than one
    /// worker and the space holds at least 4 096 contexts, the enumeration
    /// instead runs fork-join on the resident workers
    /// ([`enumerate_coe_on`]), one Gray-code range per worker; the result
    /// is identical.
    ///
    /// # Errors
    /// * [`PcorError::TooManyAttributeValues`] when `t` exceeds `limit`;
    /// * [`PcorError::InvalidConfig`] for out-of-range ids.
    pub fn reference(&mut self, record_id: usize, limit: usize) -> Result<&ReferenceFile> {
        if record_id >= self.dataset.len() {
            return Err(PcorError::InvalidConfig(format!(
                "outlier id {record_id} out of range for a dataset of {} records",
                self.dataset.len()
            )));
        }
        if !self.references.contains_key(&record_id) {
            let reference = match self.pooled_reference_plan(record_id, limit)? {
                Some(pool) => {
                    let reference = enumerate_coe_on(
                        &pool,
                        self.dataset,
                        record_id,
                        self.detector,
                        self.utility,
                        limit,
                    )?;
                    // The pooled enumeration ran on scratch cursors, one
                    // fresh evaluation per examined context; keep the
                    // session's verification accounting complete (the
                    // memoized serial path counts through the verifier).
                    self.pooled_reference_calls += reference.contexts_examined;
                    reference
                }
                None => enumerate_coe_with(self.verifier(record_id), limit)?,
            };
            self.references.insert(record_id, reference);
        }
        Ok(&self.references[&record_id])
    }

    /// Decides whether `reference` should enumerate on the session's pool:
    /// requires an attached pool with parallelism and a space of at least
    /// `POOLED_REFERENCE_MIN_CONTEXTS` contexts (below that, the serial
    /// memoized walk wins through cache reuse).
    fn pooled_reference_plan(
        &self,
        record_id: usize,
        limit: usize,
    ) -> Result<Option<Arc<ThreadPool>>> {
        let Some(pool) = self.pool.as_ref().filter(|pool| pool.workers() > 1) else {
            return Ok(None);
        };
        let t = self.dataset.schema().total_values();
        if t > limit {
            // Let the enumeration entry point raise the canonical error.
            return Ok(None);
        }
        let minimal = self.dataset.minimal_context(record_id)?;
        let free = (0..t).filter(|&bit| !minimal.get(bit)).count();
        let contexts = 1u64 << free.min(63);
        Ok((contexts >= POOLED_REFERENCE_MIN_CONTEXTS).then(|| Arc::clone(pool)))
    }
}

impl std::fmt::Debug for ReleaseSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseSession")
            .field("detector", &self.detector.name())
            .field("utility", &self.utility.name())
            .field("seed_policy", &self.seed_policy)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use pcor_runtime::ThreadPool;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0), Record::new(vec![1, 2], 875.0)];
        for i in 0..90 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn repeated_releases_reuse_the_verifier_cache() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        let first = session.release(0, &spec).unwrap();
        let second = session.release(0, &spec).unwrap();
        assert!(first.verification_calls >= 1);
        assert!(
            second.verification_calls < first.verification_calls,
            "second release must replay mostly from cache ({} vs {})",
            second.verification_calls,
            first.verification_calls
        );
        // Per-release guarantees are unchanged by the shared cache.
        assert_eq!(first.guarantee, second.guarantee);
        let stats = session.stats();
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.records_bound, 1);
        assert_eq!(stats.starting_contexts, 1);
        assert!(stats.verification_calls >= first.verification_calls);
    }

    #[test]
    fn one_shot_and_session_release_agree_for_equal_seeds() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let via_session = session.release_with_seed(0, &spec, 99).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(99);
        let via_free = crate::release_context(&d, 0, &detector, &utility, &spec, &mut rng).unwrap();
        assert_eq!(via_session.context, via_free.context);
        assert_eq!(via_session.utility, via_free.utility);
    }

    #[test]
    fn batch_returns_per_record_results_with_partial_failures() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        // Record 5 sits in the bulk of its cell: its release must fail while
        // the planted outliers 0 and 1 succeed.
        let results = session.release_batch(&[0, 5, 1, 0], &spec);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(PcorError::NoStartingContext));
        assert!(results[2].is_ok());
        assert!(results[3].is_ok());
        // The repeat of record 0 replays from cache.
        let first = results[0].as_ref().unwrap();
        let repeat = results[3].as_ref().unwrap();
        assert!(repeat.verification_calls < first.verification_calls);
    }

    #[test]
    fn seed_policy_drives_determinism() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);

        let run = |policy: SeedPolicy| {
            let mut session =
                ReleaseSession::builder(&d, &detector, &utility).seed_policy(policy).build();
            let a = session.release(0, &spec).unwrap();
            let b = session.release(0, &spec).unwrap();
            (a.context.clone(), b.context.clone())
        };
        // Derived policies replay across sessions...
        let (a1, b1) = run(SeedPolicy::Derived { base: 42 });
        let (a2, b2) = run(SeedPolicy::Derived { base: 42 });
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        // ...and a fixed policy makes repeats identical by construction.
        let (a3, b3) = run(SeedPolicy::Fixed(7));
        assert_eq!(a3, b3);
        // Distinct sequence numbers give distinct derived seeds.
        let policy = SeedPolicy::Derived { base: 42 };
        assert_ne!(policy.seed_for(0), policy.seed_for(1));
        assert_eq!(SeedPolicy::Fixed(9).seed_for(0), SeedPolicy::Fixed(9).seed_for(5));
    }

    #[test]
    fn find_outliers_caches_starting_contexts_for_release() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility)
            .seed_policy(SeedPolicy::Derived { base: 9 })
            .build();
        let found = session.find_outliers(2, 2_000).unwrap();
        assert_eq!(found.len(), 2);
        assert_ne!(found[0].record_id, found[1].record_id);
        for query in &found {
            assert!(session.starting_context(query.record_id).is_some());
            assert!(query.record_id == 0 || query.record_id == 1);
        }
        // The release of a discovered record needs no fresh starting search.
        let calls_before = session.stats().verification_calls;
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(5);
        session.release(found[0].record_id, &spec).unwrap();
        assert!(session.stats().verification_calls >= calls_before);
    }

    #[test]
    fn failed_candidate_scans_do_not_pin_verifiers() {
        // A flat dataset has no outliers anywhere: the scan must fail
        // without binding a memoized verifier per examined candidate.
        let schema = Schema::new(vec![Attribute::from_values("A", &["a0", "a1"])], "M").unwrap();
        let records = (0..40).map(|i| Record::new(vec![(i % 2) as u16], 10.0)).collect();
        let d = Dataset::new(schema, records).unwrap();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        assert_eq!(session.find_outliers(3, 200), Err(PcorError::NoMatchingContext));
        assert_eq!(session.stats().records_bound, 0, "failed candidates must not be retained");
    }

    #[test]
    fn direct_and_uniform_need_no_starting_context() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let spec = ReleaseSpec::new(SamplingAlgorithm::Direct, 0.2);
        session.release_with_seed(0, &spec, 3).unwrap();
        // No starting context was resolved for the direct algorithm.
        assert!(session.starting_context(0).is_none());
    }

    #[test]
    fn invalid_specs_and_ids_are_rejected() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, -1.0);
        assert!(matches!(session.release(0, &spec), Err(PcorError::InvalidConfig(_))));
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2);
        assert!(matches!(session.release(10_000, &spec), Err(PcorError::InvalidConfig(_))));
        assert!(matches!(session.reference(10_000, 22), Err(PcorError::InvalidConfig(_))));
        assert!(matches!(session.find_outliers(0, 10), Err(PcorError::NoMatchingContext)));
    }

    #[test]
    fn references_are_cached_per_record() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let first_len = session.reference(0, 22).unwrap().len();
        assert!(first_len >= 1);
        let calls_after_first = session.stats().verification_calls;
        let second_len = session.reference(0, 22).unwrap().len();
        assert_eq!(first_len, second_len);
        // The cached reference costs no fresh verification calls.
        assert_eq!(session.stats().verification_calls, calls_after_first);
        // It agrees with the parallel enumeration.
        let via_parallel = crate::coe::enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        assert_eq!(session.reference(0, 22).unwrap().context_set(), via_parallel.context_set());
    }

    #[test]
    fn seeded_external_starting_context_is_used() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        let minimal = d.minimal_context(0).unwrap();
        session.seed_starting_context(0, minimal.clone());
        assert_eq!(session.starting_context(0), Some(&minimal));
        let resolved = session.resolve_starting_context(0).unwrap();
        assert_eq!(resolved, minimal);
    }

    #[test]
    fn pooled_sessions_release_identically_to_serial_sessions() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let pool = Arc::new(ThreadPool::new(2));
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);

        let mut plain = ReleaseSession::builder(&d, &detector, &utility).build();
        let mut pooled =
            ReleaseSession::builder(&d, &detector, &utility).pool(Arc::clone(&pool)).build();
        assert!(plain.pool().is_none());
        assert!(pooled.pool().is_some());
        let a = plain.release_with_seed(0, &spec, 77).unwrap();
        let b = pooled.release_with_seed(0, &spec, 77).unwrap();
        // The pool amortizes computation only: identical released context,
        // utility and guarantee for the same seed.
        assert_eq!(a.context, b.context);
        assert_eq!(a.utility, b.utility);
        assert_eq!(a.guarantee, b.guarantee);
        assert_eq!(a.verification_calls, b.verification_calls);
        // Reference files agree too (small space -> memoized serial path,
        // exercised through the pooled session for coverage).
        let via_pooled = pooled.reference(0, 22).unwrap().clone();
        let via_plain = plain.reference(0, 22).unwrap();
        assert_eq!(via_pooled.context_set(), via_plain.context_set());
    }

    #[test]
    fn specs_select_mechanisms_per_release_and_stats_tally_them() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut session = ReleaseSession::builder(&d, &detector, &utility).build();
        assert_eq!(session.mechanism(), MechanismKind::Exponential);
        let base = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        for kind in MechanismKind::all() {
            let result =
                session.release_with_seed(0, &base.clone().with_mechanism(kind), 5).unwrap();
            assert_eq!(result.mechanism, kind);
            assert_eq!(result.guarantee.mechanism, kind);
            assert!((result.guarantee.epsilon - 0.2).abs() < 1e-12);
        }
        let tally = session.stats().mechanism_releases;
        assert_eq!(tally.count(MechanismKind::Exponential), 1);
        assert_eq!(tally.count(MechanismKind::PermuteAndFlip), 1);
        assert_eq!(tally.count(MechanismKind::ReportNoisyMax), 1);
        assert_eq!(tally.total(), 3);
    }

    #[test]
    fn builder_default_mechanism_applies_when_the_spec_is_silent() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        assert_eq!(spec.mechanism, None);
        assert_eq!(spec.mechanism_kind(), MechanismKind::Exponential);

        let mut session = ReleaseSession::builder(&d, &detector, &utility)
            .mechanism(MechanismKind::PermuteAndFlip)
            .build();
        assert_eq!(session.mechanism(), MechanismKind::PermuteAndFlip);
        let result = session.release_with_seed(0, &spec, 7).unwrap();
        assert_eq!(result.mechanism, MechanismKind::PermuteAndFlip);
        // An explicit spec mechanism overrides the session default.
        let result = session
            .release_with_seed(0, &spec.clone().with_mechanism(MechanismKind::Exponential), 7)
            .unwrap();
        assert_eq!(result.mechanism, MechanismKind::Exponential);
    }

    #[test]
    fn default_mechanism_releases_are_unchanged_by_the_mechanism_axis() {
        // The acceptance bar of the redesign: with MechanismKind::Exponential
        // (explicit or defaulted) the released context is bit-identical for
        // equal seeds.
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        let explicit = spec.clone().with_mechanism(MechanismKind::Exponential);
        let mut a = ReleaseSession::builder(&d, &detector, &utility).build();
        let mut b = ReleaseSession::builder(&d, &detector, &utility).build();
        for seed in [3u64, 99, 1234] {
            let defaulted = a.release_with_seed(0, &spec, seed).unwrap();
            let explicit = b.release_with_seed(0, &explicit, seed).unwrap();
            assert_eq!(defaulted.context, explicit.context);
            assert_eq!(defaulted.utility, explicit.utility);
        }
    }

    #[test]
    fn tripped_cancel_tokens_stop_releases_between_verifications() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let token = CancelToken::new();
        let mut session =
            ReleaseSession::builder(&d, &detector, &utility).cancel_token(token.clone()).build();
        let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(8);
        // Untripped: releases flow normally.
        session.release_with_seed(0, &spec, 5).unwrap();
        let cached_calls = session.stats().verification_calls;
        token.cancel();
        // A replayed release is served from the memo cache as far as it
        // goes, but the first *fresh* evaluation fails with Cancelled.
        let outcome = session.release_with_seed(1, &spec, 5);
        assert_eq!(outcome, Err(PcorError::Cancelled));
        assert_eq!(
            session.stats().verification_calls,
            cached_calls,
            "a cancelled release must not run fresh verification work"
        );
    }

    #[test]
    fn debug_exposes_the_bound_components() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let session = ReleaseSession::builder(&d, &detector, &utility)
            .search_budget(0) // clamped to >= 1
            .build();
        let dbg = format!("{session:?}");
        assert!(dbg.contains("ZScore"));
        assert!(dbg.contains("PopulationSize"));
    }
}
