//! The outlier-verification function `f_M(D_C, V)` with memoization, built
//! on the incremental population engine.
//!
//! Every PCOR algorithm repeatedly asks the same question about different
//! contexts: *is the queried record `V` an outlier in the population selected
//! by this context?* The answer requires filtering the dataset and running the
//! detector — by far the dominant cost of a release (the paper's runtime
//! numbers are essentially counts of `f_M` evaluations). The sampling
//! algorithms also revisit contexts (e.g. BFS generates each vertex's children
//! repeatedly), so the verifier memoizes evaluations per context.
//!
//! Three engine properties keep the hot path allocation-free and incremental:
//!
//! * **Cursor-backed evaluation** — populations come from a
//!   [`PopulationCursor`] that caches per-attribute union bitmaps; the search
//!   algorithms move by single-bit context flips, so a fresh evaluation costs
//!   one block update plus one fused AND/popcount pass (sharded across
//!   threads for very large `n` per the cursor's [`ShardPolicy`]) instead of
//!   the full per-attribute loop with two bitmap allocations.
//! * **Fingerprinted memo cache** — the cache is keyed by a 128-bit
//!   XOR-decomposable fingerprint of the context's words, so hits hash a few
//!   words and misses insert two `u64`s instead of cloning the context; the
//!   decomposability gives [`Verifier::evaluate_neighbors`] O(1) per-neighbor
//!   cache probes without materializing neighbor contexts.
//! * **Columnar metric gather** — population metrics are gathered from the
//!   dataset's flat metric column into one reusable buffer.
//!
//! The verifier also computes the utility score of each context (the utility
//! needs the same population bitmap the validity check needs), and exposes the
//! *mechanism score*: the utility for matching contexts, `-∞` otherwise —
//! exactly the scoring rule of Section 3.2 that makes the Exponential
//! mechanism output constrained.

use crate::cancel::CancelToken;
use crate::{PcorError, Result};
use pcor_data::kernel::KernelKind;
use pcor_data::{Context, Dataset, PopulationCursor, RecordBitmap, ShardPolicy};
use pcor_dp::Utility;
use pcor_outlier::{OutlierDetector, PopulationMoments};
use std::collections::HashMap;
use std::sync::Arc;

/// The cached outcome of evaluating one context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Whether the context is *matching*: it covers `V` and the detector
    /// flags `V` as an outlier within the context's population.
    pub matching: bool,
    /// The utility score of the context (regardless of matching).
    pub utility: f64,
    /// The size of the context's population `|D_C|`.
    pub population_size: usize,
}

impl Evaluation {
    /// The Exponential-mechanism score: the utility for matching contexts and
    /// `-∞` for non-matching ones.
    pub fn mechanism_score(&self) -> f64 {
        if self.matching {
            self.utility
        } else {
            f64::NEG_INFINITY
        }
    }
}

/// SplitMix64 finalizer: the word mixer behind the context fingerprints.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent seeds for the two 64-bit fingerprint halves.
const FP_SEED_A: u64 = 0xA076_1D64_78BD_642F;
const FP_SEED_B: u64 = 0xE703_7ED1_A0B4_28DB;

/// Per-word contribution to one fingerprint half. XORing contributions makes
/// the fingerprint decomposable: flipping one context bit replaces exactly
/// one word's contribution, so neighbor fingerprints cost O(1).
fn fp_word(word: u64, index: usize, seed: u64) -> u64 {
    splitmix64(word ^ splitmix64(index as u64 ^ seed))
}

/// The 128-bit fingerprint of a context, split into its two halves.
///
/// Collisions would silently conflate two contexts in the memo cache; at 128
/// bits the probability over any realistic number of distinct contexts
/// (≪ 2^40) is below 2^-48, far beyond concern — and the property tests
/// cross-check the engine against from-scratch evaluation.
fn fingerprint_parts(context: &Context) -> (u64, u64) {
    let mut a = splitmix64(context.len() as u64 ^ FP_SEED_A);
    let mut b = splitmix64(context.len() as u64 ^ FP_SEED_B);
    for (i, &w) in context.words().iter().enumerate() {
        a ^= fp_word(w, i, FP_SEED_A);
        b ^= fp_word(w, i, FP_SEED_B);
    }
    (a, b)
}

/// The fingerprint of `context` with `bit` flipped, derived in O(1) from the
/// context's own fingerprint parts.
fn neighbor_parts(context: &Context, parts: (u64, u64), bit: usize) -> (u64, u64) {
    let wi = bit / 64;
    let old = context.words()[wi];
    let new = old ^ (1u64 << (bit % 64));
    (
        parts.0 ^ fp_word(old, wi, FP_SEED_A) ^ fp_word(new, wi, FP_SEED_A),
        parts.1 ^ fp_word(old, wi, FP_SEED_B) ^ fp_word(new, wi, FP_SEED_B),
    )
}

fn fp_key(parts: (u64, u64)) -> u128 {
    ((parts.0 as u128) << 64) | parts.1 as u128
}

/// Runs `f_M` on an already-evaluated population: is `outlier_id` covered
/// and flagged by the detector?
///
/// Moment-decidable detectors are answered from a single-pass sufficient-
/// statistics accumulation over the columnar metric store; slice detectors
/// gather the metrics into the caller's reusable buffer. Contexts not
/// covering the record short-circuit to `false` with no metric pass at all.
/// Shared by the [`Verifier`] and the reference-file enumeration so every
/// engine entry point classifies identically.
pub(crate) fn classify_population(
    dataset: &Dataset,
    population: &RecordBitmap,
    population_size: usize,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    use_moments: bool,
    metrics_buf: &mut Vec<f64>,
) -> bool {
    let covers = outlier_id < population.len() && population.contains(outlier_id);
    if !covers {
        return false;
    }
    if use_moments {
        // Shift the accumulation by the queried record's own value: it is
        // inside the population, so the shifted-variance identity stays
        // numerically sound (see `Dataset::population_metric_moments`).
        let value = dataset.metric(outlier_id);
        let (sum, sum_sq_dev) = dataset.population_metric_moments(population, value);
        let moments = PopulationMoments::new(population_size, sum, sum_sq_dev);
        detector.is_outlier_by_moments(&moments, value)
    } else {
        let target = dataset
            .gather_population_metrics(population, outlier_id, metrics_buf)
            .expect("coverage checked above");
        detector.is_outlier(metrics_buf, target)
    }
}

/// Memoizing wrapper around `f_M` for one (dataset, detector, utility, `V`)
/// tuple.
pub struct Verifier<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn OutlierDetector,
    utility: &'a dyn Utility,
    outlier_id: usize,
    cache: HashMap<u128, Evaluation>,
    cursor: Option<PopulationCursor<'a>>,
    metrics_buf: Vec<f64>,
    policy: ShardPolicy,
    /// Whether the detector decides from population moments (probed once at
    /// construction; `supports_moments` is constant per instance).
    use_moments: bool,
    /// Cooperative cancellation, checked before every fresh evaluation
    /// (cache hits are never blocked). `None` means uncancellable.
    cancel: Option<CancelToken>,
    calls: usize,
    lookups: usize,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for record `outlier_id` of `dataset` with the
    /// default (auto) shard policy.
    pub fn new(
        dataset: &'a Dataset,
        detector: &'a dyn OutlierDetector,
        utility: &'a dyn Utility,
        outlier_id: usize,
    ) -> Self {
        Self::with_shard_policy(dataset, detector, utility, outlier_id, ShardPolicy::auto())
    }

    /// Creates a verifier with an explicit [`ShardPolicy`] for the fused
    /// AND/popcount pass of its population cursor.
    pub fn with_shard_policy(
        dataset: &'a Dataset,
        detector: &'a dyn OutlierDetector,
        utility: &'a dyn Utility,
        outlier_id: usize,
        policy: ShardPolicy,
    ) -> Self {
        Verifier {
            dataset,
            detector,
            utility,
            outlier_id,
            cache: HashMap::new(),
            cursor: None,
            metrics_buf: Vec::new(),
            policy,
            use_moments: detector.supports_moments(),
            cancel: None,
            calls: 0,
            lookups: 0,
        }
    }

    /// Attaches a cancellation token. Every subsequent *fresh* evaluation
    /// first checks it and fails with [`PcorError::Cancelled`] once the
    /// token trips; memoized answers keep flowing (they cost nothing and a
    /// cancelled release's caller may still read cached state).
    ///
    /// The token is also installed as the shard-halt probe of the verifier's
    /// population cursor, so cancellation preempts a fused `f_M` pass *in
    /// flight* — shards bail at the next sub-chunk boundary instead of
    /// finishing the scan — bounding cancellation latency to microseconds
    /// rather than one full verification call. An interrupted evaluation is
    /// discarded (never cached) and surfaces as [`PcorError::Cancelled`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        let probe = token.clone();
        let halt: pcor_data::HaltFn = Arc::new(move || probe.is_cancelled());
        self.policy.set_halt(Some(Arc::clone(&halt)));
        if let Some(cursor) = self.cursor.as_mut() {
            cursor.set_halt(Some(halt));
        }
        self.cancel = Some(token);
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Fails with [`PcorError::Cancelled`] when the attached token (if
    /// any) has tripped.
    fn check_cancelled(&self) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// The dataset the verifier is bound to.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The queried outlier's record id.
    pub fn outlier_id(&self) -> usize {
        self.outlier_id
    }

    /// The utility function in use.
    pub fn utility(&self) -> &'a dyn Utility {
        self.utility
    }

    /// Number of *uncached* verification calls performed so far (each one
    /// filtered the dataset and ran the detector).
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Total number of evaluation requests (cache hits included).
    pub fn lookups(&self) -> usize {
        self.lookups
    }

    /// Number of evaluation requests answered from the memo cache.
    pub fn cache_hits(&self) -> usize {
        self.lookups - self.calls
    }

    /// Number of distinct contexts evaluated (cache size).
    pub fn distinct_contexts(&self) -> usize {
        self.cache.len()
    }

    /// Bitmap words read by the verifier's fused population passes so far
    /// (×8 gives the bytes the verification hot loop touched). Zero until
    /// the first uncached evaluation creates the cursor.
    pub fn words_scanned(&self) -> u64 {
        self.cursor.as_ref().map_or(0, |cursor| cursor.words_scanned())
    }

    /// Words read by the cursor's incremental moment syncs (bitmap diffs
    /// plus one word per metric load). Zero for slice-path detectors.
    pub fn moment_words_scanned(&self) -> u64 {
        self.cursor.as_ref().map_or(0, |cursor| cursor.moment_words_scanned())
    }

    /// The fused-pass kernel this verifier's evaluations run with (from its
    /// shard policy; by default the process-wide dispatched kernel).
    pub fn kernel(&self) -> KernelKind {
        self.policy.kernel()
    }

    /// The minimal context of the queried record (its own attribute values).
    ///
    /// # Errors
    /// Propagates schema mismatches from the data layer.
    pub fn minimal_context(&self) -> Result<Context> {
        Ok(self.dataset.minimal_context(self.outlier_id)?)
    }

    /// Validates that a context matches the schema (the cache key is a
    /// fingerprint, so mismatches must be rejected before lookup).
    fn check_context(&self, context: &Context) -> Result<()> {
        let expected = self.dataset.schema().total_values();
        if context.len() != expected {
            return Err(PcorError::Data(format!(
                "context of length {} does not match schema with t = {expected}",
                context.len()
            )));
        }
        Ok(())
    }

    /// Evaluates a context: validity (`f_M`), utility and population size.
    /// Results are memoized per context (by fingerprint); fresh evaluations
    /// run on the incremental cursor and allocate nothing after warm-up.
    ///
    /// # Errors
    /// Propagates population-evaluation errors (context/schema mismatch).
    pub fn evaluate(&mut self, context: &Context) -> Result<Evaluation> {
        self.check_context(context)?;
        let key = fp_key(fingerprint_parts(context));
        self.lookups += 1;
        if let Some(cached) = self.cache.get(&key) {
            return Ok(*cached);
        }
        self.check_cancelled()?;
        let evaluation = self.evaluate_fresh(context)?;
        self.cache.insert(key, evaluation);
        Ok(evaluation)
    }

    /// Positions the cursor at `context`, creating it on first use. A new
    /// cursor of a moment-decidable verifier immediately starts tracking
    /// incremental moments centered on the queried record's metric.
    fn position_cursor(&mut self, context: &Context) -> Result<()> {
        match self.cursor.as_mut() {
            Some(cursor) => cursor.move_to(context)?,
            None => {
                let mut cursor =
                    PopulationCursor::with_policy(self.dataset, context, self.policy.clone())?;
                if self.use_moments {
                    cursor.track_moments(self.dataset.metric(self.outlier_id));
                }
                self.cursor = Some(cursor);
            }
        }
        Ok(())
    }

    /// Runs one uncached evaluation at `context`, repositioning the cursor.
    fn evaluate_fresh(&mut self, context: &Context) -> Result<Evaluation> {
        self.position_cursor(context)?;
        self.evaluate_at_cursor()
    }

    /// Evaluates at the cursor's current position. The caller has already
    /// positioned the cursor and checked the cache.
    ///
    /// Moment-decidable detectors are answered from the cursor's tracked
    /// sufficient statistics — an incremental diff sync instead of the
    /// from-scratch metric rescan `classify_population` performs — which is
    /// exactly why the verifier owns a stateful cursor. Slice detectors and
    /// uncovered contexts go through `classify_population` unchanged.
    ///
    /// # Errors
    /// [`PcorError::Cancelled`] when the fused pass was preempted by the
    /// cancel token's halt probe mid-scan; the partial result is discarded
    /// and nothing is cached or counted.
    fn evaluate_at_cursor(&mut self) -> Result<Evaluation> {
        let cursor = self.cursor.as_mut().expect("cursor positioned by caller");
        // Force the pass before reading any of its outputs so an interrupted
        // (partial) evaluation is visible and discarded here.
        cursor.population_size();
        if cursor.interrupted() {
            return Err(PcorError::Cancelled);
        }
        self.calls += 1;
        let (current, population, population_size) = cursor.evaluated();
        let utility = self.utility.score(self.dataset, current, population);
        let covers = self.outlier_id < population.len() && population.contains(self.outlier_id);
        let matching = if covers && self.use_moments {
            let value = self.dataset.metric(self.outlier_id);
            let (sum, sum_sq_dev) = cursor.moments();
            let moments = PopulationMoments::new(population_size, sum, sum_sq_dev);
            self.detector.is_outlier_by_moments(&moments, value)
        } else if covers {
            classify_population(
                self.dataset,
                population,
                population_size,
                self.outlier_id,
                self.detector,
                false,
                &mut self.metrics_buf,
            )
        } else {
            false
        };
        Ok(Evaluation { matching, utility, population_size })
    }

    /// Evaluates all `t` single-bit neighbors of `base` in one batched cursor
    /// walk, returning one [`Evaluation`] per bit.
    ///
    /// Cache probes use O(1) incremental fingerprints (no neighbor context is
    /// materialized); every miss costs one bit flip on the shared cursor,
    /// one fused AND/popcount pass and one flip back. This is the child
    /// generation primitive of the graph searches: a whole neighbor frontier
    /// shares one cursor walk.
    ///
    /// # Errors
    /// Propagates population-evaluation errors (context/schema mismatch).
    pub fn evaluate_neighbors(&mut self, base: &Context) -> Result<Vec<Evaluation>> {
        // Warm the base itself first: searches always need it, and it leaves
        // the cursor positioned adjacent to every neighbor.
        self.evaluate(base)?;
        let base_parts = fingerprint_parts(base);
        let t = base.len();
        let mut out = Vec::with_capacity(t);
        let mut cursor_at_base = false;
        for bit in 0..t {
            let key = fp_key(neighbor_parts(base, base_parts, bit));
            self.lookups += 1;
            if let Some(cached) = self.cache.get(&key) {
                out.push(*cached);
                continue;
            }
            self.check_cancelled()?;
            if !cursor_at_base {
                // Position once; after each miss we flip back, so the cursor
                // stays at `base` for the rest of the walk.
                self.position_cursor(base)?;
                cursor_at_base = true;
            }
            let cursor = self.cursor.as_mut().expect("cursor positioned above");
            cursor.flip(bit);
            let evaluation = self.evaluate_at_cursor();
            // Flip back before propagating any error so the cursor stays at
            // `base` (move_to recovers from arbitrary positions anyway, but
            // the invariant keeps the fast path honest).
            self.cursor.as_mut().expect("cursor positioned above").flip(bit);
            let evaluation = evaluation?;
            self.cache.insert(key, evaluation);
            out.push(evaluation);
        }
        Ok(out)
    }

    /// Whether `context` is a matching context for `V` (`f_M(D_C, V) = true`
    /// and `V ∈ D_C`).
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn is_matching(&mut self, context: &Context) -> Result<bool> {
        Ok(self.evaluate(context)?.matching)
    }

    /// The Exponential-mechanism score of `context` (utility if matching,
    /// `-∞` otherwise).
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn mechanism_score(&mut self, context: &Context) -> Result<f64> {
        Ok(self.evaluate(context)?.mechanism_score())
    }
}

impl std::fmt::Debug for Verifier<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("outlier_id", &self.outlier_id)
            .field("detector", &self.detector.name())
            .field("utility", &self.utility.name())
            .field("calls", &self.calls)
            .field("lookups", &self.lookups)
            .field("cached_contexts", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;

    /// Ten records over a 2x2 schema; record 9 has an extreme metric within
    /// the (a0, b0) subgroup but is unremarkable against a broad population.
    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1"]),
            ],
            "M",
        )
        .unwrap();
        let mut records: Vec<Record> = (0..9)
            .map(|i| {
                let a = (i % 2) as u16;
                let b = ((i / 2) % 2) as u16;
                Record::new(vec![a, b], 100.0 + i as f64)
            })
            .collect();
        records.push(Record::new(vec![0, 0], 500.0));
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn evaluation_distinguishes_matching_and_non_matching() {
        let dataset = toy();
        // Note: with a population of 4 the largest attainable z-score is
        // (n-1)/sqrt(n) = 1.5, so use a slightly lower threshold.
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);

        // The record's own subgroup (a0 AND b0) contains records 0, 4, 8, 9 —
        // the 500.0 value stands out.
        let own = dataset.minimal_context(9).unwrap();
        let eval = verifier.evaluate(&own).unwrap();
        assert!(eval.matching);
        assert_eq!(eval.population_size, 4);
        assert_eq!(eval.utility, 4.0);
        assert_eq!(eval.mechanism_score(), 4.0);

        // A context not covering the record is never matching.
        let elsewhere = Context::from_indices(4, [1, 3]); // a1 AND b1
        let eval = verifier.evaluate(&elsewhere).unwrap();
        assert!(!eval.matching);
        assert_eq!(eval.mechanism_score(), f64::NEG_INFINITY);
        assert!(verifier.mechanism_score(&elsewhere).unwrap().is_infinite());
        assert!(verifier.is_matching(&own).unwrap());
    }

    #[test]
    fn cache_avoids_recomputation() {
        let dataset = toy();
        // Note: with a population of 4 the largest attainable z-score is
        // (n-1)/sqrt(n) = 1.5, so use a slightly lower threshold.
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let c = dataset.minimal_context(9).unwrap();
        for _ in 0..10 {
            verifier.evaluate(&c).unwrap();
        }
        assert_eq!(verifier.calls(), 1);
        assert_eq!(verifier.distinct_contexts(), 1);
        assert_eq!(verifier.lookups(), 10);
        assert_eq!(verifier.cache_hits(), 9);
        let other = Context::full(4);
        verifier.evaluate(&other).unwrap();
        assert_eq!(verifier.calls(), 2);
        assert_eq!(verifier.distinct_contexts(), 2);
    }

    #[test]
    fn evaluate_neighbors_agrees_with_per_context_evaluation() {
        let dataset = toy();
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let base = dataset.minimal_context(9).unwrap();

        let mut batched = Verifier::new(&dataset, &detector, &utility, 9);
        let neighbor_evals = batched.evaluate_neighbors(&base).unwrap();
        assert_eq!(neighbor_evals.len(), 4);

        let mut serial = Verifier::new(&dataset, &detector, &utility, 9);
        for (bit, eval) in neighbor_evals.iter().enumerate() {
            let expected = serial.evaluate(&base.with_flipped(bit)).unwrap();
            assert_eq!(*eval, expected, "neighbor {bit} diverged");
        }
        // A second batched walk is answered entirely from cache.
        let calls = batched.calls();
        let again = batched.evaluate_neighbors(&base).unwrap();
        assert_eq!(again, neighbor_evals);
        assert_eq!(batched.calls(), calls);
    }

    #[test]
    fn sharded_verifier_matches_serial() {
        let dataset = toy();
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut serial =
            Verifier::with_shard_policy(&dataset, &detector, &utility, 9, ShardPolicy::serial());
        let mut sharded =
            Verifier::with_shard_policy(&dataset, &detector, &utility, 9, ShardPolicy::forced(3));
        for mask in 0..(1u32 << 4) {
            let context = Context::from_indices(4, (0..4).filter(|i| (mask >> i) & 1 == 1));
            assert_eq!(
                serial.evaluate(&context).unwrap(),
                sharded.evaluate(&context).unwrap(),
                "sharded evaluation diverged at mask {mask:04b}"
            );
        }
    }

    /// Forces the slice path of any moment-decidable detector — the
    /// from-scratch reference the incremental moment path must agree with.
    struct SlicePath<D>(D);

    impl<D: OutlierDetector> OutlierDetector for SlicePath<D> {
        fn name(&self) -> &'static str {
            "SlicePath"
        }
        fn is_outlier(&self, population: &[f64], target: usize) -> bool {
            self.0.is_outlier(population, target)
        }
        fn supports_moments(&self) -> bool {
            false
        }
    }

    /// A wider dataset with adversarial metric magnitudes: a large common
    /// offset with small spread maximizes cancellation in the moment
    /// accumulators, which is exactly what the Neumaier compensation and the
    /// origin shift are there to survive.
    fn adversarial() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1"]),
                Attribute::from_values("C", &["c0", "c1", "c2"]),
            ],
            "M",
        )
        .unwrap();
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut records: Vec<Record> = (0..300)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let jitter = ((state >> 40) as f64) / (1u64 << 24) as f64; // [0, 1)
                Record::new(
                    vec![(i % 3) as u16, ((i / 3) % 2) as u16, ((i / 5) % 3) as u16],
                    1.0e9 + jitter,
                )
            })
            .collect();
        // One genuinely extreme record in every subgroup it belongs to.
        records.push(Record::new(vec![0, 0, 0], 1.0e9 + 50.0));
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn moment_path_verdicts_agree_with_slice_path_over_long_walks() {
        let dataset = adversarial();
        let outlier_id = dataset.len() - 1;
        let detector = ZScoreDetector::new(2.5);
        assert!(detector.supports_moments());
        let slice_detector = SlicePath(ZScoreDetector::new(2.5));
        let utility = PopulationSizeUtility;
        let mut tracked = Verifier::new(&dataset, &detector, &utility, outlier_id);
        let mut reference = Verifier::new(&dataset, &slice_detector, &utility, outlier_id);

        let t = dataset.schema().total_values();
        let mut context = dataset.minimal_context(outlier_id).unwrap();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut matched = 0usize;
        // Long enough to cross the default refresh interval (256) several
        // times: each uncached evaluation is one delta sync.
        for step in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            context.flip((state >> 33) as usize % t);
            let a = tracked.evaluate(&context).unwrap();
            let b = reference.evaluate(&context).unwrap();
            assert_eq!(a, b, "verdict diverged at step {step}");
            matched += a.matching as usize;
        }
        // The walk exercised both verdicts and the incremental path did sync.
        assert!(matched > 0, "walk never produced a matching context");
        assert!(tracked.moment_words_scanned() > 0);
        assert_eq!(reference.moment_words_scanned(), 0);
    }

    #[test]
    fn all_supported_kernels_evaluate_identically() {
        let dataset = adversarial();
        let outlier_id = dataset.len() - 1;
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let t = dataset.schema().total_values();
        let mut reference = Verifier::with_shard_policy(
            &dataset,
            &detector,
            &utility,
            outlier_id,
            ShardPolicy::serial().with_kernel(KernelKind::Scalar),
        );
        for kind in KernelKind::supported() {
            let policy = ShardPolicy::serial().with_kernel(kind);
            let mut verifier =
                Verifier::with_shard_policy(&dataset, &detector, &utility, outlier_id, policy);
            assert_eq!(verifier.kernel(), kind);
            let mut context = dataset.minimal_context(outlier_id).unwrap();
            let mut state = 0xDEADBEEFCAFEF00Du64;
            for step in 0..128 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                context.flip((state >> 33) as usize % t);
                assert_eq!(
                    verifier.evaluate(&context).unwrap(),
                    reference.evaluate(&context).unwrap(),
                    "kernel {kind} diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn accessors_and_debug() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let verifier = Verifier::new(&dataset, &detector, &utility, 3);
        assert_eq!(verifier.outlier_id(), 3);
        assert_eq!(verifier.dataset().len(), 10);
        assert_eq!(verifier.utility().name(), "PopulationSize");
        let dbg = format!("{verifier:?}");
        assert!(dbg.contains("ZScore"));
        assert!(dbg.contains("outlier_id"));
    }

    #[test]
    fn minimal_context_covers_the_record() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let c = verifier.minimal_context().unwrap();
        assert!(dataset.covers(&c, 9).unwrap());
    }

    #[test]
    fn wrong_length_context_is_an_error() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        assert!(verifier.evaluate(&Context::empty(7)).is_err());
        assert!(verifier.evaluate_neighbors(&Context::empty(7)).is_err());
    }

    #[test]
    fn fingerprints_are_incremental() {
        let context = Context::from_bit_string("1010011100101").unwrap();
        let parts = fingerprint_parts(&context);
        for bit in 0..context.len() {
            let direct = fingerprint_parts(&context.with_flipped(bit));
            assert_eq!(neighbor_parts(&context, parts, bit), direct);
        }
        // Distinct lengths fingerprint differently even with equal words.
        assert_ne!(
            fp_key(fingerprint_parts(&Context::empty(5))),
            fp_key(fingerprint_parts(&Context::empty(6)))
        );
    }

    #[test]
    fn cancel_token_preempts_fused_pass_in_flight() {
        let dataset = toy();
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let own = dataset.minimal_context(9).unwrap();
        // Warm the cache with one evaluation, then cancel: the cached answer
        // keeps flowing while fresh work is preempted.
        let cached = verifier.evaluate(&own).unwrap();
        let token = CancelToken::new();
        verifier.set_cancel_token(token.clone());
        assert_eq!(verifier.evaluate(&own).unwrap(), cached);
        token.cancel();
        assert_eq!(verifier.evaluate(&own).unwrap(), cached);
        let other = Context::full(own.len());
        let calls_before = verifier.calls();
        assert!(matches!(verifier.evaluate(&other), Err(PcorError::Cancelled)));
        // The preempted evaluation was discarded: not counted, not cached,
        // and a fresh verifier agrees on the answer it would have produced.
        assert_eq!(verifier.calls(), calls_before);
        let mut fresh = Verifier::new(&dataset, &detector, &utility, 9);
        fresh.set_cancel_token(CancelToken::new());
        let expected = fresh.evaluate(&other).unwrap();
        let mut replaced = Verifier::new(&dataset, &detector, &utility, 9);
        replaced.set_cancel_token(CancelToken::new());
        assert_eq!(replaced.evaluate(&other).unwrap(), expected);
    }

    #[test]
    fn halt_probe_reaches_an_existing_cursor() {
        let dataset = toy();
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let own = dataset.minimal_context(9).unwrap();
        // First evaluation creates the cursor; installing the token after
        // must still preempt that cursor's passes.
        verifier.evaluate(&own).unwrap();
        let token = CancelToken::new();
        verifier.set_cancel_token(token.clone());
        token.cancel();
        assert!(matches!(verifier.evaluate(&Context::full(own.len())), Err(PcorError::Cancelled)));
        assert!(matches!(verifier.evaluate_neighbors(&own), Err(PcorError::Cancelled)));
    }
}
