//! The outlier-verification function `f_M(D_C, V)` with memoization.
//!
//! Every PCOR algorithm repeatedly asks the same question about different
//! contexts: *is the queried record `V` an outlier in the population selected
//! by this context?* The answer requires filtering the dataset and running the
//! detector — by far the dominant cost of a release (the paper's runtime
//! numbers are essentially counts of `f_M` evaluations). The sampling
//! algorithms also revisit contexts (e.g. BFS generates each vertex's children
//! repeatedly), so the verifier memoizes evaluations per context.
//!
//! The verifier also computes the utility score of each context (the utility
//! needs the same population bitmap the validity check needs), and exposes the
//! *mechanism score*: the utility for matching contexts, `-∞` otherwise —
//! exactly the scoring rule of Section 3.2 that makes the Exponential
//! mechanism output constrained.

use crate::Result;
use pcor_data::{Context, Dataset};
use pcor_dp::Utility;
use pcor_outlier::OutlierDetector;
use std::collections::HashMap;

/// The cached outcome of evaluating one context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Whether the context is *matching*: it covers `V` and the detector
    /// flags `V` as an outlier within the context's population.
    pub matching: bool,
    /// The utility score of the context (regardless of matching).
    pub utility: f64,
    /// The size of the context's population `|D_C|`.
    pub population_size: usize,
}

impl Evaluation {
    /// The Exponential-mechanism score: the utility for matching contexts and
    /// `-∞` for non-matching ones.
    pub fn mechanism_score(&self) -> f64 {
        if self.matching {
            self.utility
        } else {
            f64::NEG_INFINITY
        }
    }
}

/// Memoizing wrapper around `f_M` for one (dataset, detector, utility, `V`)
/// tuple.
pub struct Verifier<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn OutlierDetector,
    utility: &'a dyn Utility,
    outlier_id: usize,
    cache: HashMap<Context, Evaluation>,
    calls: usize,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for record `outlier_id` of `dataset`.
    pub fn new(
        dataset: &'a Dataset,
        detector: &'a dyn OutlierDetector,
        utility: &'a dyn Utility,
        outlier_id: usize,
    ) -> Self {
        Verifier { dataset, detector, utility, outlier_id, cache: HashMap::new(), calls: 0 }
    }

    /// The dataset the verifier is bound to.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The queried outlier's record id.
    pub fn outlier_id(&self) -> usize {
        self.outlier_id
    }

    /// The utility function in use.
    pub fn utility(&self) -> &'a dyn Utility {
        self.utility
    }

    /// Number of *uncached* verification calls performed so far (each one
    /// filtered the dataset and ran the detector).
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Number of distinct contexts evaluated (cache size).
    pub fn distinct_contexts(&self) -> usize {
        self.cache.len()
    }

    /// The minimal context of the queried record (its own attribute values).
    ///
    /// # Errors
    /// Propagates schema mismatches from the data layer.
    pub fn minimal_context(&self) -> Result<Context> {
        Ok(self.dataset.minimal_context(self.outlier_id)?)
    }

    /// Evaluates a context: validity (`f_M`), utility and population size.
    /// Results are memoized per context.
    ///
    /// # Errors
    /// Propagates population-evaluation errors (context/schema mismatch).
    pub fn evaluate(&mut self, context: &Context) -> Result<Evaluation> {
        if let Some(cached) = self.cache.get(context) {
            return Ok(*cached);
        }
        self.calls += 1;
        let population = self.dataset.population(context)?;
        let covers_outlier = population.contains(self.outlier_id);
        let utility = self.utility.score(self.dataset, context, &population);
        let population_size = population.count();

        let matching = if covers_outlier {
            // Build the metric slice of the population and locate V within it.
            let mut metrics = Vec::with_capacity(population_size);
            let mut target_index = 0usize;
            for (pos, id) in population.iter_ones().enumerate() {
                if id == self.outlier_id {
                    target_index = pos;
                }
                metrics.push(self.dataset.metric(id));
            }
            self.detector.is_outlier(&metrics, target_index)
        } else {
            false
        };

        let evaluation = Evaluation { matching, utility, population_size };
        self.cache.insert(context.clone(), evaluation);
        Ok(evaluation)
    }

    /// Whether `context` is a matching context for `V` (`f_M(D_C, V) = true`
    /// and `V ∈ D_C`).
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn is_matching(&mut self, context: &Context) -> Result<bool> {
        Ok(self.evaluate(context)?.matching)
    }

    /// The Exponential-mechanism score of `context` (utility if matching,
    /// `-∞` otherwise).
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn mechanism_score(&mut self, context: &Context) -> Result<f64> {
        Ok(self.evaluate(context)?.mechanism_score())
    }
}

impl std::fmt::Debug for Verifier<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("outlier_id", &self.outlier_id)
            .field("detector", &self.detector.name())
            .field("utility", &self.utility.name())
            .field("calls", &self.calls)
            .field("cached_contexts", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;

    /// Ten records over a 2x2 schema; record 9 has an extreme metric within
    /// the (a0, b0) subgroup but is unremarkable against a broad population.
    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1"]),
            ],
            "M",
        )
        .unwrap();
        let mut records: Vec<Record> = (0..9)
            .map(|i| {
                let a = (i % 2) as u16;
                let b = ((i / 2) % 2) as u16;
                Record::new(vec![a, b], 100.0 + i as f64)
            })
            .collect();
        records.push(Record::new(vec![0, 0], 500.0));
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn evaluation_distinguishes_matching_and_non_matching() {
        let dataset = toy();
        // Note: with a population of 4 the largest attainable z-score is
        // (n-1)/sqrt(n) = 1.5, so use a slightly lower threshold.
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);

        // The record's own subgroup (a0 AND b0) contains records 0, 4, 8, 9 —
        // the 500.0 value stands out.
        let own = dataset.minimal_context(9).unwrap();
        let eval = verifier.evaluate(&own).unwrap();
        assert!(eval.matching);
        assert_eq!(eval.population_size, 4);
        assert_eq!(eval.utility, 4.0);
        assert_eq!(eval.mechanism_score(), 4.0);

        // A context not covering the record is never matching.
        let elsewhere = Context::from_indices(4, [1, 3]); // a1 AND b1
        let eval = verifier.evaluate(&elsewhere).unwrap();
        assert!(!eval.matching);
        assert_eq!(eval.mechanism_score(), f64::NEG_INFINITY);
        assert!(verifier.mechanism_score(&elsewhere).unwrap().is_infinite());
        assert!(verifier.is_matching(&own).unwrap());
    }

    #[test]
    fn cache_avoids_recomputation() {
        let dataset = toy();
        // Note: with a population of 4 the largest attainable z-score is
        // (n-1)/sqrt(n) = 1.5, so use a slightly lower threshold.
        let detector = ZScoreDetector::new(1.4);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let c = dataset.minimal_context(9).unwrap();
        for _ in 0..10 {
            verifier.evaluate(&c).unwrap();
        }
        assert_eq!(verifier.calls(), 1);
        assert_eq!(verifier.distinct_contexts(), 1);
        let other = Context::full(4);
        verifier.evaluate(&other).unwrap();
        assert_eq!(verifier.calls(), 2);
        assert_eq!(verifier.distinct_contexts(), 2);
    }

    #[test]
    fn accessors_and_debug() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let verifier = Verifier::new(&dataset, &detector, &utility, 3);
        assert_eq!(verifier.outlier_id(), 3);
        assert_eq!(verifier.dataset().len(), 10);
        assert_eq!(verifier.utility().name(), "PopulationSize");
        let dbg = format!("{verifier:?}");
        assert!(dbg.contains("ZScore"));
        assert!(dbg.contains("outlier_id"));
    }

    #[test]
    fn minimal_context_covers_the_record() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let verifier = Verifier::new(&dataset, &detector, &utility, 9);
        let c = verifier.minimal_context().unwrap();
        assert!(dataset.covers(&c, 9).unwrap());
    }

    #[test]
    fn wrong_length_context_is_an_error() {
        let dataset = toy();
        let detector = ZScoreDetector::default();
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        assert!(verifier.evaluate(&Context::empty(7)).is_err());
    }
}
