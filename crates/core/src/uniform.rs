//! Algorithm 2: uniform sampling prior to the Exponential mechanism.
//!
//! Contexts are drawn uniformly at random (every bit set independently with
//! probability `p = 1/2`) until `n` matching contexts have been collected,
//! then the release is drawn from those samples with the Exponential mechanism
//! at `ε₁ = ε/2` (Theorem 5.1 gives `(2ε₁) = ε` OCDP). The expected number of
//! draws to find one matching context is `2^t / N` where `N` is the number of
//! matching contexts (Theorem 5.2) — uniform sampling does not actually escape
//! the exponential cost, which is exactly why the paper moves on to
//! graph-based sampling. A configurable attempt cap keeps the reproduction
//! from spinning forever on workloads where matching contexts are rare.

use crate::select::mechanism_draw;
use crate::verify::Verifier;
use crate::{PcorConfig, PcorError, PcorResult, Result, SamplingAlgorithm};
use pcor_data::Context;
use pcor_graph::ContextGraph;
use rand::Rng;
use std::time::Duration;

/// Runs uniform sampling (Algorithm 2).
///
/// # Errors
/// * [`PcorError::NoSamples`] when the attempt cap is exhausted before any
///   matching context is found;
/// * verification/mechanism errors otherwise.
pub fn run<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    config: &PcorConfig,
    rng: &mut R,
) -> Result<PcorResult> {
    let t = verifier.dataset().schema().total_values();
    let graph = ContextGraph::new(t);

    let mut samples: Vec<Context> = Vec::with_capacity(config.samples);
    let mut attempts = 0usize;
    while samples.len() < config.samples && attempts < config.max_attempts {
        attempts += 1;
        let candidate = graph.random_vertex(0.5, rng);
        if verifier.is_matching(&candidate)? {
            samples.push(candidate);
        }
    }
    if samples.is_empty() {
        return Err(PcorError::NoSamples);
    }

    let mechanism = config.mechanism_kind();
    let guarantee = SamplingAlgorithm::Uniform
        .guarantee(config.epsilon, config.samples)?
        .with_mechanism(mechanism);
    let (context, utility) =
        mechanism_draw(verifier, &samples, mechanism, guarantee.epsilon_per_invocation, rng)?;
    Ok(PcorResult {
        context,
        utility,
        samples_collected: samples.len(),
        verification_calls: 0,
        guarantee,
        runtime: Duration::ZERO,
        algorithm: SamplingAlgorithm::Uniform,
        mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// Small schema (t = 5) so that matching contexts are reasonably dense and
    /// uniform sampling terminates quickly in tests.
    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0)];
        for i in 0..60 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn uniform_sampling_releases_a_matching_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Uniform, 0.2).with_samples(10);
        let mut rng = ChaCha12Rng::seed_from_u64(21);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        assert_eq!(result.samples_collected, 10);
        assert_eq!(result.guarantee.epsilon_per_invocation, 0.1);
    }

    #[test]
    fn attempt_cap_limits_work_and_may_yield_partial_samples() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        // A tiny attempt budget: either we get a few samples or an error, but
        // never more verification calls than the cap.
        let config =
            PcorConfig::new(SamplingAlgorithm::Uniform, 0.2).with_samples(50).with_max_attempts(20);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        match run(&mut verifier, &config, &mut rng) {
            Ok(result) => assert!(result.samples_collected <= 20),
            Err(PcorError::NoSamples) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        assert!(verifier.calls() <= 21);
    }

    #[test]
    fn non_outlier_records_produce_no_samples() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 3);
        let config =
            PcorConfig::new(SamplingAlgorithm::Uniform, 0.2).with_samples(5).with_max_attempts(500);
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        assert_eq!(run(&mut verifier, &config, &mut rng), Err(PcorError::NoSamples));
    }
}
