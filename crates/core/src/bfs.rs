//! Algorithm 5: differentially private breadth-first search — the paper's
//! final choice of sampling algorithm for PCOR.
//!
//! The search keeps a frontier `C_M` (a priority structure of matching
//! contexts). Each iteration draws one frontier vertex with the Exponential
//! mechanism (utility-guided), moves it to the visited set and inserts its
//! matching, unvisited children into the frontier. After `n` vertices have
//! been visited, a final Exponential-mechanism draw over the visited set
//! selects the release.
//!
//! As with DP-DFS, each of the (at most) `n` frontier draws and the final draw
//! costs `2ε₁Δu`, so the guarantee is `((2n+2)ε₁)`-OCDP (Theorem 5.7) with
//! `ε₁ = ε/(2n+2)`, and the complexity is `O(n²·t)` (Theorem 5.8) because the
//! frontier grows by up to `t` vertices per visited vertex.

use crate::select::mechanism_draw;
use crate::starting::{resolve_starting_context, DEFAULT_SEARCH_BUDGET};
use crate::verify::Verifier;
use crate::{PcorConfig, PcorResult, Result, SamplingAlgorithm};
use pcor_data::Context;
use rand::Rng;
use std::collections::HashSet;
use std::time::Duration;

/// Runs differentially private breadth-first search (Algorithm 5).
///
/// # Errors
/// * [`crate::PcorError::NoStartingContext`] when no matching starting context
///   exists;
/// * verification/mechanism errors otherwise.
pub fn run<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    config: &PcorConfig,
    rng: &mut R,
) -> Result<PcorResult> {
    let start = resolve_starting_context(
        verifier,
        config.starting_context.as_ref(),
        DEFAULT_SEARCH_BUDGET,
    )?;

    let mechanism = config.mechanism_kind();
    let guarantee =
        SamplingAlgorithm::Bfs.guarantee(config.epsilon, config.samples)?.with_mechanism(mechanism);
    let epsilon1 = guarantee.epsilon_per_invocation;
    let step_mechanism = mechanism.build(epsilon1, verifier.utility().sensitivity())?;

    // The frontier C_M (treated as a priority queue keyed by utility through
    // the Exponential mechanism) and the visited set.
    let mut frontier: Vec<Context> = vec![start.clone()];
    let mut frontier_set: HashSet<Context> = HashSet::from([start]);
    let mut visited_set: HashSet<Context> = HashSet::new();
    let mut visited: Vec<Context> = Vec::new();

    while visited.len() < config.samples && !frontier.is_empty() {
        // Draw the next vertex to expand from the frontier.
        let mut scores = Vec::with_capacity(frontier.len());
        for candidate in &frontier {
            scores.push(verifier.evaluate(candidate)?.utility);
        }
        let index = {
            let mut erased: &mut R = rng;
            step_mechanism.select(&scores, &mut erased)?
        };
        let current = frontier.swap_remove(index);
        frontier_set.remove(&current);
        visited_set.insert(current.clone());
        visited.push(current.clone());

        // Insert the matching, unvisited children into the frontier. The
        // whole neighbor frontier shares one batched cursor walk; children
        // already visited or queued are cache hits, not fresh `f_M` calls.
        let neighbor_evals = verifier.evaluate_neighbors(&current)?;
        for (bit, evaluation) in neighbor_evals.iter().enumerate() {
            if !evaluation.matching {
                continue;
            }
            let child = current.with_flipped(bit);
            if visited_set.contains(&child) || frontier_set.contains(&child) {
                continue;
            }
            frontier_set.insert(child.clone());
            frontier.push(child);
        }
    }

    let (context, utility) = mechanism_draw(verifier, &visited, mechanism, epsilon1, rng)?;
    Ok(PcorResult {
        context,
        utility,
        samples_collected: visited.len(),
        verification_calls: 0,
        guarantee,
        runtime: Duration::ZERO,
        algorithm: SamplingAlgorithm::Bfs,
        mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::{OverlapUtility, PopulationSizeUtility};
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 2_000.0)];
        for i in 0..120 {
            records.push(Record::new(
                vec![(i % 3) as u16, ((i / 3) % 3) as u16],
                100.0 + (i % 11) as f64,
            ));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn bfs_releases_a_matching_context_with_split_budget() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2).with_samples(12);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        assert!(result.samples_collected >= 1 && result.samples_collected <= 12);
        assert!((result.guarantee.epsilon_per_invocation - 0.2 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_reaches_high_utility_relative_to_the_maximum() {
        // The paper reports ~0.9 utility ratio for BFS at eps = 0.2 with
        // n = 50 on a much larger context graph. On this toy workload the
        // per-step budget is tiny, so use a somewhat larger budget and check
        // BFS clears a comfortable fraction of the maximum utility on average.
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = crate::coe::enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        let max = reference.max_utility;
        let mut rng = ChaCha12Rng::seed_from_u64(123);
        let mut total_ratio = 0.0;
        let reps = 10;
        for _ in 0..reps {
            let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
            let config = PcorConfig::new(SamplingAlgorithm::Bfs, 1.0).with_samples(15);
            total_ratio += run(&mut verifier, &config, &mut rng).unwrap().utility / max;
        }
        let avg = total_ratio / reps as f64;
        assert!(avg > 0.5, "average BFS utility ratio {avg} too low");
    }

    #[test]
    fn bfs_works_with_the_overlap_utility() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let starting = dataset.minimal_context(0).unwrap();
        let utility = OverlapUtility::new(&dataset, starting.clone()).unwrap();
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2)
            .with_samples(10)
            .with_starting_context(starting);
        let mut rng = ChaCha12Rng::seed_from_u64(31);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        // The overlap with the starting context is at most its population.
        assert!(result.utility <= utility.starting_population_size() as f64);
    }

    #[test]
    fn bfs_never_visits_a_context_twice() {
        // Rerun the BFS loop manually and check visited uniqueness.
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2).with_samples(20);
        let mut rng = ChaCha12Rng::seed_from_u64(55);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        // samples_collected counts distinct visited contexts by construction;
        // verify it does not exceed the number of distinct contexts evaluated.
        assert!(result.samples_collected <= verifier.distinct_contexts());
    }

    #[test]
    fn non_outlier_record_has_no_starting_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 50);
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(run(&mut verifier, &config, &mut rng), Err(crate::PcorError::NoStartingContext));
    }
}
