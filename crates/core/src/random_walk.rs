//! Algorithm 3: random-walk sampling over the context graph.
//!
//! The walk starts at the outlier's starting context `C_V` and repeatedly
//! moves to a uniformly chosen *matching* neighbor (trying the `t` neighbors
//! without replacement). Each visited matching context joins the sample
//! multiset `C_M`; when `n` samples have been collected (or the walk gets
//! stuck with no matching neighbor) the release is drawn from `C_M` with the
//! Exponential mechanism at `ε₁ = ε/2` (Theorem 5.3: `(2ε₁) = ε` OCDP). The
//! complexity is `O(n·t)` (Theorem 5.4) — linear where uniform sampling was
//! exponential — because the walk exploits the *locality* of matching
//! contexts in the graph.

use crate::select::mechanism_draw;
use crate::starting::{resolve_starting_context, DEFAULT_SEARCH_BUDGET};
use crate::verify::Verifier;
use crate::{PcorConfig, PcorResult, Result, SamplingAlgorithm};
use pcor_data::Context;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Duration;

/// Runs random-walk sampling (Algorithm 3).
///
/// # Errors
/// * [`crate::PcorError::NoStartingContext`] when no matching starting
///   context exists;
/// * verification/mechanism errors otherwise.
pub fn run<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    config: &PcorConfig,
    rng: &mut R,
) -> Result<PcorResult> {
    let start = resolve_starting_context(
        verifier,
        config.starting_context.as_ref(),
        DEFAULT_SEARCH_BUDGET,
    )?;
    let t = start.len();

    let mut samples: Vec<Context> = vec![start.clone()];
    let mut current = start;
    'walk: while samples.len() < config.samples {
        // Try the t connected contexts in random order, without replacement.
        let mut bits: Vec<usize> = (0..t).collect();
        bits.shuffle(rng);
        for bit in bits {
            let candidate = current.with_flipped(bit);
            if verifier.is_matching(&candidate)? {
                samples.push(candidate.clone());
                current = candidate;
                continue 'walk;
            }
        }
        // No matching neighbor: the walk is stuck and the sampling phase ends.
        break;
    }

    let mechanism = config.mechanism_kind();
    let guarantee = SamplingAlgorithm::RandomWalk
        .guarantee(config.epsilon, config.samples)?
        .with_mechanism(mechanism);
    let (context, utility) =
        mechanism_draw(verifier, &samples, mechanism, guarantee.epsilon_per_invocation, rng)?;
    Ok(PcorResult {
        context,
        utility,
        samples_collected: samples.len(),
        verification_calls: 0,
        guarantee,
        runtime: Duration::ZERO,
        algorithm: SamplingAlgorithm::RandomWalk,
        mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 2_000.0)];
        for i in 0..120 {
            records.push(Record::new(
                vec![(i % 3) as u16, ((i / 3) % 3) as u16],
                100.0 + (i % 11) as f64,
            ));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn random_walk_releases_a_matching_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::RandomWalk, 0.2).with_samples(15);
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        assert!(result.samples_collected >= 1);
        assert!(result.samples_collected <= 15);
        assert_eq!(result.guarantee.epsilon_per_invocation, 0.1);
    }

    #[test]
    fn walk_path_consists_of_connected_matching_contexts() {
        // Re-run the core walk logic manually to inspect the path: every
        // consecutive pair must be Hamming-distance 1 and every sample must
        // match. (The public API intentionally only exposes the final draw.)
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let start = crate::starting::find_starting_context(&mut verifier, 5_000).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let mut samples = vec![start.clone()];
        let mut current = start;
        'walk: while samples.len() < 10 {
            let mut bits: Vec<usize> = (0..6).collect();
            bits.shuffle(&mut rng);
            for bit in bits {
                let candidate = current.with_flipped(bit);
                if verifier.is_matching(&candidate).unwrap() {
                    samples.push(candidate.clone());
                    current = candidate;
                    continue 'walk;
                }
            }
            break;
        }
        for pair in samples.windows(2) {
            assert_eq!(pair[0].hamming_distance(&pair[1]), 1);
        }
        for s in &samples {
            assert!(verifier.is_matching(s).unwrap());
        }
    }

    #[test]
    fn non_outlier_record_yields_no_starting_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 30);
        let config = PcorConfig::new(SamplingAlgorithm::RandomWalk, 0.2);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(run(&mut verifier, &config, &mut rng), Err(crate::PcorError::NoStartingContext));
    }

    #[test]
    fn explicit_starting_context_is_used() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let start = dataset.minimal_context(0).unwrap();
        assert!(verifier.is_matching(&start).unwrap());
        let config = PcorConfig::new(SamplingAlgorithm::RandomWalk, 0.2)
            .with_samples(5)
            .with_starting_context(start);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
    }
}
