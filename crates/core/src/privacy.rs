//! Empirical privacy experiments (Section 6.7 of the paper).
//!
//! OCDP conditions the differential-privacy guarantee on
//! `COE_M(D₁, V) = COE_M(D₂, V)` — adding/removing records must not change
//! which contexts are valid for the queried outlier. The paper measures two
//! things on real data:
//!
//! 1. **COE match** — how often the matching-context sets of a dataset and its
//!    neighbors agree (Tables 12–13), also under *group privacy* where the
//!    neighbor differs in `ΔD ∈ {1, 5, 10, 25}` records.
//! 2. **Empirical ratio check** — when the sets do differ, whether the output
//!    probabilities still satisfy the `e^ε` bound of unconstrained DP for the
//!    contexts both datasets can release.
//!
//! This module implements both measurements on top of the exhaustive
//! enumeration in [`crate::coe`].

use crate::coe::{enumerate_coe, ReferenceFile};
use crate::Result;
use pcor_data::Dataset;
use pcor_dp::{MechanismKind, Utility};
use pcor_outlier::OutlierDetector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How closely the matching-context sets of two (neighboring) datasets agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoeMatch {
    /// `|COE(D₁) ∩ COE(D₂)| / |COE(D₁) ∪ COE(D₂)|` (Jaccard similarity);
    /// `1.0` when the sets are identical. Defined as `1.0` when both sets are
    /// empty.
    pub jaccard: f64,
    /// Number of matching contexts for the original dataset.
    pub original_size: usize,
    /// Number of matching contexts for the neighboring dataset.
    pub neighbor_size: usize,
    /// Size of the intersection.
    pub intersection: usize,
}

impl CoeMatch {
    /// Whether the two sets are exactly equal (the OCDP neighboring
    /// condition).
    pub fn exact_match(&self) -> bool {
        self.original_size == self.neighbor_size && self.intersection == self.original_size
    }
}

/// Compares the COE sets of a dataset and a neighbor for the same logical
/// record (the record's id may differ between the two datasets because
/// removal re-indexes records — see [`reindex_after_removal`]).
///
/// # Errors
/// Propagates enumeration errors (`t` above `limit`, invalid ids).
pub fn coe_match(
    original: &Dataset,
    original_outlier_id: usize,
    neighbor: &Dataset,
    neighbor_outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    limit: usize,
) -> Result<CoeMatch> {
    let coe1 = enumerate_coe(original, original_outlier_id, detector, utility, limit)?;
    let coe2 = enumerate_coe(neighbor, neighbor_outlier_id, detector, utility, limit)?;
    Ok(compare_references(&coe1, &coe2))
}

/// Compares two already-enumerated reference files.
pub fn compare_references(original: &ReferenceFile, neighbor: &ReferenceFile) -> CoeMatch {
    let set1 = original.context_set();
    let set2 = neighbor.context_set();
    let intersection = set1.intersection(&set2).count();
    let union = set1.union(&set2).count();
    CoeMatch {
        jaccard: if union == 0 { 1.0 } else { intersection as f64 / union as f64 },
        original_size: set1.len(),
        neighbor_size: set2.len(),
        intersection,
    }
}

/// Maps a record id in the original dataset to its id in the neighbor
/// produced by [`Dataset::without_records`]. Returns `None` when the record
/// itself was removed.
pub fn reindex_after_removal(original_id: usize, removed: &[usize]) -> Option<usize> {
    if removed.contains(&original_id) {
        return None;
    }
    let shift = removed.iter().filter(|&&r| r < original_id).count();
    Some(original_id - shift)
}

/// Result of the empirical output-probability ratio check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioCheck {
    /// The largest observed `Pr[M(D₁) = C] / Pr[M(D₂) = C]` over contexts in
    /// the intersection of the two COE sets (and its reciprocal direction).
    pub max_ratio: f64,
    /// The bound `e^ε` the paper checks against.
    pub bound: f64,
    /// Number of common contexts the ratio was evaluated on.
    pub common_contexts: usize,
    /// Whether every observed ratio was within the bound.
    pub holds: bool,
}

/// Evaluates the Section 6.7 ratio experiment with the paper's Exponential
/// mechanism — equivalent to
/// [`empirical_ratio_check_with`]`(…, MechanismKind::Exponential)`.
///
/// # Errors
/// Propagates enumeration/mechanism errors. When either COE set is empty the
/// check trivially holds with `max_ratio = 1.0`.
pub fn empirical_ratio_check(
    original: &ReferenceFile,
    neighbor: &ReferenceFile,
    epsilon: f64,
    sensitivity: f64,
) -> Result<RatioCheck> {
    empirical_ratio_check_with(original, neighbor, epsilon, sensitivity, MechanismKind::default())
}

/// Evaluates the Section 6.7 ratio experiment for one selection mechanism:
/// with the single-draw budget split (`ε₁ = ε/2`), compute the mechanism's
/// exact output distribution over each dataset's COE set and compare the
/// probabilities of the common contexts against the `e^ε` bound.
///
/// Running this per [`MechanismKind`] is how the mechanism axis is
/// empirically validated — every supported mechanism shares the `2ε₁Δu`
/// per-draw guarantee, so each must pass the same bound.
///
/// # Errors
/// Propagates enumeration/mechanism errors. When either COE set is empty the
/// check trivially holds with `max_ratio = 1.0`.
pub fn empirical_ratio_check_with(
    original: &ReferenceFile,
    neighbor: &ReferenceFile,
    epsilon: f64,
    sensitivity: f64,
    kind: MechanismKind,
) -> Result<RatioCheck> {
    let bound = epsilon.exp();
    if original.is_empty() || neighbor.is_empty() {
        return Ok(RatioCheck { max_ratio: 1.0, bound, common_contexts: 0, holds: true });
    }
    let mechanism = kind.build(epsilon / 2.0, sensitivity)?;

    let scores1: Vec<f64> = original.entries.iter().map(|e| e.utility).collect();
    let scores2: Vec<f64> = neighbor.entries.iter().map(|e| e.utility).collect();
    let p1 = mechanism.probabilities(&scores1)?;
    let p2 = mechanism.probabilities(&scores2)?;

    let index2: HashMap<_, usize> =
        neighbor.entries.iter().enumerate().map(|(i, e)| (e.context.clone(), i)).collect();

    let mut max_ratio: f64 = 1.0;
    let mut common = 0usize;
    for (i, entry) in original.entries.iter().enumerate() {
        if let Some(&j) = index2.get(&entry.context) {
            common += 1;
            if p1[i] > 0.0 && p2[j] > 0.0 {
                let ratio = (p1[i] / p2[j]).max(p2[j] / p1[i]);
                max_ratio = max_ratio.max(ratio);
            }
        }
    }
    Ok(RatioCheck { max_ratio, bound, common_contexts: common, holds: max_ratio <= bound + 1e-9 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0)];
        for i in 0..90 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn identical_datasets_match_exactly() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let m = coe_match(&d, 0, &d, 0, &detector, &utility, 22).unwrap();
        assert!(m.exact_match());
        assert_eq!(m.jaccard, 1.0);
        assert_eq!(m.original_size, m.neighbor_size);
        assert_eq!(m.intersection, m.original_size);
    }

    #[test]
    fn removing_an_unrelated_record_keeps_a_high_match() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let (neighbor, removed) = d.random_neighbor(&mut rng, 1, &[0]).unwrap();
        let new_id = reindex_after_removal(0, &removed).unwrap();
        let m = coe_match(&d, 0, &neighbor, new_id, &detector, &utility, 22).unwrap();
        assert!(m.jaccard >= 0.5, "jaccard {}", m.jaccard);
        assert!(m.intersection > 0);
    }

    #[test]
    fn reindexing_accounts_for_removed_predecessors() {
        assert_eq!(reindex_after_removal(10, &[2, 5, 20]), Some(8));
        assert_eq!(reindex_after_removal(1, &[5]), Some(1));
        assert_eq!(reindex_after_removal(5, &[5]), None);
        assert_eq!(reindex_after_removal(0, &[]), Some(0));
    }

    #[test]
    fn compare_references_handles_empty_sets() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let non_outlier = enumerate_coe(&d, 5, &detector, &utility, 22).unwrap();
        let outlier = enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        let both_empty = compare_references(&non_outlier, &non_outlier);
        assert_eq!(both_empty.jaccard, 1.0);
        assert!(both_empty.exact_match());
        let one_empty = compare_references(&outlier, &non_outlier);
        assert_eq!(one_empty.jaccard, 0.0);
        assert!(!one_empty.exact_match());
    }

    #[test]
    fn ratio_check_holds_for_neighboring_datasets() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let coe1 = enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        let mut worst: f64 = 1.0;
        for _ in 0..10 {
            let (neighbor, removed) = d.random_neighbor(&mut rng, 1, &[0]).unwrap();
            let new_id = reindex_after_removal(0, &removed).unwrap();
            let coe2 = enumerate_coe(&neighbor, new_id, &detector, &utility, 22).unwrap();
            let check = empirical_ratio_check(&coe1, &coe2, 0.2, 1.0).unwrap();
            assert!(check.common_contexts > 0);
            worst = worst.max(check.max_ratio);
            // The paper reports the bound holds in every observed instance;
            // the mechanism math guarantees it whenever the COE sets match,
            // and sensitivity-1 utilities keep it within e^eps in general.
            assert!(check.holds, "ratio {} exceeded bound {}", check.max_ratio, check.bound);
        }
        assert!(worst >= 1.0);
    }

    #[test]
    fn ratio_check_holds_per_mechanism_on_neighboring_datasets() {
        // The mechanism axis must not weaken the Section 6.7 bound: every
        // supported mechanism's exact output distribution stays within e^ε
        // on neighboring COE sets (PF is not a softmax, so this exercises a
        // genuinely different distribution).
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut rng = ChaCha12Rng::seed_from_u64(23);
        let coe1 = enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        for _ in 0..4 {
            let (neighbor, removed) = d.random_neighbor(&mut rng, 1, &[0]).unwrap();
            let new_id = reindex_after_removal(0, &removed).unwrap();
            let coe2 = enumerate_coe(&neighbor, new_id, &detector, &utility, 22).unwrap();
            for kind in pcor_dp::MechanismKind::all() {
                let check = empirical_ratio_check_with(&coe1, &coe2, 0.2, 1.0, kind).unwrap();
                assert!(check.common_contexts > 0);
                assert!(
                    check.holds,
                    "{kind}: ratio {} exceeded bound {}",
                    check.max_ratio, check.bound
                );
            }
        }
        // Exponential and report-noisy-max share one distribution, so their
        // checks must agree exactly.
        let (neighbor, removed) = d.random_neighbor(&mut rng, 1, &[0]).unwrap();
        let new_id = reindex_after_removal(0, &removed).unwrap();
        let coe2 = enumerate_coe(&neighbor, new_id, &detector, &utility, 22).unwrap();
        let em =
            empirical_ratio_check_with(&coe1, &coe2, 0.2, 1.0, pcor_dp::MechanismKind::Exponential)
                .unwrap();
        let rnm = empirical_ratio_check_with(
            &coe1,
            &coe2,
            0.2,
            1.0,
            pcor_dp::MechanismKind::ReportNoisyMax,
        )
        .unwrap();
        assert!((em.max_ratio - rnm.max_ratio).abs() < 1e-12);
    }

    #[test]
    fn ratio_check_with_empty_reference_trivially_holds() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let empty = enumerate_coe(&d, 5, &detector, &utility, 22).unwrap();
        let full = enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        let check = empirical_ratio_check(&empty, &full, 0.2, 1.0).unwrap();
        assert!(check.holds);
        assert_eq!(check.common_contexts, 0);
        assert_eq!(check.max_ratio, 1.0);
    }
}
