//! Discovering a starting context `C_V`.
//!
//! The graph-based samplers (random walk, DP-DFS, DP-BFS) assume the data
//! owner already knows *one* valid context for the queried record ("The data
//! owner can obtain this context through an initial search", footnote 5 of
//! the paper). This module implements that initial search: starting from the
//! record's *minimal* context (exactly its own attribute values) it explores
//! super-contexts in breadth-first order until it finds one in which the
//! record is an outlier.
//!
//! Only bits **outside** the minimal context are ever added: any context that
//! covers `V` must contain all of `V`'s own value bits, so the search space is
//! the `2^(t-m)` super-contexts of the minimal context rather than all `2^t`
//! contexts.

use crate::verify::Verifier;
use crate::{PcorError, Result};
use pcor_data::Context;
use std::collections::{HashSet, VecDeque};

/// Default cap on the number of contexts examined by the starting-context
/// search.
pub const DEFAULT_SEARCH_BUDGET: usize = 5_000;

/// Finds a starting (matching) context for the verifier's record, examining at
/// most `budget` contexts.
///
/// The search proceeds in breadth-first order from the minimal context, so the
/// returned context is one with as few extra predicates as possible — a small,
/// specific neighborhood around the record, which is the natural seed for the
/// graph samplers.
///
/// # Errors
/// Returns [`PcorError::NoStartingContext`] when no matching context is found
/// within the budget.
pub fn find_starting_context(verifier: &mut Verifier<'_>, budget: usize) -> Result<Context> {
    let minimal = verifier.minimal_context()?;
    if verifier.is_matching(&minimal)? {
        return Ok(minimal);
    }
    let t = minimal.len();
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();

    let mut visited: HashSet<Context> = HashSet::new();
    let mut queue: VecDeque<Context> = VecDeque::new();
    visited.insert(minimal.clone());
    queue.push_back(minimal);

    let mut examined = 1usize;
    while let Some(current) = queue.pop_front() {
        for &bit in &free_bits {
            if current.get(bit) {
                continue;
            }
            let candidate = current.with_flipped(bit);
            if !visited.insert(candidate.clone()) {
                continue;
            }
            examined += 1;
            if verifier.is_matching(&candidate)? {
                return Ok(candidate);
            }
            if examined >= budget {
                return Err(PcorError::NoStartingContext);
            }
            queue.push_back(candidate);
        }
    }
    Err(PcorError::NoStartingContext)
}

/// Resolves the starting context for a release: uses the explicitly configured
/// context when present (after checking it is matching), otherwise searches
/// for one.
///
/// # Errors
/// Returns [`PcorError::InvalidConfig`] if an explicitly supplied starting
/// context is not a matching context, or [`PcorError::NoStartingContext`] if
/// the search fails.
pub fn resolve_starting_context(
    verifier: &mut Verifier<'_>,
    configured: Option<&Context>,
    budget: usize,
) -> Result<Context> {
    match configured {
        Some(context) => {
            if verifier.is_matching(context)? {
                Ok(context.clone())
            } else {
                Err(PcorError::InvalidConfig(
                    "the configured starting context is not a matching context for the record"
                        .into(),
                ))
            }
        }
        None => find_starting_context(verifier, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap()
    }

    /// Record 0 is extreme within (a0, b0) and moderately extreme in wider
    /// contexts too.
    fn dataset_with_local_outlier() -> Dataset {
        let mut records = vec![Record::new(vec![0, 0], 900.0)];
        for i in 0..20 {
            records.push(Record::new(vec![0, 0], 100.0 + i as f64));
            records.push(Record::new(vec![0, 1], 110.0 + i as f64));
            records.push(Record::new(vec![1, 2], 120.0 + i as f64));
        }
        Dataset::new(schema(), records).unwrap()
    }

    /// No record is an outlier anywhere: constant metric.
    fn flat_dataset() -> Dataset {
        let records =
            (0..30).map(|i| Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0)).collect();
        Dataset::new(schema(), records).unwrap()
    }

    #[test]
    fn minimal_context_is_returned_when_it_matches() {
        let dataset = dataset_with_local_outlier();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let start = find_starting_context(&mut verifier, DEFAULT_SEARCH_BUDGET).unwrap();
        assert_eq!(start, dataset.minimal_context(0).unwrap());
        assert!(verifier.is_matching(&start).unwrap());
    }

    #[test]
    fn search_expands_when_the_minimal_context_is_too_small() {
        // Make the detector require a larger population: LOF-style detectors
        // need more points; emulate with a z-score detector and a dataset
        // where the record's own cell has only the record itself plus one.
        let schema = schema();
        let mut records = vec![Record::new(vec![0, 0], 900.0), Record::new(vec![0, 0], 100.0)];
        for i in 0..30 {
            records.push(Record::new(vec![0, 1], 100.0 + (i % 5) as f64));
        }
        let dataset = Dataset::new(schema, records).unwrap();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        // Minimal context has population 2 -> z-score detector cannot flag
        // anything (needs >= 3); the search must add the b1 value.
        let minimal = dataset.minimal_context(0).unwrap();
        assert!(!verifier.is_matching(&minimal).unwrap());
        let start = find_starting_context(&mut verifier, DEFAULT_SEARCH_BUDGET).unwrap();
        assert!(verifier.is_matching(&start).unwrap());
        assert!(start.hamming_weight() > minimal.hamming_weight());
        // All of the record's own bits are still selected.
        for bit in minimal.ones() {
            assert!(start.get(bit));
        }
    }

    #[test]
    fn no_starting_context_for_a_non_outlier() {
        let dataset = flat_dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 5);
        assert_eq!(
            find_starting_context(&mut verifier, DEFAULT_SEARCH_BUDGET),
            Err(PcorError::NoStartingContext)
        );
    }

    #[test]
    fn tiny_budget_gives_up() {
        let dataset = flat_dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 5);
        assert_eq!(find_starting_context(&mut verifier, 2), Err(PcorError::NoStartingContext));
    }

    #[test]
    fn resolve_prefers_a_valid_configured_context() {
        let dataset = dataset_with_local_outlier();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let configured = dataset.minimal_context(0).unwrap();
        let resolved =
            resolve_starting_context(&mut verifier, Some(&configured), DEFAULT_SEARCH_BUDGET)
                .unwrap();
        assert_eq!(resolved, configured);
        // A non-matching configured context is rejected.
        let bad = Context::from_indices(5, [1, 4]);
        assert!(matches!(
            resolve_starting_context(&mut verifier, Some(&bad), DEFAULT_SEARCH_BUDGET),
            Err(PcorError::InvalidConfig(_))
        ));
        // Without a configured context the search runs.
        let searched =
            resolve_starting_context(&mut verifier, None, DEFAULT_SEARCH_BUDGET).unwrap();
        assert!(verifier.is_matching(&searched).unwrap());
    }
}
