//! Shared selection-mechanism draw helpers used by every algorithm.
//!
//! Historically this drew through a hard-coded `ExponentialMechanism`; the
//! draw is now generic over [`MechanismKind`], built per draw from the
//! spec's mechanism choice. With the default `MechanismKind::Exponential`
//! the RNG consumption is bit-identical to the historical code path.

use crate::verify::Verifier;
use crate::Result;
use pcor_data::Context;
use pcor_dp::MechanismKind;
use rand::Rng;

/// Draws one context from `candidates` with the selection mechanism `kind`
/// at per-invocation budget `epsilon1`, scoring each candidate with the
/// verifier's mechanism score (utility for matching contexts, `-∞`
/// otherwise — so only matching contexts can ever be released, whatever the
/// mechanism).
///
/// Returns the chosen context and its utility score.
///
/// # Errors
/// Returns [`crate::PcorError::NoSamples`] when no candidate is matching, and
/// propagates verification errors.
pub fn mechanism_draw<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    candidates: &[Context],
    kind: MechanismKind,
    epsilon1: f64,
    rng: &mut R,
) -> Result<(Context, f64)> {
    let sensitivity = verifier.utility().sensitivity();
    let mechanism = kind.build(epsilon1, sensitivity)?;
    let mut scores = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        scores.push(verifier.mechanism_score(candidate)?);
    }
    // `&mut R` is itself an `RngCore`, so a reborrow erases the generic
    // parameter without changing how the mechanism consumes randomness.
    let mut erased: &mut R = rng;
    let index = mechanism.select(&scores, &mut erased)?;
    let chosen = candidates[index].clone();
    let utility = verifier.evaluate(&chosen)?.utility;
    Ok((chosen, utility))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 999.0)];
        for i in 0..40 {
            records.push(Record::new(
                vec![(i % 2) as u16, ((i / 2) % 2) as u16],
                100.0 + (i % 7) as f64,
            ));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn draw_returns_a_matching_context_and_its_utility_for_every_mechanism() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let candidates = vec![
            dataset.minimal_context(0).unwrap(),
            Context::full(4),
            Context::from_indices(4, [1, 3]), // does not cover record 0
        ];
        for kind in MechanismKind::all() {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            for _ in 0..50 {
                let (chosen, utility_score) =
                    mechanism_draw(&mut verifier, &candidates, kind, 1.0, &mut rng).unwrap();
                assert!(verifier.is_matching(&chosen).unwrap());
                assert!(utility_score > 0.0);
                assert_ne!(chosen, candidates[2], "{kind} released a non-matching context");
            }
        }
    }

    #[test]
    fn the_default_mechanism_is_bit_identical_to_the_historical_draw() {
        // The pre-trait engine built an ExponentialMechanism and drew one
        // f64; the trait path must replay identically for equal seeds.
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let candidates = vec![dataset.minimal_context(0).unwrap(), Context::full(4)];
        let mut direct = Verifier::new(&dataset, &detector, &utility, 0);
        let mut via_kind = Verifier::new(&dataset, &detector, &utility, 0);
        for seed in 0..20 {
            let mut rng_a = ChaCha12Rng::seed_from_u64(seed);
            let mut rng_b = ChaCha12Rng::seed_from_u64(seed);
            let mechanism = pcor_dp::ExponentialMechanism::new(0.7, 1.0).unwrap();
            let mut scores = Vec::new();
            for candidate in &candidates {
                scores.push(direct.mechanism_score(candidate).unwrap());
            }
            let index = mechanism.select(&scores, &mut rng_a).unwrap();
            let (chosen, _) = mechanism_draw(
                &mut via_kind,
                &candidates,
                MechanismKind::Exponential,
                0.7,
                &mut rng_b,
            )
            .unwrap();
            assert_eq!(chosen, candidates[index]);
        }
    }

    #[test]
    fn draw_with_no_matching_candidate_fails() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let candidates = vec![Context::from_indices(4, [1, 3])];
        for kind in MechanismKind::all() {
            let mut rng = ChaCha12Rng::seed_from_u64(2);
            assert!(mechanism_draw(&mut verifier, &candidates, kind, 1.0, &mut rng).is_err());
            assert!(mechanism_draw(&mut verifier, &[], kind, 1.0, &mut rng).is_err());
        }
    }
}
