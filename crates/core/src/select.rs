//! Shared Exponential-mechanism selection helpers used by every algorithm.

use crate::verify::Verifier;
use crate::Result;
use pcor_data::Context;
use pcor_dp::ExponentialMechanism;
use rand::Rng;

/// Draws one context from `candidates` with the Exponential mechanism at
/// per-invocation budget `epsilon1`, scoring each candidate with the
/// verifier's mechanism score (utility for matching contexts, `-∞` otherwise).
///
/// Returns the chosen context and its utility score.
///
/// # Errors
/// Returns [`crate::PcorError::NoSamples`] when no candidate is matching, and
/// propagates verification errors.
pub fn mechanism_draw<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    candidates: &[Context],
    epsilon1: f64,
    rng: &mut R,
) -> Result<(Context, f64)> {
    let sensitivity = verifier.utility().sensitivity();
    let mechanism = ExponentialMechanism::new(epsilon1, sensitivity)?;
    let mut scores = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        scores.push(verifier.mechanism_score(candidate)?);
    }
    let index = mechanism.select(&scores, rng)?;
    let chosen = candidates[index].clone();
    let utility = verifier.evaluate(&chosen)?.utility;
    Ok((chosen, utility))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 999.0)];
        for i in 0..40 {
            records.push(Record::new(
                vec![(i % 2) as u16, ((i / 2) % 2) as u16],
                100.0 + (i % 7) as f64,
            ));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn draw_returns_a_matching_context_and_its_utility() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let candidates = vec![
            dataset.minimal_context(0).unwrap(),
            Context::full(4),
            Context::from_indices(4, [1, 3]), // does not cover record 0
        ];
        for _ in 0..50 {
            let (chosen, utility_score) =
                mechanism_draw(&mut verifier, &candidates, 1.0, &mut rng).unwrap();
            assert!(verifier.is_matching(&chosen).unwrap());
            assert!(utility_score > 0.0);
            assert_ne!(chosen, candidates[2]);
        }
    }

    #[test]
    fn draw_with_no_matching_candidate_fails() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.0);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let candidates = vec![Context::from_indices(4, [1, 3])];
        assert!(mechanism_draw(&mut verifier, &candidates, 1.0, &mut rng).is_err());
        assert!(mechanism_draw(&mut verifier, &[], 1.0, &mut rng).is_err());
    }
}
