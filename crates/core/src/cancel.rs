//! Cooperative cancellation for long-running releases.
//!
//! A release is dominated by `f_M` verification calls, each a full pass
//! over the dataset's population bitmaps — seconds of work for the larger
//! schemas. A serving layer that has already timed a request out (or whose
//! client hung up) must be able to stop that work *between* verification
//! calls without poisoning shared state: the verifier's memo cache, the
//! cursor and the session remain valid after a cancelled release, and the
//! caller can refund the release's reserved privacy budget knowing no
//! private draw was published.
//!
//! [`CancelToken`] is the signal: a cheaply clonable handle combining an
//! explicit cancel flag with an optional deadline. The [`Verifier`] checks
//! it before every *fresh* evaluation (cache hits are near-free and never
//! blocked), so cancellation latency is bounded by one verification call —
//! exactly the granularity the cost model says matters.
//!
//! [`Verifier`]: crate::Verifier

use crate::{PcorError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable cancellation signal: an explicit flag plus an
/// optional deadline. All clones observe the same flag.
///
/// ```
/// use pcor_core::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// assert!(watcher.check().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn deadline_after(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Trips the token. Idempotent; all clones observe the trip.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token was explicitly cancelled (deadline expiry alone
    /// does not set this — see [`CancelToken::deadline_exceeded`]).
    pub fn cancel_requested(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the token has a deadline and it has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.deadline.is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether work under this token should stop: explicitly cancelled or
    /// past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_requested() || self.deadline_exceeded()
    }

    /// The cooperative checkpoint: `Ok(())` while work may continue,
    /// [`PcorError::Cancelled`] once it must stop.
    ///
    /// # Errors
    /// [`PcorError::Cancelled`] when the token is cancelled or its
    /// deadline has passed.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(PcorError::Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancellation_trips_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.cancel_requested());
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(PcorError::Cancelled));
        // Idempotent.
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadlines_trip_without_an_explicit_cancel() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.deadline_exceeded());
        assert!(!token.cancel_requested());
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(PcorError::Cancelled));

        let future = CancelToken::deadline_after(Duration::from_secs(3600));
        assert!(!future.deadline_exceeded());
        assert!(future.deadline().is_some());
        assert!(future.check().is_ok());
    }

    #[test]
    fn tokens_without_deadlines_never_expire() {
        let token = CancelToken::default();
        assert!(token.deadline().is_none());
        assert!(!token.deadline_exceeded());
        assert!(token.check().is_ok());
    }
}
