//! Repeat-and-measure harness.
//!
//! The paper repeats every experiment 200 times and reports runtime spreads
//! and utility ratios against the reference file. This module provides the
//! shared machinery: finding records that actually are contextual outliers,
//! running one release while measuring it, and running repetitions.

use crate::coe::ReferenceFile;
use crate::session::ReleaseSession;
use crate::{release_context, PcorConfig, Result};
use pcor_data::{Context, Dataset};
use pcor_dp::{PopulationSizeUtility, Utility};
use pcor_outlier::OutlierDetector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A record confirmed to be a contextual outlier, together with a matching
/// starting context discovered for it.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierQuery {
    /// The record id of the outlier `V`.
    pub record_id: usize,
    /// A matching starting context `C_V`.
    pub starting_context: Context,
}

/// Searches for a record that is a contextual outlier under `detector`,
/// examining up to `max_candidates` uniformly random records.
///
/// Thin wrapper over [`ReleaseSession::find_outliers_with_rng`] with a
/// throwaway session; callers that go on to release against the discovered
/// record should hold their own session so the search's verification work is
/// reused.
///
/// # Errors
/// Returns [`crate::PcorError::NoMatchingContext`] when no candidate record
/// has a matching context within the per-record search budget.
pub fn find_random_outlier<R: Rng + ?Sized>(
    dataset: &Dataset,
    detector: &dyn OutlierDetector,
    max_candidates: usize,
    rng: &mut R,
) -> Result<OutlierQuery> {
    let utility = PopulationSizeUtility;
    let mut session = ReleaseSession::builder(dataset, detector, &utility).build();
    let mut found = session.find_outliers_with_rng(1, max_candidates, rng)?;
    Ok(found.remove(0))
}

/// Finds up to `count` distinct outlier records (used by the COE-match
/// experiments, which average over many random outliers).
///
/// One session is shared across all candidates, so a record drawn twice
/// replays its starting-context search from the memoized verifier.
///
/// # Errors
/// Returns [`crate::PcorError::NoMatchingContext`] if not a single outlier
/// could be found.
pub fn find_random_outliers<R: Rng + ?Sized>(
    dataset: &Dataset,
    detector: &dyn OutlierDetector,
    count: usize,
    max_candidates: usize,
    rng: &mut R,
) -> Result<Vec<OutlierQuery>> {
    let utility = PopulationSizeUtility;
    let mut session = ReleaseSession::builder(dataset, detector, &utility).build();
    session.find_outliers_with_rng(count, max_candidates, rng)
}

/// One measured PCOR release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Wall-clock runtime of the release.
    pub runtime: Duration,
    /// Raw utility of the released context.
    pub utility: f64,
    /// Utility normalized by the reference file's maximum (when available).
    pub utility_ratio: Option<f64>,
    /// Number of samples the algorithm collected.
    pub samples_collected: usize,
    /// Number of `f_M` verification calls performed.
    pub verification_calls: usize,
}

/// Runs one release and measures it, optionally normalizing utility against a
/// reference file.
///
/// # Errors
/// Propagates release errors.
pub fn run_once<R: Rng + ?Sized>(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    config: &PcorConfig,
    reference: Option<&ReferenceFile>,
    rng: &mut R,
) -> Result<RunMeasurement> {
    let result = release_context(dataset, outlier_id, detector, utility, config, rng)?;
    Ok(RunMeasurement {
        runtime: result.runtime,
        utility: result.utility,
        utility_ratio: reference.map(|r| r.utility_ratio(result.utility)),
        samples_collected: result.samples_collected,
        verification_calls: result.verification_calls,
    })
}

/// Runs `repetitions` independent releases (fresh verifier each time, like the
/// paper's repeated experiments) and collects the measurements.
///
/// # Errors
/// Propagates the first release error encountered.
#[allow(clippy::too_many_arguments)]
pub fn run_repeated<R: Rng + ?Sized>(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    config: &PcorConfig,
    reference: Option<&ReferenceFile>,
    repetitions: usize,
    rng: &mut R,
) -> Result<Vec<RunMeasurement>> {
    let mut out = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        out.push(run_once(dataset, outlier_id, detector, utility, config, reference, rng)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coe::enumerate_coe;
    use crate::verify::Verifier;
    use crate::{PcorError, SamplingAlgorithm};
    use pcor_data::{Attribute, Record, Schema};
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0), Record::new(vec![1, 2], 875.0)];
        for i in 0..90 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn finds_planted_outliers() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let q = find_random_outlier(&d, &detector, 400, &mut rng).unwrap();
        assert!(q.record_id == 0 || q.record_id == 1, "found {}", q.record_id);
        // The starting context really is matching.
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&d, &detector, &utility, q.record_id);
        assert!(verifier.is_matching(&q.starting_context).unwrap());
    }

    #[test]
    fn finds_multiple_distinct_outliers() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let qs = find_random_outliers(&d, &detector, 2, 2_000, &mut rng).unwrap();
        assert_eq!(qs.len(), 2);
        assert_ne!(qs[0].record_id, qs[1].record_id);
    }

    #[test]
    fn no_outlier_in_a_flat_dataset() {
        let schema = Schema::new(vec![Attribute::from_values("A", &["a0", "a1"])], "M").unwrap();
        let records = (0..40).map(|i| Record::new(vec![(i % 2) as u16], 10.0)).collect();
        let d = Dataset::new(schema, records).unwrap();
        let detector = ZScoreDetector::new(2.5);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(
            find_random_outlier(&d, &detector, 50, &mut rng),
            Err(PcorError::NoMatchingContext)
        );
        assert_eq!(
            find_random_outliers(&d, &detector, 3, 50, &mut rng),
            Err(PcorError::NoMatchingContext)
        );
        let empty = Dataset::new(
            Schema::new(vec![Attribute::from_values("A", &["a0"])], "M").unwrap(),
            vec![],
        )
        .unwrap();
        assert!(find_random_outlier(&empty, &detector, 10, &mut rng).is_err());
    }

    #[test]
    fn measurements_normalize_against_the_reference() {
        let d = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let reference = enumerate_coe(&d, 0, &detector, &utility, 22).unwrap();
        let config = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2).with_samples(10);
        let mut rng = ChaCha12Rng::seed_from_u64(17);
        let runs = run_repeated(&d, 0, &detector, &utility, &config, Some(&reference), 5, &mut rng)
            .unwrap();
        assert_eq!(runs.len(), 5);
        for run in &runs {
            let ratio = run.utility_ratio.unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");
            assert!(run.samples_collected >= 1);
            assert!(run.verification_calls >= 1);
            assert!(run.runtime > Duration::ZERO);
        }
        // Without a reference the ratio is absent.
        let run = run_once(&d, 0, &detector, &utility, &config, None, &mut rng).unwrap();
        assert!(run.utility_ratio.is_none());
    }
}
