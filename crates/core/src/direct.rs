//! Algorithm 1: the direct (formulaic) application of the Exponential
//! mechanism.
//!
//! Enumerate every context, keep the matching ones (`C_M = COE_M(D, V)`), and
//! draw the released context from `C_M` with the Exponential mechanism at
//! `ε₁ = ε/2`, which yields `(2ε₁) = ε` OCDP (Theorem 4.1). The computation is
//! `O(2^t)` (Theorem 4.2) — the paper measures three days on the 51 k-record
//! salary dataset — so this algorithm exists as the exact baseline the
//! sampling algorithms are compared against, and it refuses to run above a
//! configurable `t` limit.
//!
//! One safe optimization over the literal pseudocode: only contexts that cover
//! the queried record `V` are enumerated (`2^(t-m)` of them). A context that
//! does not cover `V` can never be matching, so skipping it cannot change the
//! output distribution.

use crate::select::mechanism_draw;
use crate::verify::Verifier;
use crate::{PcorConfig, PcorError, PcorResult, Result, SamplingAlgorithm};
use pcor_data::Context;
use rand::Rng;
use std::time::Duration;

/// Runs the direct approach (Algorithm 1).
///
/// # Errors
/// * [`PcorError::TooManyAttributeValues`] when `2^t` enumeration would be
///   intractable (`t` above the configured limit);
/// * [`PcorError::NoMatchingContext`] when the record is not a contextual
///   outlier;
/// * verification/mechanism errors otherwise.
pub fn run<R: Rng + ?Sized>(
    verifier: &mut Verifier<'_>,
    config: &PcorConfig,
    rng: &mut R,
) -> Result<PcorResult> {
    let t = verifier.dataset().schema().total_values();
    if t > config.enumeration_limit {
        return Err(PcorError::TooManyAttributeValues { t, limit: config.enumeration_limit });
    }
    let minimal = verifier.minimal_context()?;
    let free_bits: Vec<usize> = (0..t).filter(|&bit| !minimal.get(bit)).collect();

    // Enumerate every super-context of the minimal context (all contexts that
    // cover V) and keep the matching ones.
    let mut matching: Vec<Context> = Vec::new();
    let combinations: u64 = 1u64 << free_bits.len();
    for mask in 0..combinations {
        let mut context = minimal.clone();
        for (i, &bit) in free_bits.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                context.set(bit, true);
            }
        }
        if verifier.is_matching(&context)? {
            matching.push(context);
        }
    }
    if matching.is_empty() {
        return Err(PcorError::NoMatchingContext);
    }

    let mechanism = config.mechanism_kind();
    let guarantee = SamplingAlgorithm::Direct
        .guarantee(config.epsilon, config.samples)?
        .with_mechanism(mechanism);
    let (context, utility) =
        mechanism_draw(verifier, &matching, mechanism, guarantee.epsilon_per_invocation, rng)?;
    Ok(PcorResult {
        context,
        utility,
        samples_collected: matching.len(),
        verification_calls: 0,
        guarantee,
        runtime: Duration::ZERO,
        algorithm: SamplingAlgorithm::Direct,
        mechanism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::{Attribute, Dataset, Record, Schema};
    use pcor_dp::PopulationSizeUtility;
    use pcor_outlier::ZScoreDetector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1"]),
                Attribute::from_values("B", &["b0", "b1", "b2"]),
            ],
            "M",
        )
        .unwrap();
        let mut records = vec![Record::new(vec![0, 0], 950.0)];
        for i in 0..60 {
            records.push(Record::new(vec![(i % 2) as u16, (i % 3) as u16], 100.0 + (i % 9) as f64));
        }
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn direct_releases_a_matching_context() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Direct, 0.2);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!(verifier.is_matching(&result.context).unwrap());
        assert!(result.samples_collected > 0);
        assert!(result.utility > 0.0);
        assert!((result.guarantee.epsilon - 0.2).abs() < 1e-12);
        assert_eq!(result.guarantee.epsilon_per_invocation, 0.1);
    }

    #[test]
    fn direct_with_high_epsilon_finds_near_maximum_utility() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        // With a very large budget the Exponential mechanism concentrates on
        // the maximum-utility context; compare against exhaustive enumeration.
        let reference = crate::coe::enumerate_coe(&dataset, 0, &detector, &utility, 22).unwrap();
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Direct, 50.0);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let result = run(&mut verifier, &config, &mut rng).unwrap();
        assert!((result.utility - reference.max_utility).abs() < 1e-9);
    }

    #[test]
    fn direct_refuses_oversized_schemas() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 0);
        let config = PcorConfig::new(SamplingAlgorithm::Direct, 0.2).with_enumeration_limit(3);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert!(matches!(
            run(&mut verifier, &config, &mut rng),
            Err(PcorError::TooManyAttributeValues { t: 5, limit: 3 })
        ));
    }

    #[test]
    fn direct_fails_for_non_outliers() {
        let dataset = dataset();
        let detector = ZScoreDetector::new(2.5);
        let utility = PopulationSizeUtility;
        // Record 5 is a perfectly ordinary record.
        let mut verifier = Verifier::new(&dataset, &detector, &utility, 5);
        let config = PcorConfig::new(SamplingAlgorithm::Direct, 0.2);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(run(&mut verifier, &config, &mut rng), Err(PcorError::NoMatchingContext));
    }
}
