//! # pcor-core
//!
//! PCOR — **P**rivate **C**ontextual **O**utlier **R**elease — the primary
//! contribution of the SIGMOD 2021 paper by Shafieinejad, Kerschbaum and
//! Ilyas, reimplemented as a Rust library.
//!
//! Given a dataset `D`, a record `V` that is a contextual outlier, a
//! deterministic outlier detector (`pcor-outlier`) and a utility function of
//! sensitivity ≤ 1 (`pcor-dp`), PCOR releases a context `C` such that
//!
//! * `V` is an outlier in `D_C` (**validity**, Definition 3.2(a)),
//! * `C` is drawn by a differentially private mechanism satisfying Output
//!   Constrained DP with total budget `ε` (Definition 3.2(b)),
//! * `C` has high utility among all matching contexts (Definition 3.2(c)),
//! * and the computation runs in polynomial time for the sampling algorithms
//!   (Definition 3.2(d)).
//!
//! Five release algorithms are implemented, matching the paper's Algorithms
//! 1–5:
//!
//! | Module | Paper | Complexity | Budget split |
//! |--------|-------|------------|--------------|
//! | [`direct`] | Alg. 1 — direct Exponential mechanism over all contexts | `O(2^t)` | `ε₁ = ε/2` |
//! | [`uniform`] | Alg. 2 — uniform sampling of contexts | `O(2^t)` expected | `ε₁ = ε/2` |
//! | [`random_walk`] | Alg. 3 — random walk on the context graph | `O(n·t)` | `ε₁ = ε/2` |
//! | [`dfs`] | Alg. 4 — differentially private depth-first search | `O(n·t)` | `ε₁ = ε/(2n+2)` |
//! | [`bfs`] | Alg. 5 — differentially private breadth-first search | `O(n²·t)` | `ε₁ = ε/(2n+2)` |
//!
//! Supporting modules: [`session`] (the [`ReleaseSession`] engine binding a
//! dataset/detector/utility triple for many releases), [`verify`] (the
//! memoized outlier-verification function `f_M`), [`starting`] (discovering a
//! starting context `C_V`), [`coe`] (full `COE_M` enumeration / the reference
//! file used to normalize utility), [`privacy`] (the COE-match and
//! empirical-ratio experiments of Section 6.7) and [`runner`]
//! (repeat-and-measure harness used by `pcor-bench`).
//!
//! The table names the Exponential mechanism because the paper does, but
//! every private draw goes through the pluggable [`SelectionMechanism`]
//! API: a
//! [`MechanismKind`] on [`ReleaseSpec`]/[`ReleaseSessionBuilder`] swaps in
//! permute-and-flip or report-noisy-max at the same `ε₁`/`Δu`
//! parameterization (default `Exponential`, bit-identical to the paper's
//! engine for seeded runs).
//!
//! ## Quick start
//!
//! The recommended entry point is a [`ReleaseSession`]: bind the dataset,
//! detector and utility once, then release as often as the privacy budget
//! allows. Repeat releases share the memoized verifier, so they skip
//! verification work earlier releases already paid for.
//!
//! ```
//! use pcor_core::{ReleaseSession, ReleaseSpec, SamplingAlgorithm, SeedPolicy};
//! use pcor_data::generator::{salary_dataset, SalaryConfig};
//! use pcor_dp::PopulationSizeUtility;
//! use pcor_outlier::ZScoreDetector;
//!
//! let dataset = salary_dataset(&SalaryConfig::tiny()).unwrap();
//! let detector = ZScoreDetector::default();
//! let utility = PopulationSizeUtility;
//!
//! let mut session = ReleaseSession::builder(&dataset, &detector, &utility)
//!     .seed_policy(SeedPolicy::Derived { base: 7 })
//!     .build();
//!
//! // Pick a record that actually is a contextual outlier.
//! let outlier = session.find_outliers(1, 200).unwrap().remove(0);
//!
//! let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(20);
//! let result = session.release(outlier.record_id, &spec).unwrap();
//! println!("released: {}", result.context.to_predicate_string(dataset.schema()));
//! assert!(result.guarantee.epsilon <= 0.2 + 1e-12);
//! ```
//!
//! The one-shot [`release_context`] free function remains available and is a
//! thin wrapper over a single-release session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cancel;
pub mod coe;
pub mod dfs;
pub mod direct;
pub mod privacy;
pub mod random_walk;
pub mod runner;
pub mod select;
pub mod session;
pub mod starting;
pub mod uniform;
pub mod verify;

pub use cancel::CancelToken;
pub use coe::{enumerate_coe, enumerate_coe_on, enumerate_coe_with, ReferenceEntry, ReferenceFile};
pub use pcor_dp::{MechanismKind, MechanismTally, SelectionMechanism};
pub use runner::find_random_outlier;
pub use session::{ReleaseSession, ReleaseSessionBuilder, ReleaseSpec, SeedPolicy, SessionStats};
pub use verify::{Evaluation, Verifier};

use pcor_data::{Context, Dataset};
use pcor_dp::budget::OcdpGuarantee;
use pcor_dp::Utility;
use pcor_outlier::OutlierDetector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The historical name of [`ReleaseSpec`], kept as an alias so existing
/// call sites keep compiling.
pub type PcorConfig = ReleaseSpec;

/// Errors produced by the PCOR core.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new error conditions can be added without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PcorError {
    /// The queried record has no matching context at all (it is not a
    /// contextual outlier for the chosen detector).
    NoMatchingContext,
    /// No starting context could be found within the search budget.
    NoStartingContext,
    /// The sampling procedure collected zero matching contexts (e.g. uniform
    /// sampling exhausted its attempt budget).
    NoSamples,
    /// Exhaustive enumeration was requested for a schema too large to
    /// enumerate (`2^t` contexts).
    TooManyAttributeValues {
        /// The schema's total number of attribute values.
        t: usize,
        /// The configured enumeration limit.
        limit: usize,
    },
    /// An invalid configuration value.
    InvalidConfig(String),
    /// An error from the data substrate.
    Data(String),
    /// An error from the privacy substrate.
    Dp(pcor_dp::DpError),
    /// The release was cooperatively cancelled (explicit cancel or an
    /// expired deadline on its [`CancelToken`]). No private draw was
    /// published; the caller may refund the release's reserved budget.
    Cancelled,
}

impl std::fmt::Display for PcorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcorError::NoMatchingContext => {
                write!(f, "the queried record is not an outlier in any context")
            }
            PcorError::NoStartingContext => write!(f, "no starting context found"),
            PcorError::NoSamples => write!(f, "sampling produced no matching contexts"),
            PcorError::TooManyAttributeValues { t, limit } => write!(
                f,
                "schema has {t} attribute values; exhaustive enumeration is limited to {limit}"
            ),
            PcorError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PcorError::Data(msg) => write!(f, "data error: {msg}"),
            PcorError::Dp(e) => write!(f, "privacy error: {e}"),
            PcorError::Cancelled => write!(f, "the release was cancelled before completion"),
        }
    }
}

impl std::error::Error for PcorError {}

impl From<pcor_data::DataError> for PcorError {
    fn from(e: pcor_data::DataError) -> Self {
        PcorError::Data(e.to_string())
    }
}

impl From<pcor_dp::DpError> for PcorError {
    fn from(e: pcor_dp::DpError) -> Self {
        match e {
            pcor_dp::DpError::NoValidCandidates => PcorError::NoSamples,
            other => PcorError::Dp(other),
        }
    }
}

/// Convenience result alias for the PCOR core.
pub type Result<T> = std::result::Result<T, PcorError>;

/// The five release algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingAlgorithm {
    /// Algorithm 1: direct Exponential mechanism over every context (`O(2^t)`).
    Direct,
    /// Algorithm 2: uniform sampling of contexts until `n` matches are found.
    Uniform,
    /// Algorithm 3: random walk over the context graph.
    RandomWalk,
    /// Algorithm 4: differentially private depth-first search.
    Dfs,
    /// Algorithm 5: differentially private breadth-first search (the paper's
    /// final choice).
    Bfs,
}

impl SamplingAlgorithm {
    /// All algorithms, in the order the paper introduces them.
    pub fn all() -> [SamplingAlgorithm; 5] {
        [
            SamplingAlgorithm::Direct,
            SamplingAlgorithm::Uniform,
            SamplingAlgorithm::RandomWalk,
            SamplingAlgorithm::Dfs,
            SamplingAlgorithm::Bfs,
        ]
    }

    /// The four sampling-based algorithms compared in Tables 2–3.
    pub fn sampling_algorithms() -> [SamplingAlgorithm; 4] {
        [
            SamplingAlgorithm::Uniform,
            SamplingAlgorithm::RandomWalk,
            SamplingAlgorithm::Dfs,
            SamplingAlgorithm::Bfs,
        ]
    }

    /// Whether the algorithm splits the budget per expansion step
    /// (`ε₁ = ε/(2n+2)`) rather than spending it in a single draw.
    pub fn uses_per_step_budget(&self) -> bool {
        matches!(self, SamplingAlgorithm::Dfs | SamplingAlgorithm::Bfs)
    }

    /// Whether the algorithm seeds its search from a starting context `C_V`
    /// (the graph-based samplers do; Direct and Uniform enumerate/sample the
    /// context space without one).
    pub fn needs_starting_context(&self) -> bool {
        matches!(
            self,
            SamplingAlgorithm::RandomWalk | SamplingAlgorithm::Dfs | SamplingAlgorithm::Bfs
        )
    }

    /// The OCDP guarantee this algorithm provides for a total budget
    /// `epsilon` and `samples` collected samples.
    ///
    /// # Errors
    /// Propagates invalid-parameter errors from the budget module.
    pub fn guarantee(&self, epsilon: f64, samples: usize) -> Result<OcdpGuarantee> {
        let g = if self.uses_per_step_budget() {
            OcdpGuarantee::graph_search(epsilon, samples)
        } else {
            OcdpGuarantee::single_draw(epsilon)
        }?;
        Ok(g)
    }
}

impl std::fmt::Display for SamplingAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SamplingAlgorithm::Direct => "Direct",
            SamplingAlgorithm::Uniform => "Uniform",
            SamplingAlgorithm::RandomWalk => "RandomWalk",
            SamplingAlgorithm::Dfs => "DFS",
            SamplingAlgorithm::Bfs => "BFS",
        };
        write!(f, "{name}")
    }
}

/// The outcome of a PCOR release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcorResult {
    /// The privately released context (always a matching context for `V`).
    pub context: Context,
    /// The utility score of the released context (e.g. its population size).
    pub utility: f64,
    /// Number of matching contexts the algorithm sampled before the final
    /// draw (`|C_M|` / `|Visited|`).
    pub samples_collected: usize,
    /// Number of outlier-verification calls (`f_M` evaluations) performed.
    pub verification_calls: usize,
    /// The OCDP guarantee of the release.
    pub guarantee: OcdpGuarantee,
    /// Wall-clock time of the release.
    pub runtime: Duration,
    /// The algorithm that produced the release.
    pub algorithm: SamplingAlgorithm,
    /// The DP selection mechanism every private draw went through.
    pub mechanism: MechanismKind,
}

/// Runs one one-shot PCOR release: given the dataset, the outlier record id,
/// a detector, a utility function and a spec, returns a privately selected
/// matching context.
///
/// This is a thin wrapper over a single-release [`ReleaseSession`]; callers
/// issuing more than one release against the same dataset/detector pair
/// should hold a session instead and let repeats share the memoized
/// verifier.
///
/// # Errors
/// * [`PcorError::NoMatchingContext`] / [`PcorError::NoStartingContext`] when
///   the record is not a contextual outlier;
/// * [`PcorError::NoSamples`] when sampling found no matching context;
/// * [`PcorError::TooManyAttributeValues`] when `Direct` is requested on a
///   schema above the enumeration limit;
/// * [`PcorError::InvalidConfig`] for invalid parameters.
pub fn release_context<R: Rng + ?Sized>(
    dataset: &Dataset,
    outlier_id: usize,
    detector: &dyn OutlierDetector,
    utility: &dyn Utility,
    config: &ReleaseSpec,
    rng: &mut R,
) -> Result<PcorResult> {
    let mut session = ReleaseSession::builder(dataset, detector, utility).build();
    session.release_with_rng(outlier_id, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_data::Context;

    #[test]
    fn config_defaults_and_builders() {
        let cfg = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2);
        assert_eq!(cfg.samples, 50);
        assert!(cfg.validate().is_ok());
        let cfg = cfg
            .with_samples(10)
            .with_max_attempts(99)
            .with_enumeration_limit(16)
            .with_starting_context(Context::empty(4));
        assert_eq!(cfg.samples, 10);
        assert_eq!(cfg.max_attempts, 99);
        assert_eq!(cfg.enumeration_limit, 16);
        assert!(cfg.starting_context.is_some());
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(PcorConfig::new(SamplingAlgorithm::Bfs, 0.0).validate().is_err());
        assert!(PcorConfig::new(SamplingAlgorithm::Bfs, -1.0).validate().is_err());
        assert!(PcorConfig::new(SamplingAlgorithm::Bfs, 0.2).with_samples(0).validate().is_err());
    }

    #[test]
    fn algorithm_budget_split_matches_theorems() {
        let bfs = SamplingAlgorithm::Bfs.guarantee(0.2, 50).unwrap();
        assert!((bfs.epsilon_per_invocation - 0.2 / 102.0).abs() < 1e-12);
        let walk = SamplingAlgorithm::RandomWalk.guarantee(0.2, 50).unwrap();
        assert_eq!(walk.epsilon_per_invocation, 0.1);
        assert!(SamplingAlgorithm::Bfs.uses_per_step_budget());
        assert!(SamplingAlgorithm::Dfs.uses_per_step_budget());
        assert!(!SamplingAlgorithm::Direct.uses_per_step_budget());
        assert!(!SamplingAlgorithm::Uniform.uses_per_step_budget());
        assert!(!SamplingAlgorithm::RandomWalk.uses_per_step_budget());
    }

    #[test]
    fn algorithm_lists_and_display() {
        assert_eq!(SamplingAlgorithm::all().len(), 5);
        assert_eq!(SamplingAlgorithm::sampling_algorithms().len(), 4);
        assert_eq!(SamplingAlgorithm::Bfs.to_string(), "BFS");
        assert_eq!(SamplingAlgorithm::RandomWalk.to_string(), "RandomWalk");
    }

    #[test]
    fn errors_display_and_convert() {
        assert!(PcorError::NoMatchingContext.to_string().contains("not an outlier"));
        assert!(PcorError::TooManyAttributeValues { t: 30, limit: 22 }.to_string().contains("30"));
        let from_dp: PcorError = pcor_dp::DpError::NoValidCandidates.into();
        assert_eq!(from_dp, PcorError::NoSamples);
        let from_dp: PcorError = pcor_dp::DpError::InvalidEpsilon(-1.0).into();
        assert!(matches!(from_dp, PcorError::Dp(_)));
        let from_data: PcorError = pcor_data::DataError::EmptySchema.into();
        assert!(matches!(from_data, PcorError::Data(_)));
    }
}
