//! Deterministic fault injection for the PCOR serving stack.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and real failures — transient disk errors, fsync stalls, slow
//! workers, stuck parks, skewed clocks — are exactly the ones that refuse
//! to show up on demand. This crate makes them show up on demand, twice:
//!
//! 1. **Seeded mode** ([`FaultPlan::seeded`]): probabilistic rules decide
//!    per *(site, hit-count)* whether to fire, driven by a splitmix64 hash
//!    of `(seed, site, hit)`. The decision depends only on those three
//!    values — never on wall-clock time or thread scheduling — so a given
//!    seed fires the same faults at the same site hits on every run that
//!    performs the same operations.
//! 2. **Scripted mode** ([`FaultPlan::scripted`]): an explicit schedule of
//!    `(site, hit, kind)` entries, typically recorded from a seeded run
//!    via [`Faults::schedule`] and serialized with [`encode_schedule`].
//!    Replaying a recorded schedule is byte-reproducible: running the same
//!    workload under the parsed schedule fires the identical faults, and
//!    re-encoding what fired yields the identical bytes.
//!
//! Production code holds a [`Faults`] handle (cheap to clone; the
//! [`Faults::disabled`] default is a `None` and costs one branch per
//! seam). Seams call [`Faults::io`] where an injected failure surfaces as
//! an `io::Error` (WAL writes and fsyncs) and [`Faults::hit`] where it
//! cannot (pool task start/park, service admission): there, latency and
//! stalls sleep, panics panic, and clock skew accumulates into
//! [`Faults::skew`] for the deadline layer to consume.
//!
//! The crate is dependency-free by design: it sits below `pcor-wal` and
//! `pcor-runtime`, the two crates that otherwise depend on nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Injection-site names, one per seam the serving stack exposes.
///
/// Sites are plain strings so chaos drivers can target them from recorded
/// schedules; these constants are the ones the first-party crates wire up.
pub mod site {
    /// A WAL record write (`pcor-wal`, before the frame hits the file).
    pub const WAL_APPEND: &str = "wal.append";
    /// A WAL fsync (`pcor-wal`, before `sync_data`).
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// A pool task about to execute (`pcor-runtime`, inside the panic
    /// isolation boundary).
    pub const POOL_TASK_START: &str = "pool.task_start";
    /// A worker about to park on the idle condvar (`pcor-runtime`).
    pub const POOL_PARK: &str = "pool.park";
    /// A release about to run on the serving path (`pcor-service`).
    pub const SERVICE_RELEASE: &str = "service.release";
    /// A socket accept on the reactor (`pcor-net`).
    pub const NET_ACCEPT: &str = "net.accept";
    /// A socket read on the reactor (`pcor-net`).
    pub const NET_READ: &str = "net.read";
    /// A socket write on the reactor (`pcor-net`).
    pub const NET_WRITE: &str = "net.write";
}

/// What an injected fault does at its seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with an injected `io::Error` (WAL seams) or be
    /// ignored (non-IO seams).
    IoError,
    /// Sleep for the given duration before the fsync proceeds.
    FsyncStall(Duration),
    /// Sleep for the given duration before the operation proceeds.
    Latency(Duration),
    /// Panic at the seam (pool seams isolate it like any worker panic).
    Panic,
    /// Advance the injected clock skew by the given amount; deadlines
    /// computed against [`Faults::skew`] fire that much earlier.
    ClockSkew(Duration),
    /// Cap the next socket read/write at this many bytes (a short I/O —
    /// the kernel-level partial transfer every robust reactor must absorb).
    ShortIo(usize),
    /// Abort the operation as if the peer reset the connection
    /// (`ECONNRESET` mid-frame).
    Reset,
}

impl FaultKind {
    fn encode(&self) -> String {
        match self {
            FaultKind::IoError => "io-error".to_string(),
            FaultKind::FsyncStall(d) => format!("stall:{}us", d.as_micros()),
            FaultKind::Latency(d) => format!("latency:{}us", d.as_micros()),
            FaultKind::Panic => "panic".to_string(),
            FaultKind::ClockSkew(d) => format!("skew:{}us", d.as_micros()),
            FaultKind::ShortIo(cap) => format!("short:{cap}b"),
            FaultKind::Reset => "reset".to_string(),
        }
    }

    fn parse(text: &str) -> Result<Self, ScheduleParseError> {
        let parse_us = |payload: &str| -> Result<Duration, ScheduleParseError> {
            let digits = payload.strip_suffix("us").ok_or_else(|| ScheduleParseError {
                line: payload.to_string(),
                reason: "expected a `<micros>us` duration".to_string(),
            })?;
            let micros: u64 = digits.parse().map_err(|_| ScheduleParseError {
                line: payload.to_string(),
                reason: "duration is not an integer".to_string(),
            })?;
            Ok(Duration::from_micros(micros))
        };
        match text {
            "io-error" => Ok(FaultKind::IoError),
            "panic" => Ok(FaultKind::Panic),
            "reset" => Ok(FaultKind::Reset),
            other => {
                if let Some(payload) = other.strip_prefix("stall:") {
                    Ok(FaultKind::FsyncStall(parse_us(payload)?))
                } else if let Some(payload) = other.strip_prefix("latency:") {
                    Ok(FaultKind::Latency(parse_us(payload)?))
                } else if let Some(payload) = other.strip_prefix("skew:") {
                    Ok(FaultKind::ClockSkew(parse_us(payload)?))
                } else if let Some(payload) = other.strip_prefix("short:") {
                    let digits = payload.strip_suffix('b').ok_or_else(|| ScheduleParseError {
                        line: payload.to_string(),
                        reason: "expected a `<bytes>b` cap".to_string(),
                    })?;
                    let cap: usize = digits.parse().map_err(|_| ScheduleParseError {
                        line: payload.to_string(),
                        reason: "byte cap is not an integer".to_string(),
                    })?;
                    Ok(FaultKind::ShortIo(cap))
                } else {
                    Err(ScheduleParseError {
                        line: other.to_string(),
                        reason: "unknown fault kind".to_string(),
                    })
                }
            }
        }
    }
}

/// One fault that fired (or is scheduled to fire): `kind` at the `hit`-th
/// traversal of `site` (hits count from 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// The injection site (see [`site`]).
    pub site: String,
    /// The 1-based hit count at that site.
    pub hit: u64,
    /// What fires.
    pub kind: FaultKind,
}

/// A malformed line in an encoded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// The offending input.
    pub line: String,
    /// Why it was refused.
    pub reason: String,
}

impl std::fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad schedule line {:?}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ScheduleParseError {}

/// Serializes a schedule as one `site@hit=kind` line per fault — the
/// recorded artifact a chaos test commits and replays.
pub fn encode_schedule(schedule: &[ScheduledFault]) -> String {
    let mut out = String::new();
    for fault in schedule {
        out.push_str(&format!("{}@{}={}\n", fault.site, fault.hit, fault.kind.encode()));
    }
    out
}

/// Parses [`encode_schedule`]'s format. Blank lines and `#` comments are
/// ignored.
///
/// # Errors
/// Returns [`ScheduleParseError`] on any line that is not
/// `site@hit=kind`.
pub fn parse_schedule(text: &str) -> Result<Vec<ScheduledFault>, ScheduleParseError> {
    let mut schedule = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ScheduleParseError {
            line: line.to_string(),
            reason: reason.to_string(),
        };
        let (head, kind) = line.split_once('=').ok_or_else(|| bad("missing `=`"))?;
        let (site, hit) = head.split_once('@').ok_or_else(|| bad("missing `@`"))?;
        if site.is_empty() {
            return Err(bad("empty site"));
        }
        let hit: u64 = hit.parse().map_err(|_| bad("hit is not an integer"))?;
        if hit == 0 {
            return Err(bad("hits count from 1"));
        }
        schedule.push(ScheduledFault {
            site: site.to_string(),
            hit,
            kind: FaultKind::parse(kind)?,
        });
    }
    Ok(schedule)
}

/// One probabilistic rule of a seeded plan.
#[derive(Debug, Clone)]
struct FaultRule {
    site: String,
    kind: FaultKind,
    probability: f64,
}

/// A fault plan under construction: either seeded probabilistic rules, a
/// scripted schedule, or both (script entries win on collision).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    script: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan whose probabilistic rules are driven by `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new(), script: Vec::new() }
    }

    /// A plan that fires exactly `schedule` — usually a recorded run
    /// parsed back with [`parse_schedule`].
    pub fn scripted(schedule: Vec<ScheduledFault>) -> Self {
        FaultPlan { seed: 0, rules: Vec::new(), script: schedule }
    }

    /// Adds a probabilistic rule: at every hit of `site`, fire `kind` with
    /// `probability` (clamped to `[0, 1]`). Rules are consulted in
    /// insertion order; the first that fires wins the hit.
    pub fn rule(mut self, site: &str, kind: FaultKind, probability: f64) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            kind,
            probability: probability.clamp(0.0, 1.0),
        });
        self
    }

    /// Adds one scripted entry on top of the seeded rules.
    pub fn at(mut self, site: &str, hit: u64, kind: FaultKind) -> Self {
        self.script.push(ScheduledFault { site: site.to_string(), hit, kind });
        self
    }

    /// Builds the shareable handle the seams consume.
    pub fn build(self) -> Faults {
        let mut script: HashMap<(String, u64), FaultKind> = HashMap::new();
        for entry in self.script {
            script.insert((entry.site, entry.hit), entry.kind);
        }
        Faults {
            inner: Some(Arc::new(Inner {
                seed: self.seed,
                rules: self.rules,
                script,
                state: Mutex::new(State::default()),
            })),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    hits: HashMap<String, u64>,
    fired: Vec<ScheduledFault>,
    skew: Duration,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    rules: Vec<FaultRule>,
    script: HashMap<(String, u64), FaultKind>,
    state: Mutex<State>,
}

/// How an injected fault alters the next socket I/O — the verdict
/// [`Faults::socket`] hands the reactor's read/write seams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Fail the I/O with an injected `io::Error` (the connection closes).
    Error,
    /// Fail the I/O as if the peer sent `RST` (`ECONNRESET`).
    Reset,
    /// Let at most this many bytes through on this call (a short I/O).
    Short(usize),
}

/// The handle production code threads through its seams. Cloning shares
/// the plan, the hit counters, and the recorded schedule.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    inner: Option<Arc<Inner>>,
}

impl Faults {
    /// The no-op handle every production default uses: one `None` branch
    /// per seam, no allocation, nothing ever fires.
    pub fn disabled() -> Self {
        Faults { inner: None }
    }

    /// Whether a plan is attached at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Passes an IO seam: returns the injected error on [`FaultKind::IoError`],
    /// sleeps on stalls and latency, panics on [`FaultKind::Panic`], and
    /// accumulates [`FaultKind::ClockSkew`]. `Ok(())` when nothing fires.
    ///
    /// # Errors
    /// The injected `io::Error` (kind `Other`, message naming the site).
    pub fn io(&self, site: &str) -> std::io::Result<()> {
        match self.fire(site) {
            Some(FaultKind::IoError) => {
                Err(std::io::Error::other(format!("injected fault at {site}")))
            }
            Some(FaultKind::Reset) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected reset at {site}"),
            )),
            _ => Ok(()),
        }
    }

    /// Passes a socket seam: returns how the reactor must alter the next
    /// I/O on this connection, `None` when nothing fires. Latency and
    /// stalls sleep in place (a stalled event loop is exactly the failure
    /// being simulated), panics panic, and clock skew accumulates — only
    /// the byte-level kinds surface as a verdict.
    pub fn socket(&self, site: &str) -> Option<SocketFault> {
        match self.fire(site) {
            Some(FaultKind::IoError) => Some(SocketFault::Error),
            Some(FaultKind::Reset) => Some(SocketFault::Reset),
            Some(FaultKind::ShortIo(cap)) => Some(SocketFault::Short(cap)),
            _ => None,
        }
    }

    /// Passes a non-IO seam: identical to [`Faults::io`] except that an
    /// injected [`FaultKind::IoError`] has no channel to surface through
    /// and is recorded but otherwise ignored.
    pub fn hit(&self, site: &str) {
        let _ = self.fire(site);
    }

    /// The accumulated injected clock skew. Deadline layers subtract this
    /// from their budgets so a skewed clock makes deadlines fire early —
    /// the conservative direction.
    pub fn skew(&self) -> Duration {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("fault state poisoned").skew,
            None => Duration::ZERO,
        }
    }

    /// Every fault fired so far, in firing order — the recorded schedule
    /// [`encode_schedule`] serializes and [`FaultPlan::scripted`] replays.
    pub fn schedule(&self) -> Vec<ScheduledFault> {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("fault state poisoned").fired.clone(),
            None => Vec::new(),
        }
    }

    /// Total hits recorded at `site` (1-based; 0 when never traversed).
    pub fn hits(&self, site: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .expect("fault state poisoned")
                .hits
                .get(site)
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Decides and applies the side effects that must happen under the
    /// state lock (recording, skew); sleeping and panicking happen after
    /// the lock is released.
    fn fire(&self, site: &str) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let kind = {
            let mut state = inner.state.lock().expect("fault state poisoned");
            let hit = state.hits.entry(site.to_string()).or_insert(0);
            *hit += 1;
            let hit = *hit;
            let kind = inner.decide(site, hit)?;
            state.fired.push(ScheduledFault { site: site.to_string(), hit, kind });
            if let FaultKind::ClockSkew(d) = kind {
                state.skew += d;
            }
            kind
        };
        match kind {
            FaultKind::FsyncStall(d) | FaultKind::Latency(d) => std::thread::sleep(d),
            FaultKind::Panic => panic!("injected panic at {site}"),
            _ => {}
        }
        Some(kind)
    }
}

impl Inner {
    fn decide(&self, site: &str, hit: u64) -> Option<FaultKind> {
        if let Some(kind) = self.script.get(&(site.to_string(), hit)) {
            return Some(*kind);
        }
        for (index, rule) in self.rules.iter().enumerate() {
            if rule.site != site || rule.probability <= 0.0 {
                continue;
            }
            // Deterministic in (seed, site, hit, rule index) only: no
            // clocks, no thread identity, no global state.
            let draw = unit_float(splitmix64(
                self.seed
                    ^ fnv1a(site.as_bytes())
                    ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            ));
            if draw < rule.probability {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// SplitMix64: the statelessly-seedable mixer the workspace standardizes
/// on for deterministic derived randomness.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, folding a site name into the splitmix input.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn unit_float(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let faults = Faults::disabled();
        assert!(!faults.enabled());
        assert!(faults.io(site::WAL_APPEND).is_ok());
        faults.hit(site::POOL_PARK);
        assert_eq!(faults.skew(), Duration::ZERO);
        assert!(faults.schedule().is_empty());
        assert_eq!(faults.hits(site::WAL_APPEND), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_per_site_and_hit() {
        let run = |seed: u64| {
            let faults =
                FaultPlan::seeded(seed).rule(site::WAL_APPEND, FaultKind::IoError, 0.25).build();
            let outcomes: Vec<bool> =
                (0..64).map(|_| faults.io(site::WAL_APPEND).is_err()).collect();
            (outcomes, faults.schedule())
        };
        let (a_outcomes, a_schedule) = run(7);
        let (b_outcomes, b_schedule) = run(7);
        assert_eq!(a_outcomes, b_outcomes, "same seed must fire identically");
        assert_eq!(a_schedule, b_schedule);
        assert!(a_outcomes.iter().any(|&fired| fired), "p=0.25 over 64 hits must fire");
        assert!(!a_outcomes.iter().all(|&fired| fired), "p=0.25 must not always fire");
        let (c_outcomes, _) = run(8);
        assert_ne!(a_outcomes, c_outcomes, "different seeds must differ");
    }

    #[test]
    fn recorded_schedules_replay_byte_reproducibly() {
        let seeded = FaultPlan::seeded(42)
            .rule(site::WAL_APPEND, FaultKind::IoError, 0.3)
            .rule(site::WAL_FSYNC, FaultKind::FsyncStall(Duration::from_micros(50)), 0.2)
            .build();
        for _ in 0..40 {
            let _ = seeded.io(site::WAL_APPEND);
            let _ = seeded.io(site::WAL_FSYNC);
        }
        let recorded = seeded.schedule();
        assert!(!recorded.is_empty());
        let encoded = encode_schedule(&recorded);

        // Parse → replay the same workload → identical bytes out.
        let replayed = FaultPlan::scripted(parse_schedule(&encoded).unwrap()).build();
        for _ in 0..40 {
            let _ = replayed.io(site::WAL_APPEND);
            let _ = replayed.io(site::WAL_FSYNC);
        }
        assert_eq!(replayed.schedule(), recorded);
        assert_eq!(encode_schedule(&replayed.schedule()), encoded);
    }

    #[test]
    fn scripted_entries_fire_at_their_exact_hit() {
        let faults = FaultPlan::seeded(0).at(site::WAL_APPEND, 3, FaultKind::IoError).build();
        assert!(faults.io(site::WAL_APPEND).is_ok());
        assert!(faults.io(site::WAL_APPEND).is_ok());
        assert!(faults.io(site::WAL_APPEND).is_err());
        assert!(faults.io(site::WAL_APPEND).is_ok());
        assert_eq!(faults.hits(site::WAL_APPEND), 4);
    }

    #[test]
    fn clock_skew_accumulates() {
        let faults = FaultPlan::seeded(0)
            .at(site::SERVICE_RELEASE, 1, FaultKind::ClockSkew(Duration::from_millis(2)))
            .at(site::SERVICE_RELEASE, 2, FaultKind::ClockSkew(Duration::from_millis(3)))
            .build();
        faults.hit(site::SERVICE_RELEASE);
        assert_eq!(faults.skew(), Duration::from_millis(2));
        faults.hit(site::SERVICE_RELEASE);
        assert_eq!(faults.skew(), Duration::from_millis(5));
    }

    #[test]
    fn injected_panics_panic_and_are_recorded_first() {
        let faults = FaultPlan::seeded(0).at(site::POOL_TASK_START, 1, FaultKind::Panic).build();
        let observer = faults.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            observer.hit(site::POOL_TASK_START);
        }));
        assert!(outcome.is_err(), "the injected panic must unwind");
        let schedule = faults.schedule();
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule[0].kind, FaultKind::Panic);
    }

    #[test]
    fn schedule_round_trip_covers_every_kind() {
        let schedule = vec![
            ScheduledFault { site: "wal.append".into(), hit: 1, kind: FaultKind::IoError },
            ScheduledFault {
                site: "wal.fsync".into(),
                hit: 2,
                kind: FaultKind::FsyncStall(Duration::from_micros(1500)),
            },
            ScheduledFault {
                site: "pool.task_start".into(),
                hit: 9,
                kind: FaultKind::Latency(Duration::from_millis(3)),
            },
            ScheduledFault { site: "pool.park".into(), hit: 4, kind: FaultKind::Panic },
            ScheduledFault {
                site: "service.release".into(),
                hit: 7,
                kind: FaultKind::ClockSkew(Duration::from_millis(10)),
            },
            ScheduledFault { site: "net.read".into(), hit: 2, kind: FaultKind::ShortIo(3) },
            ScheduledFault { site: "net.write".into(), hit: 5, kind: FaultKind::Reset },
        ];
        let encoded = encode_schedule(&schedule);
        assert_eq!(parse_schedule(&encoded).unwrap(), schedule);
        // Comments and blank lines are tolerated.
        let annotated = format!("# recorded chaos run\n\n{encoded}");
        assert_eq!(parse_schedule(&annotated).unwrap(), schedule);
    }

    #[test]
    fn malformed_schedules_are_refused() {
        for bad in [
            "nonsense",
            "site@x=panic",
            "site@0=panic",
            "@1=panic",
            "site@1=warp:3us",
            "site@1=short:3",
            "site@1=short:xb",
        ] {
            assert!(parse_schedule(bad).is_err(), "{bad:?} must be refused");
        }
    }

    #[test]
    fn socket_seams_surface_byte_level_verdicts() {
        let faults = FaultPlan::seeded(0)
            .at(site::NET_READ, 1, FaultKind::ShortIo(4))
            .at(site::NET_READ, 2, FaultKind::Reset)
            .at(site::NET_WRITE, 1, FaultKind::IoError)
            .build();
        assert_eq!(faults.socket(site::NET_READ), Some(SocketFault::Short(4)));
        assert_eq!(faults.socket(site::NET_READ), Some(SocketFault::Reset));
        assert_eq!(faults.socket(site::NET_READ), None);
        assert_eq!(faults.socket(site::NET_WRITE), Some(SocketFault::Error));
        // The IO seam maps a reset to ECONNRESET.
        let reset = FaultPlan::seeded(0).at(site::NET_WRITE, 1, FaultKind::Reset).build();
        let err = reset.io(site::NET_WRITE).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }
}
