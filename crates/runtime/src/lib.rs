//! # pcor-runtime
//!
//! A persistent, hand-rolled work-stealing thread pool — the shared
//! execution layer under the PCOR workspace (vendored-offline: no external
//! crates, so this is a from-scratch `std`-only implementation in the
//! spirit of rayon/crossbeam rather than a wrapper around them).
//!
//! Why it exists: the paper's end-to-end latency is dominated by repeated
//! `f_M` verification, and the incremental engine's *sharded* fused
//! AND/popcount pass used to spawn fresh `std::thread::scope` workers per
//! pass. Spawning costs tens of microseconds, so sharding could only engage
//! beyond ~4 M records, and the serving layer additionally parked one OS
//! thread per worker. A single resident pool amortizes worker startup to
//! zero per task, which moves the shard break-even orders of magnitude
//! lower (see the `pool-breakeven` experiment in `pcor-bench`) and lets one
//! set of threads serve *both* intra-release sharding and inter-release
//! concurrency.
//!
//! The pieces:
//!
//! * [`ThreadPool`] — resident workers with one deque per worker plus a
//!   global injector. Workers pop their own deque LIFO, drain the injector
//!   FIFO, then steal from scope queues and sibling deques; idle workers
//!   park on a condvar and are unparked by submissions.
//! * [`JoinHandle`] — a panic-isolating completion handle for
//!   [`ThreadPool::spawn`]: a panicking task resolves the handle with
//!   [`JoinError::Panicked`] instead of taking the worker thread (or the
//!   process) down.
//! * [`Scope`] — `std::thread::scope`-style structured fork-join for
//!   borrowed data via [`ThreadPool::scope`]. The scope's tasks live in a
//!   scope-owned queue that participates in work stealing, and the waiting
//!   caller *helps execute* its own tasks instead of blocking. That makes
//!   nested fork-join from inside a pool task deadlock-free (the worker
//!   running the outer task executes the inner tasks itself when no sibling
//!   is free) and makes the scope useful even on a machine where the pool
//!   has a single worker — or after [`ThreadPool::shutdown`] — where it
//!   degenerates to an inline serial loop with sub-microsecond overhead.
//! * [`PoolStats`] — counters (submitted/executed/stolen/panicked, queue
//!   depth gauge) surfaced by the serving layer's metrics endpoint.
//!
//! ```
//! use pcor_runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! // Fire-and-join tasks with panic isolation.
//! let handle = pool.spawn(|| 6 * 7);
//! assert_eq!(handle.join().unwrap(), 42);
//! // Structured fork-join over borrowed data.
//! let mut halves = [0u64; 2];
//! let data: Vec<u64> = (0..100).collect();
//! pool.scope(|scope| {
//!     let (lo, hi) = halves.split_at_mut(1);
//!     let (a, b) = data.split_at(50);
//!     scope.spawn(|| lo[0] = a.iter().sum());
//!     scope.spawn(|| hi[0] = b.iter().sum());
//! });
//! assert_eq!(halves[0] + halves[1], 4950);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;
mod scope;
mod stats;
mod task;

pub use pool::ThreadPool;
pub use scope::Scope;
pub use stats::PoolStats;
pub use task::{JoinError, JoinHandle};
