//! Panic-isolating completion handles for spawned tasks.

use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};

/// Why a [`JoinHandle`] resolved without a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The task panicked; the payload's message is preserved. The worker
    /// thread that ran the task survived and keeps serving the pool.
    Panicked(String),
    /// The pool was shut down before the task could run.
    Shutdown,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            JoinError::Shutdown => write!(f, "pool shut down before the task ran"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Renders a panic payload as text (the two shapes `panic!` produces).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum SlotState<T> {
    Pending,
    Finished(Result<T, JoinError>),
    Taken,
}

/// The one-shot rendezvous between a task and its handle.
pub(crate) struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T> Slot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot { state: Mutex::new(SlotState::Pending), ready: Condvar::new() })
    }

    /// Publishes the task's outcome and wakes the joiner.
    pub(crate) fn fill(&self, outcome: Result<T, JoinError>) {
        let mut state = self.state.lock().expect("task slot poisoned");
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Finished(outcome);
        }
        self.ready.notify_all();
    }

    fn take(&self) -> Result<T, JoinError> {
        let mut state = self.state.lock().expect("task slot poisoned");
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Finished(outcome) => return outcome,
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    state = self.ready.wait(state).expect("task slot poisoned");
                }
                SlotState::Taken => unreachable!("join consumes the handle"),
            }
        }
    }

    fn is_finished(&self) -> bool {
        !matches!(*self.state.lock().expect("task slot poisoned"), SlotState::Pending)
    }
}

/// Resolves the slot with [`JoinError::Panicked`] when dropped while the
/// task never published an outcome — the job was dropped without running
/// (a fault-injected abort, or a panic upstream of the task body). Since
/// [`Slot::fill`] is first-write-wins, the guard is a no-op on every path
/// where the task completed normally.
pub(crate) struct AbandonGuard<T> {
    slot: Arc<Slot<T>>,
}

impl<T> AbandonGuard<T> {
    pub(crate) fn new(slot: Arc<Slot<T>>) -> Self {
        AbandonGuard { slot }
    }

    pub(crate) fn slot(&self) -> &Slot<T> {
        &self.slot
    }
}

impl<T> Drop for AbandonGuard<T> {
    fn drop(&mut self) {
        self.slot.fill(Err(JoinError::Panicked("task aborted before completion".to_string())));
    }
}

/// A completion handle for a task submitted with
/// [`ThreadPool::spawn`](crate::ThreadPool::spawn).
///
/// Dropping the handle detaches the task (it still runs). Panics inside the
/// task are isolated: they resolve the handle with
/// [`JoinError::Panicked`] instead of unwinding through the pool.
pub struct JoinHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(slot: Arc<Slot<T>>) -> Self {
        JoinHandle { slot }
    }

    /// Creates a handle that is already resolved (used when the pool
    /// refuses a task at submission time).
    pub(crate) fn resolved(outcome: Result<T, JoinError>) -> Self {
        let slot = Slot::new();
        slot.fill(outcome);
        JoinHandle { slot }
    }

    /// Blocks until the task finished and returns its value.
    ///
    /// # Errors
    /// [`JoinError::Panicked`] if the task panicked, [`JoinError::Shutdown`]
    /// if the pool was shut down before the task ran.
    pub fn join(self) -> Result<T, JoinError> {
        self.slot.take()
    }

    /// Whether the task has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.slot.is_finished()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("finished", &self.is_finished()).finish()
    }
}
