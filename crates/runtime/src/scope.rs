//! Structured fork-join (`std::thread::scope`-style) on the pool.

use crate::pool::{Job, Shared};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// A scope's task queue. Registered with the pool for the scope's lifetime
/// so idle workers steal from it; the scope's waiter drains it directly.
pub(crate) struct ScopeQueue {
    jobs: Mutex<VecDeque<Job>>,
}

impl ScopeQueue {
    fn new() -> Arc<Self> {
        Arc::new(ScopeQueue { jobs: Mutex::new(VecDeque::new()) })
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("scope queue poisoned").push_back(job);
    }

    pub(crate) fn pop(&self) -> Option<Job> {
        self.jobs.lock().expect("scope queue poisoned").pop_front()
    }

    fn is_empty(&self) -> bool {
        self.jobs.lock().expect("scope queue poisoned").is_empty()
    }
}

/// Spawned-but-unfinished bookkeeping of one scope.
struct Progress {
    pending: usize,
    /// The first panic payload raised by a task of this scope.
    panic: Option<Box<dyn Any + Send>>,
}

struct ScopeState {
    progress: Mutex<Progress>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            progress: Mutex::new(Progress { pending: 0, panic: None }),
            done: Condvar::new(),
        })
    }

    /// Marks one task complete, recording its panic payload if any.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut progress = self.progress.lock().expect("scope state poisoned");
        progress.pending -= 1;
        if progress.panic.is_none() {
            progress.panic = panic;
        }
        self.done.notify_all();
    }
}

/// Completes the scope task on drop if the body never did — the job was
/// dropped without running (a fault-injected abort). Without this, an
/// abandoned task would leave `pending` stuck above zero and
/// [`Scope::run`]'s join would wait forever.
struct TaskGuard {
    state: Arc<ScopeState>,
    done: bool,
}

impl TaskGuard {
    fn finish(mut self, panic: Option<Box<dyn Any + Send>>) {
        self.done = true;
        self.state.complete(panic);
    }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        if !self.done {
            // Surface the abandonment as a task panic so the scope
            // re-raises it instead of silently skipping the task.
            self.state.complete(Some(Box::new("scope task aborted before completion".to_string())));
        }
    }
}

/// Erases a scoped closure's lifetime so it can travel through the pool's
/// `'static` job queues.
///
/// # Safety
/// The caller must guarantee the job is executed (or dropped) before
/// `'scope` ends. [`Scope::run`] upholds this by refusing to return — even
/// when the scope body panics — until every spawned task has completed.
unsafe fn erase_job<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    // SAFETY: identical vtable layout; only the lifetime parameter changes,
    // and the caller contract bounds the job's real lifetime by 'scope.
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
            job,
        )
    }
}

/// A structured fork-join scope created by
/// [`ThreadPool::scope`](crate::ThreadPool::scope).
///
/// Tasks spawned here may borrow data that outlives the `scope` call; the
/// scope joins them all before returning, re-raising the first task panic
/// afterwards (like [`std::thread::scope`]).
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'scope Shared,
    state: Arc<ScopeState>,
    queue: Arc<ScopeQueue>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task onto the scope. The task may borrow from the
    /// environment; it starts as soon as a pool worker (or the scope's own
    /// waiter) picks it up.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.progress.lock().expect("scope state poisoned").pending += 1;
        let guard = TaskGuard { state: Arc::clone(&self.state), done: false };
        let shared = self.shared;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            if outcome.is_err() {
                shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
            }
            guard.finish(outcome.err());
        });
        // SAFETY: `Scope::run` joins every spawned task before `'scope`
        // ends, so the erased closure never outlives its borrows.
        let job = unsafe { erase_job(job) };
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.counters.depth.fetch_add(1, Ordering::Relaxed);
        self.queue.push(job);
        // Wake an idle worker to steal, and the scope's waiter to help.
        self.shared.notify_one();
        self.state.done.notify_all();
    }

    /// Blocks until every spawned task has completed, executing the
    /// scope's own queued tasks on this thread while waiting.
    fn join_all(&self) {
        loop {
            // Help: drain our own queue first. This is what makes nested
            // scopes on busy pools deadlock-free and keeps the fork-join
            // overhead at a few queue operations when no worker is free.
            while let Some(job) = self.queue.pop() {
                self.shared.counters.depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.run_job(job);
            }
            let progress = self.state.progress.lock().expect("scope state poisoned");
            if progress.pending == 0 && self.queue.is_empty() {
                return;
            }
            if !self.queue.is_empty() {
                // A running task spawned more scope work between our drain
                // and the lock; go around and help again.
                continue;
            }
            // Tasks are in flight on workers; wait for completion (or for a
            // task to spawn more scope work).
            let _unused = self.state.done.wait(progress).expect("scope state poisoned");
        }
    }
}

/// Runs the scope body `f`, then joins all spawned tasks, helping to
/// execute them on the calling thread. The engine behind
/// [`ThreadPool::scope`](crate::ThreadPool::scope).
pub(crate) fn run_scope<'env, T, F>(shared: &Shared, f: F) -> T
where
    F: for<'s> FnOnce(&'s Scope<'s, 'env>) -> T,
{
    let scope = Scope {
        shared,
        state: ScopeState::new(),
        queue: ScopeQueue::new(),
        _scope: PhantomData,
        _env: PhantomData,
    };
    shared.register_scope(&scope.queue);
    // Catch a panicking body so the join below always runs: returning
    // (or unwinding) past live borrowed tasks would be unsound.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    scope.join_all();
    shared.deregister_scope(&scope.queue);
    let task_panic = scope.state.progress.lock().expect("scope state poisoned").panic.take();
    match result {
        Err(body_panic) => resume_unwind(body_panic),
        Ok(value) => match task_panic {
            Some(payload) => resume_unwind(payload),
            None => value,
        },
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let progress = self.state.progress.lock().expect("scope state poisoned");
        f.debug_struct("Scope").field("pending", &progress.pending).finish()
    }
}
