//! The resident work-stealing pool.

use crate::scope::{Scope, ScopeQueue};
use crate::stats::{Counters, PoolStats};
use crate::task::{panic_message, JoinError, JoinHandle, Slot};
use pcor_faults::Faults;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A type-erased unit of work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Monotone pool identities, so a thread can tell *which* pool it is a
/// worker of (relevant when several pools coexist, e.g. in tests).
static POOL_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` of the pool this thread is a worker of.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Wake tokens plus the shutdown flag, behind the park mutex.
struct SleepState {
    /// Pending wake tokens; capped at the worker count so a burst of pushes
    /// cannot make workers spin through stale tokens forever.
    tokens: usize,
    shutdown: bool,
}

pub(crate) struct Shared {
    pub(crate) id: u64,
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Queues of currently active scopes; they participate in stealing.
    scopes: Mutex<Vec<Arc<ScopeQueue>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    pub(crate) counters: Counters,
    /// Fault-injection handle consulted when a task starts
    /// ([`pcor_faults::site::POOL_TASK_START`]) and before a worker parks
    /// ([`pcor_faults::site::POOL_PARK`]). Disabled by default.
    faults: Faults,
}

impl Shared {
    /// Wakes one parked worker (or banks a token if none is parked yet).
    pub(crate) fn notify_one(&self) {
        let mut sleep = self.sleep.lock().expect("pool sleep lock poisoned");
        sleep.tokens = (sleep.tokens + 1).min(self.locals.len().max(1));
        drop(sleep);
        self.wake.notify_one();
    }

    /// Pushes a job onto the calling worker's own deque when the caller is
    /// a worker of this pool, otherwise onto the global injector. Refuses
    /// (returning the job) when the pool is already shutting down: the
    /// check happens under the sleep lock — the same lock `shutdown` sets
    /// its flag under — so a job accepted here is ordered before the flag
    /// and is guaranteed to be drained by a worker before it exits.
    pub(crate) fn push_job(&self, job: Job) -> std::result::Result<(), Job> {
        let mut sleep = self.sleep.lock().expect("pool sleep lock poisoned");
        if sleep.shutdown {
            return Err(job);
        }
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters.depth.fetch_add(1, Ordering::Relaxed);
        match self.current_worker_index() {
            Some(index) => self.locals[index].lock().expect("worker deque poisoned").push_back(job),
            None => self.injector.lock().expect("injector poisoned").push_back(job),
        }
        sleep.tokens = (sleep.tokens + 1).min(self.locals.len().max(1));
        drop(sleep);
        self.wake.notify_one();
        Ok(())
    }

    /// The calling thread's worker index in this pool, if any.
    pub(crate) fn current_worker_index(&self) -> Option<usize> {
        CURRENT_WORKER.with(|current| match current.get() {
            Some((pool, index)) if pool == self.id => Some(index),
            _ => None,
        })
    }

    pub(crate) fn register_scope(&self, queue: &Arc<ScopeQueue>) {
        self.scopes.lock().expect("scope registry poisoned").push(Arc::clone(queue));
    }

    pub(crate) fn deregister_scope(&self, queue: &Arc<ScopeQueue>) {
        self.scopes.lock().expect("scope registry poisoned").retain(|q| !Arc::ptr_eq(q, queue));
    }

    /// Finds the next job for `worker`: own deque (LIFO), injector (FIFO),
    /// then stealing — active scope queues first (their tasks are short
    /// fork-join shards), sibling deques last.
    fn find_job(&self, worker: usize) -> Option<Job> {
        if let Some(job) = self.locals[worker].lock().expect("worker deque poisoned").pop_back() {
            self.counters.depth.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            self.counters.depth.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        // Steal: snapshot the active scopes, then probe each queue.
        let scopes: Vec<Arc<ScopeQueue>> =
            self.scopes.lock().expect("scope registry poisoned").clone();
        for queue in scopes {
            if let Some(job) = queue.pop() {
                self.counters.depth.fetch_sub(1, Ordering::Relaxed);
                self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        for (index, local) in self.locals.iter().enumerate() {
            if index == worker {
                continue;
            }
            if let Some(job) = local.lock().expect("worker deque poisoned").pop_front() {
                self.counters.depth.fetch_sub(1, Ordering::Relaxed);
                self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs one job with panic isolation, maintaining the counters.
    ///
    /// The `executed` counter is bumped *before* the job body runs: the
    /// body is what publishes the task's result (handle fill, scope
    /// completion), so counting afterwards would let an observer that
    /// joined the task still read the old count — a race every caller
    /// would have to paper over with polling.
    ///
    /// The spawn/scope wrappers catch their closure's panic themselves (to
    /// route the payload into the handle or scope state) and bump the
    /// `panicked` counter there; this outer catch is a safety net for a
    /// panic escaping the wrapper logic itself, which must not take the
    /// worker thread down either.
    pub(crate) fn run_job(&self, job: Job) {
        self.counters.executed.fetch_add(1, Ordering::Relaxed);
        let faults = &self.faults;
        let body = move || {
            // Inside the unwind boundary: an injected panic is isolated and
            // counted exactly like a panicking task body would be.
            faults.hit(pcor_faults::site::POOL_TASK_START);
            job();
        };
        if catch_unwind(AssertUnwindSafe(body)).is_err() {
            self.counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The body of one resident worker thread.
    fn worker_loop(self: &Arc<Self>, index: usize) {
        CURRENT_WORKER.with(|current| current.set(Some((self.id, index))));
        loop {
            if let Some(job) = self.find_job(index) {
                self.run_job(job);
                continue;
            }
            // Park seam, deliberately *before* the sleep lock: an injected
            // stall here delays the worker without blocking notifiers. An
            // injected panic is swallowed — the worker must stay resident.
            if catch_unwind(AssertUnwindSafe(|| {
                self.faults.hit(pcor_faults::site::POOL_PARK);
            }))
            .is_err()
            {
                self.counters.panicked.fetch_add(1, Ordering::Relaxed);
            }
            let mut sleep = self.sleep.lock().expect("pool sleep lock poisoned");
            if sleep.tokens > 0 {
                // A push raced our scan; consume the token and rescan.
                sleep.tokens -= 1;
                continue;
            }
            if sleep.shutdown {
                return;
            }
            self.counters.parked.fetch_add(1, Ordering::Relaxed);
            let _unused = self.wake.wait(sleep).expect("pool sleep lock poisoned");
        }
    }
}

/// A persistent work-stealing thread pool.
///
/// See the [crate docs](crate) for the design; the short version: one deque
/// per resident worker plus a global injector, stealing between them,
/// parked idlers, panic-isolating [`JoinHandle`]s for free-standing tasks
/// and a structured [`ThreadPool::scope`] for fork-join work over borrowed
/// data in which the waiting caller helps execute.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    accepting: AtomicBool,
}

impl ThreadPool {
    /// Starts a pool with `workers` resident worker threads (`>= 1`).
    pub fn new(workers: usize) -> Self {
        Self::with_faults(workers, Faults::disabled())
    }

    /// Starts a pool with fault injection wired into the worker loop: task
    /// starts and parks consult `faults`, so chaos schedules can force
    /// panics and latency spikes inside real workers. Injected task-start
    /// panics are isolated by the same unwind boundary as task-body panics
    /// and show up in [`PoolStats::panicked`](crate::PoolStats).
    pub fn with_faults(workers: usize, faults: Faults) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            scopes: Mutex::new(Vec::new()),
            sleep: Mutex::new(SleepState { tokens: 0, shutdown: false }),
            wake: Condvar::new(),
            counters: Counters::default(),
            faults,
        });
        let threads = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pcor-pool-{}-{index}", shared.id))
                    .spawn(move || shared.worker_loop(index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, threads: Mutex::new(threads), accepting: AtomicBool::new(true) }
    }

    /// Starts a pool sized to the machine: `available_parallelism` capped
    /// at 8 (the same sizing the serving layer's worker pool used).
    pub fn for_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        Self::new(workers)
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// The calling thread's worker index in this pool (`None` when called
    /// from outside the pool).
    pub fn current_worker(&self) -> Option<usize> {
        self.shared.current_worker_index()
    }

    /// A snapshot of the pool health counters.
    pub fn stats(&self) -> PoolStats {
        self.shared.counters.snapshot(self.workers())
    }

    /// Submits a free-standing task, returning a panic-isolating completion
    /// handle. Tasks submitted from a worker thread go to that worker's own
    /// deque (and are stealable by siblings); tasks from outside go through
    /// the global injector.
    ///
    /// After [`shutdown`](ThreadPool::shutdown) the task is refused: the
    /// handle resolves immediately with [`JoinError::Shutdown`].
    pub fn spawn<T, F>(&self, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if !self.accepting.load(Ordering::Acquire) {
            return JoinHandle::resolved(Err(JoinError::Shutdown));
        }
        let slot = Slot::new();
        // The guard resolves the handle if the job is dropped without ever
        // running (e.g. a fault-injected abort upstream of the body), so a
        // `join` can never hang on an abandoned task.
        let guard = crate::task::AbandonGuard::new(Arc::clone(&slot));
        let shared = Arc::clone(&self.shared);
        let accepted = self.shared.push_job(Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            guard.slot().fill(outcome.map_err(|payload| {
                shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
                JoinError::Panicked(panic_message(payload.as_ref()))
            }));
        }));
        if accepted.is_err() {
            // `shutdown` won the race between our `accepting` check and the
            // push: the job was never queued (no worker is left to drain
            // it), so resolve the handle instead of leaving it to hang.
            slot.fill(Err(JoinError::Shutdown));
        }
        JoinHandle::new(slot)
    }

    /// Structured fork-join over borrowed data, in the mold of
    /// [`std::thread::scope`]: tasks spawned on the [`Scope`] may borrow
    /// anything that outlives the call, and `scope` does not return until
    /// every spawned task has finished.
    ///
    /// The calling thread **helps execute** the scope's tasks while it
    /// waits (idle pool workers steal them concurrently), so calling this
    /// from inside a pool task cannot deadlock, and on a pool whose workers
    /// are all busy — or shut down — it degrades to an inline serial loop.
    ///
    /// If a spawned task panics, the panic is re-raised here after all
    /// tasks of the scope have finished (mirroring `std::thread::scope`).
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        crate::scope::run_scope(&self.shared, f)
    }

    /// Stops accepting free-standing tasks, lets the workers drain every
    /// queued task, then joins them. Idempotent. [`ThreadPool::scope`]
    /// keeps working after shutdown (the caller executes inline).
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        {
            let mut sleep = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            sleep.shutdown = true;
        }
        self.shared.wake.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().expect("pool threads poisoned"));
        let current = std::thread::current().id();
        for thread in threads {
            // A pool task holding the last `Arc<ThreadPool>` runs this via
            // `Drop` *on a worker thread*; joining that thread would be a
            // self-join deadlock. Skip it — it exits on its own once its
            // current job finishes and it observes the shutdown flag.
            if thread.thread().id() == current {
                continue;
            }
            let _ = thread.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn spawned_tasks_run_and_join() {
        let pool = ThreadPool::new(2);
        let handles: Vec<_> = (0..16).map(|i| pool.spawn(move || i * i)).collect();
        let total: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..16).map(|i| i * i).sum());
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.tasks_submitted, 16);
        assert_eq!(stats.tasks_executed, 16);
        assert_eq!(stats.tasks_panicked, 0);
    }

    #[test]
    fn panics_are_isolated_and_the_pool_survives() {
        let pool = ThreadPool::new(1);
        let bad = pool.spawn(|| panic!("poisoned task {}", 7));
        match bad.join() {
            Err(JoinError::Panicked(msg)) => assert!(msg.contains("poisoned task 7")),
            other => panic!("expected a panic error, got {other:?}"),
        }
        // The lone worker survived and keeps serving.
        assert_eq!(pool.spawn(|| "alive").join().unwrap(), "alive");
        assert_eq!(pool.stats().tasks_panicked, 1);
    }

    #[test]
    fn scope_joins_borrowed_fork_join_work() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let mut partials = [0u64; 4];
        pool.scope(|scope| {
            for (chunk, slot) in data.chunks(250).zip(partials.iter_mut()) {
                scope.spawn(move || *slot = chunk.iter().sum());
            }
        });
        assert_eq!(partials.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn nested_scopes_from_pool_tasks_do_not_deadlock() {
        // A 1-worker pool forces the nested scope onto the helping path.
        let pool = Arc::new(ThreadPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let handle = pool.spawn(move || {
            let mut out = [0usize; 2];
            inner_pool.scope(|scope| {
                let (a, b) = out.split_at_mut(1);
                scope.spawn(|| a[0] = 1);
                scope.spawn(|| b[0] = 2);
            });
            out[0] + out[1]
        });
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn scope_propagates_task_panics_after_joining_all() {
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    panic!("shard failed");
                });
                scope.spawn(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err(), "the scope must re-raise the task panic");
        // Both tasks ran to completion before the panic was re-raised.
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        // The pool is still usable afterwards.
        assert_eq!(pool.spawn(|| 5).join().unwrap(), 5);
    }

    #[test]
    fn scope_works_even_after_shutdown() {
        let pool = ThreadPool::new(2);
        pool.shutdown();
        assert!(matches!(pool.spawn(|| ()).join(), Err(JoinError::Shutdown)));
        let mut x = 0;
        pool.scope(|scope| scope.spawn(|| x = 9));
        assert_eq!(x, 9);
    }

    #[test]
    fn shutdown_drains_queued_tasks_and_is_idempotent() {
        let pool = ThreadPool::new(1);
        let slow: Vec<_> = (0..8)
            .map(|i| {
                pool.spawn(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    i
                })
            })
            .collect();
        pool.shutdown();
        pool.shutdown();
        for (i, handle) in slow.into_iter().enumerate() {
            assert_eq!(handle.join().unwrap(), i);
        }
    }

    #[test]
    fn workers_steal_across_deques() {
        // Submit from inside worker 0 so tasks land on its deque; with more
        // workers present, the sleepy siblings must steal to finish fast.
        let pool = Arc::new(ThreadPool::new(4));
        let inner = Arc::clone(&pool);
        pool.spawn(move || {
            let handles: Vec<_> = (0..32)
                .map(|_| inner.spawn(|| std::thread::sleep(Duration::from_millis(2))))
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
        })
        .join()
        .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.tasks_executed, 33);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn current_worker_is_visible_inside_tasks_only() {
        let pool = Arc::new(ThreadPool::new(2));
        assert_eq!(pool.current_worker(), None);
        let inner = Arc::clone(&pool);
        let index = pool.spawn(move || inner.current_worker()).join().unwrap();
        assert!(matches!(index, Some(i) if i < 2));
    }

    #[test]
    fn injected_task_start_panics_resolve_handles_and_spare_the_workers() {
        use pcor_faults::{site, FaultKind, FaultPlan};
        let faults = FaultPlan::seeded(7).at(site::POOL_TASK_START, 1, FaultKind::Panic).build();
        let pool = ThreadPool::with_faults(2, faults);
        // The first task to start is killed before its body runs; the
        // abandon guard must still resolve its handle instead of hanging.
        let first = pool.spawn(|| 1);
        assert!(matches!(first.join(), Err(JoinError::Panicked(_))));
        // The worker survived the injected panic and keeps serving.
        let rest: Vec<_> = (0..8).map(|i| pool.spawn(move || i)).collect();
        let total: i32 = rest.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..8).sum());
        // Join the workers first: the panicked counter is bumped after the
        // unwind finishes, which can trail the handle resolution.
        pool.shutdown();
        assert!(pool.stats().tasks_panicked >= 1);
    }

    #[test]
    fn injected_scope_task_aborts_reraise_instead_of_hanging() {
        use pcor_faults::{site, FaultKind, FaultPlan};
        let faults = FaultPlan::seeded(7).at(site::POOL_TASK_START, 1, FaultKind::Panic).build();
        let pool = ThreadPool::with_faults(1, faults);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| scope.spawn(|| {}));
        }));
        assert!(outcome.is_err(), "the aborted scope task must re-raise, not hang or vanish");
    }

    #[test]
    fn injected_park_latency_only_delays_the_workers() {
        use pcor_faults::{site, FaultKind, FaultPlan};
        let faults = FaultPlan::seeded(7)
            .rule(site::POOL_PARK, FaultKind::Latency(Duration::from_micros(200)), 1.0)
            .build();
        let pool = ThreadPool::with_faults(2, faults);
        let handles: Vec<_> = (0..8).map(|i| pool.spawn(move || i * 2)).collect();
        let total: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..8).map(|i| i * 2).sum());
        assert_eq!(pool.stats().tasks_panicked, 0);
    }
}
