//! Pool health counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Internal atomic counters maintained by the pool.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) executed: AtomicU64,
    pub(crate) stolen: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) parked: AtomicU64,
    /// Tasks pushed but not yet started (gauge).
    pub(crate) depth: AtomicUsize,
}

impl Counters {
    pub(crate) fn snapshot(&self, workers: usize) -> PoolStats {
        PoolStats {
            workers,
            queue_depth: self.depth.load(Ordering::Relaxed),
            tasks_submitted: self.submitted.load(Ordering::Relaxed),
            tasks_executed: self.executed.load(Ordering::Relaxed),
            tasks_stolen: self.stolen.load(Ordering::Relaxed),
            tasks_panicked: self.panicked.load(Ordering::Relaxed),
            worker_parks: self.parked.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a pool's health counters
/// (see [`ThreadPool::stats`](crate::ThreadPool::stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Number of resident worker threads.
    pub workers: usize,
    /// Tasks currently queued (injector + worker deques + scope queues)
    /// that no thread has started executing yet.
    pub queue_depth: usize,
    /// Tasks ever submitted (spawns plus scope spawns).
    pub tasks_submitted: u64,
    /// Tasks handed to a thread for execution (counted at pickup, so a
    /// task whose completion you have observed is always included;
    /// panicked tasks count too).
    pub tasks_executed: u64,
    /// Tasks executed by a thread other than the queue they were pushed to
    /// belongs to — injector pops by workers are not steals; taking from a
    /// sibling worker's deque or from another caller's scope queue is.
    pub tasks_stolen: u64,
    /// Tasks that panicked (isolated; the worker survived).
    pub tasks_panicked: u64,
    /// Times a worker ran out of work and parked on the condvar (counted
    /// at each wait, so spurious wakeups that re-park count again).
    pub worker_parks: u64,
}
