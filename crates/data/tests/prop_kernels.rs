//! Property-based tests of the fused AND+popcount kernels and the
//! incremental moment tracker.
//!
//! Every SIMD kernel must be bit-identical — result bitmap words *and*
//! returned count — to the scalar reference on arbitrary word streams,
//! including empty inputs, single words, and tails that are not a multiple
//! of any vector width. The moment tracker must agree with the from-scratch
//! `Dataset::population_metric_moments` over long random flip sequences with
//! adversarial metric magnitudes, with the drift-bound refresh exercised
//! across forced boundaries.

use pcor_data::kernel::{scalar_pass, KernelKind};
use pcor_data::{
    Attribute, Context, Dataset, PopulationCursor, Record, RecordBitmap, Schema, ShardPolicy,
};
use proptest::prelude::*;

/// Builds a bitmap of `words` words filled from a seeded PRNG.
fn seeded_bitmap(words: usize, seed: u64) -> RecordBitmap {
    let mut bitmap = RecordBitmap::new(words * 64);
    let mut state = seed;
    for w in bitmap.words_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *w = state;
    }
    bitmap
}

/// Strategy: word-stream shapes that hit every tail case — empty, one word,
/// below/at/just-past the 4- and 8-word vector widths, and longer ragged
/// streams.
fn words_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(2usize),
        Just(3usize),
        Just(4usize),
        Just(5usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        4usize..48,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmap and count identity of every supported kernel against the
    /// scalar reference, over random word streams, random attribute counts
    /// and random shard offsets (`lo`).
    #[test]
    fn kernels_are_bit_identical_to_scalar(
        words in words_strategy(),
        attrs in 0usize..4,
        lo_words in 0usize..3,
        seed in any::<u64>(),
    ) {
        let first = seeded_bitmap(words, seed);
        // `rest` bitmaps are indexed at `lo + k`, so they carry `lo` extra
        // leading words — the shape a sharded pass hands the kernel.
        let rest: Vec<RecordBitmap> = (0..attrs)
            .map(|i| seeded_bitmap(lo_words + words, seed ^ (i as u64 + 1).wrapping_mul(0xA5A5)))
            .collect();
        let mut expected_out = vec![0u64; words];
        let expected =
            scalar_pass(first.words(), &rest, &mut expected_out, lo_words);
        for kind in KernelKind::supported() {
            let mut out = vec![u64::MAX; words];
            let got = kind.func()(first.words(), &rest, &mut out, lo_words);
            prop_assert_eq!(got, expected, "{} count diverged", kind);
            prop_assert_eq!(&out, &expected_out, "{} bitmap diverged", kind);
        }
    }

    /// The incremental moment tracker agrees with the from-scratch shifted
    /// one-pass over long random flip sequences, for adversarial metric
    /// magnitudes (large common offset, small spread — maximal cancellation)
    /// and for refresh intervals small enough that the walk crosses several
    /// forced refresh boundaries.
    #[test]
    fn tracked_moments_agree_with_from_scratch(
        domains in proptest::collection::vec(2usize..=4, 2..=3),
        n in 30usize..150,
        offset_pow in 0u32..10,
        refresh_every in 1u32..8,
        seed in any::<u64>(),
    ) {
        let attributes = domains
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                Attribute::new(format!("A{i}"), (0..size).map(|v| format!("v{v}")).collect())
                    .unwrap()
            })
            .collect();
        let schema = Schema::new(attributes, "M").unwrap();
        // Metric = big offset + tiny jitter: the worst case for naive
        // accumulation of Σx and Σx², which is exactly what the origin
        // shift + Neumaier compensation must survive.
        let offset = 10f64.powi(offset_pow as i32);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let records: Vec<Record> = (0..n)
            .map(|_| {
                let values: Vec<u16> = (0..schema.num_attributes())
                    .map(|attr| (next() % schema.attribute(attr).domain_size()) as u16)
                    .collect();
                Record::new(values, offset + (next() % 1000) as f64 / 100.0)
            })
            .collect();
        let dataset = Dataset::new(schema, records).unwrap();
        let t = dataset.schema().total_values();
        let origin = dataset.metric(next() % n);

        let mut cursor =
            PopulationCursor::with_policy(&dataset, &Context::full(t), ShardPolicy::serial())
                .unwrap();
        cursor.track_moments_every(origin, refresh_every);
        let mut flip_state = seed ^ 0x5DEECE66D;
        for step in 0..64 {
            flip_state = flip_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cursor.flip((flip_state >> 33) as usize % t);
            let (sum, sum_sq_dev) = cursor.moments();
            let (expected_sum, expected_sq) =
                dataset.population_metric_moments(cursor.population(), origin);
            let tol = 1e-9 * expected_sum.abs().max(1.0);
            prop_assert!(
                (sum - expected_sum).abs() <= tol,
                "step {}: sum {} vs {}", step, sum, expected_sum
            );
            let tol = 1e-9 * expected_sq.abs().max(1.0);
            prop_assert!(
                (sum_sq_dev - expected_sq).abs() <= tol,
                "step {}: sum_sq_dev {} vs {}", step, sum_sq_dev, expected_sq
            );
        }
        // 64 syncs at interval < 8 crossed a refresh boundary several times
        // (the first sync is always a full rescan, later ones are deltas).
        prop_assert!(cursor.moment_full_refreshes() >= 64 / u64::from(refresh_every + 1));
        if refresh_every > 1 {
            prop_assert!(cursor.moment_delta_syncs() > 0);
        }
    }
}
