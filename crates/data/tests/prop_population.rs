//! Property-based tests of the incremental population engine: the cursor,
//! the reusable scratch and the sharded fused pass must all be bit-identical
//! to the from-scratch `Dataset::population` for any dataset, any context
//! and any flip sequence.

use pcor_data::{
    Attribute, Context, Dataset, PopulationCursor, PopulationScratch, Record, Schema, ShardPolicy,
};
use pcor_runtime::ThreadPool;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One resident pool shared by every proptest case (what a serving process
/// would do) — also exercises pool reuse across many unrelated fork-joins.
fn shared_pool() -> Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| Arc::new(ThreadPool::new(3))))
}

/// Strategy: a small random schema (2–4 attributes, domains of 2–5 values).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(2usize..=5, 2..=4).prop_map(|domains| {
        let attributes = domains
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                Attribute::new(format!("A{i}"), (0..size).map(|v| format!("v{v}")).collect())
                    .unwrap()
            })
            .collect();
        Schema::new(attributes, "M").unwrap()
    })
}

/// Strategy: a dataset over a random schema with 20–200 records (several
/// bitmap words, so sharding has something to split).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (schema_strategy(), 20usize..200, any::<u64>()).prop_map(|(schema, n, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let records: Vec<Record> = (0..n)
            .map(|_| {
                let values: Vec<u16> = (0..schema.num_attributes())
                    .map(|attr| (next() % schema.attribute(attr).domain_size()) as u16)
                    .collect();
                Record::new(values, 100.0 + (next() % 1000) as f64)
            })
            .collect();
        Dataset::new(schema, records).unwrap()
    })
}

/// Builds a deterministic pseudo-random context from a seed.
fn seeded_context(t: usize, seed: u64) -> Context {
    let mut context = Context::empty(t);
    let mut state = seed;
    for i in 0..t {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        if (state >> 41) & 1 == 1 {
            context.set(i, true);
        }
    }
    context
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After ANY sequence of random single-bit flips, the cursor's population
    /// bitmap and popcount equal a from-scratch `Dataset::population` of the
    /// same context — and both sharded passes (spawn-per-pass and the
    /// persistent pool) are bit-identical to the serial one at every step.
    #[test]
    fn cursor_tracks_from_scratch_population_under_random_flips(
        dataset in dataset_strategy(),
        start_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        flips in 1usize..60,
    ) {
        let t = dataset.schema().total_values();
        let start = seeded_context(t, start_seed);
        let mut serial =
            PopulationCursor::with_policy(&dataset, &start, ShardPolicy::serial()).unwrap();
        let mut sharded =
            PopulationCursor::with_policy(&dataset, &start, ShardPolicy::forced(4)).unwrap();
        let mut pooled = PopulationCursor::with_policy(
            &dataset,
            &start,
            ShardPolicy::pooled_forced(shared_pool(), 4),
        )
        .unwrap();
        let mut reference = start;
        let mut state = flip_seed;
        for _ in 0..flips {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bit = (state >> 33) as usize % t;
            serial.flip(bit);
            sharded.flip(bit);
            pooled.flip(bit);
            reference.flip(bit);
            let expected = dataset.population(&reference).unwrap();
            prop_assert_eq!(serial.population(), &expected);
            prop_assert_eq!(serial.population_size(), expected.count());
            prop_assert_eq!(sharded.population(), &expected);
            prop_assert_eq!(sharded.population_size(), expected.count());
            prop_assert_eq!(pooled.population(), &expected);
            prop_assert_eq!(pooled.population_size(), expected.count());
        }
    }

    /// `population_into` on a reused scratch equals the allocating
    /// `population`, across many contexts on the same scratch.
    #[test]
    fn scratch_reuse_matches_fresh_population(
        dataset in dataset_strategy(),
        seeds in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let t = dataset.schema().total_values();
        let mut scratch = PopulationScratch::for_dataset(&dataset);
        for seed in seeds {
            let context = seeded_context(t, seed);
            let expected = dataset.population(&context).unwrap();
            let via_scratch = dataset.population_into(&context, &mut scratch).unwrap();
            prop_assert_eq!(via_scratch, &expected);
        }
    }

    /// `move_to` (arbitrary jumps) lands on the same population as a freshly
    /// positioned cursor and as the from-scratch evaluation.
    #[test]
    fn cursor_move_to_equals_fresh_cursor(
        dataset in dataset_strategy(),
        from_seed in any::<u64>(),
        to_seed in any::<u64>(),
    ) {
        let t = dataset.schema().total_values();
        let from = seeded_context(t, from_seed);
        let to = seeded_context(t, to_seed);
        let mut moved = PopulationCursor::new(&dataset, &from).unwrap();
        moved.move_to(&to).unwrap();
        let expected = dataset.population(&to).unwrap();
        prop_assert_eq!(moved.population(), &expected);
        prop_assert_eq!(moved.context(), &to);
    }

    /// The fused allocation-free `population_size` agrees with materializing
    /// the population and counting it.
    #[test]
    fn fused_population_size_matches_materialized_count(
        dataset in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let t = dataset.schema().total_values();
        let context = seeded_context(t, seed);
        prop_assert_eq!(
            dataset.population_size(&context).unwrap(),
            dataset.population(&context).unwrap().count()
        );
    }

    /// The record-bit-index `covers` agrees with the context-side
    /// per-attribute scan for every record.
    #[test]
    fn covers_matches_context_covers(
        dataset in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let t = dataset.schema().total_values();
        let context = seeded_context(t, seed);
        for id in 0..dataset.len() {
            let expected = context
                .covers(dataset.schema(), dataset.record(id).values())
                .unwrap();
            prop_assert_eq!(dataset.covers(&context, id).unwrap(), expected);
        }
    }

    /// Metric moments accumulated over the population bitmap (shifted
    /// one-pass around an in-population origin) agree with the two-pass
    /// mean-then-deviations computation over the gathered metrics slice.
    #[test]
    fn population_moments_match_gathered_metrics(
        dataset in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let t = dataset.schema().total_values();
        let context = seeded_context(t, seed);
        let population = dataset.population(&context).unwrap();
        let metrics = dataset.population_metrics(&context).unwrap();
        // The engine always shifts by a member of the population.
        let origin = metrics.first().copied().unwrap_or(0.0);
        let (sum, sum_sq_dev) = dataset.population_metric_moments(&population, origin);
        let expected_sum: f64 = metrics.iter().sum();
        prop_assert!((sum - expected_sum).abs() <= 1e-9 * expected_sum.abs().max(1.0));
        if !metrics.is_empty() {
            let mean = expected_sum / metrics.len() as f64;
            let expected_sum_sq_dev: f64 =
                metrics.iter().map(|x| (x - mean) * (x - mean)).sum();
            prop_assert!(
                (sum_sq_dev - expected_sum_sq_dev).abs()
                    <= 1e-9 * expected_sum_sq_dev.abs().max(1.0)
            );
        }
    }
}
