//! Property-based tests of the context algebra and population evaluation.

use pcor_data::generator::{salary_dataset, SalaryConfig};
use pcor_data::{Attribute, Context, Dataset, Record, Schema};
use proptest::prelude::*;

/// Strategy: a small random schema (2–4 attributes, domains of 2–5 values).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(2usize..=5, 2..=4).prop_map(|domains| {
        let attributes = domains
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                Attribute::new(format!("A{i}"), (0..size).map(|v| format!("v{v}")).collect())
                    .unwrap()
            })
            .collect();
        Schema::new(attributes, "M").unwrap()
    })
}

/// Strategy: a dataset over a random schema with 20–120 records.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (schema_strategy(), 20usize..120, any::<u64>()).prop_map(|(schema, n, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let records: Vec<Record> = (0..n)
            .map(|_| {
                let values: Vec<u16> = (0..schema.num_attributes())
                    .map(|attr| (next() % schema.attribute(attr).domain_size()) as u16)
                    .collect();
                Record::new(values, 100.0 + (next() % 1000) as f64)
            })
            .collect();
        Dataset::new(schema, records).unwrap()
    })
}

/// Strategy: a random context for a given bit length.
fn context_strategy(t: usize) -> impl Strategy<Value = Context> {
    proptest::collection::vec(any::<bool>(), t).prop_map(move |bits| {
        let mut c = Context::empty(t);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                c.set(i, true);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping a bit twice restores the original context, and every neighbor
    /// is at Hamming distance exactly one.
    #[test]
    fn flip_is_an_involution(t in 1usize..80, bit_fraction in 0.0f64..1.0, flip_bit_raw in any::<usize>()) {
        let mut context = Context::empty(t);
        for i in 0..t {
            if (i as f64 / t as f64) < bit_fraction {
                context.set(i, true);
            }
        }
        let flip_bit = flip_bit_raw % t;
        let neighbor = context.with_flipped(flip_bit);
        prop_assert_eq!(context.hamming_distance(&neighbor), 1);
        prop_assert!(context.is_connected_to(&neighbor));
        let back = neighbor.with_flipped(flip_bit);
        prop_assert_eq!(back, context);
    }

    /// Bit-string round trip is the identity.
    #[test]
    fn bit_string_round_trip(t in 0usize..100, seed in any::<u64>()) {
        let mut context = Context::empty(t);
        let mut state = seed;
        for i in 0..t {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (state >> 40) & 1 == 1 {
                context.set(i, true);
            }
        }
        let parsed = Context::from_bit_string(&context.to_bit_string()).unwrap();
        prop_assert_eq!(parsed, context);
    }

    /// The bitmap-index population matches a naive per-record scan, for any
    /// dataset and any context.
    #[test]
    fn population_matches_naive_scan(dataset in dataset_strategy(), seed in any::<u64>()) {
        let t = dataset.schema().total_values();
        let mut context = Context::empty(t);
        let mut state = seed;
        for i in 0..t {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            if (state >> 41) & 1 == 1 {
                context.set(i, true);
            }
        }
        let fast: Vec<usize> = dataset.population_ids(&context).unwrap();
        let naive: Vec<usize> = (0..dataset.len())
            .filter(|&id| context.covers(dataset.schema(), dataset.record(id).values()).unwrap())
            .collect();
        prop_assert_eq!(fast, naive);
    }

    /// Adding a predicate never shrinks the population (monotonicity), and
    /// removing one never grows it.
    #[test]
    fn population_is_monotone_in_predicates(dataset in dataset_strategy(), seed in any::<u64>()) {
        let t = dataset.schema().total_values();
        let context = {
            let mut c = Context::full(t);
            let mut state = seed;
            for i in 0..t {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                if (state >> 42) & 1 == 1 {
                    c.set(i, false);
                }
            }
            c
        };
        let base = dataset.population_size(&context).unwrap();
        for bit in 0..t {
            let toggled = context.with_flipped(bit);
            let size = dataset.population_size(&toggled).unwrap();
            if context.get(bit) {
                // Removed a predicate: population can only shrink or stay.
                prop_assert!(size <= base);
            } else {
                // Added a predicate: population can only grow or stay.
                prop_assert!(size >= base);
            }
        }
    }

    /// Well-formedness is equivalent to "at least one value selected per
    /// attribute", and ill-formed contexts always have empty populations.
    #[test]
    fn well_formedness_characterization(dataset in dataset_strategy(), seed in any::<u64>()) {
        let schema = dataset.schema();
        let t = schema.total_values();
        let mut context = Context::empty(t);
        let mut state = seed;
        for i in 0..t {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            if (state >> 43) & 1 == 1 {
                context.set(i, true);
            }
        }
        let per_attr = context.selected_per_attribute(schema).unwrap();
        let expected = per_attr.iter().all(|&k| k > 0);
        prop_assert_eq!(context.is_well_formed(schema).unwrap(), expected);
        if !expected {
            prop_assert_eq!(dataset.population_size(&context).unwrap(), 0);
        }
    }

    /// A record's minimal context covers exactly the records sharing all of
    /// its categorical values.
    #[test]
    fn minimal_context_population_is_exact(dataset in dataset_strategy(), idx_raw in any::<usize>()) {
        prop_assume!(!dataset.is_empty());
        let id = idx_raw % dataset.len();
        let minimal = dataset.minimal_context(id).unwrap();
        let expected: Vec<usize> = (0..dataset.len())
            .filter(|&other| dataset.record(other).values() == dataset.record(id).values())
            .collect();
        prop_assert_eq!(dataset.population_ids(&minimal).unwrap(), expected);
    }

    /// Removing records changes any population by at most the number of
    /// removed records (the sensitivity argument behind Δu = 1 / group
    /// privacy).
    #[test]
    fn neighbor_population_sensitivity(delta in 1usize..10, seed in any::<u64>()) {
        let dataset = salary_dataset(&SalaryConfig::tiny().with_records(200).with_seed(seed)).unwrap();
        let t = dataset.schema().total_values();
        let remove: Vec<usize> = (0..delta).map(|i| i * 7 % dataset.len()).collect();
        let unique: std::collections::HashSet<usize> = remove.iter().copied().collect();
        let neighbor = dataset.without_records(&remove).unwrap();
        let mut state = seed ^ 0xABCD;
        for _ in 0..10 {
            let mut context = Context::empty(t);
            for i in 0..t {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                if (state >> 44) & 1 == 1 {
                    context.set(i, true);
                }
            }
            let before = dataset.population_size(&context).unwrap();
            let after = neighbor.population_size(&context).unwrap();
            prop_assert!(before >= after);
            prop_assert!(before - after <= unique.len());
        }
    }
}

/// Non-proptest sanity check that the strategies themselves are exercised.
#[test]
fn strategies_produce_valid_values() {
    use proptest::strategy::ValueTree;
    let mut runner = proptest::test_runner::TestRunner::default();
    let dataset = dataset_strategy().new_tree(&mut runner).unwrap().current();
    assert!(dataset.len() >= 20);
    let context =
        context_strategy(dataset.schema().total_values()).new_tree(&mut runner).unwrap().current();
    assert_eq!(context.len(), dataset.schema().total_values());
}
