//! Minimal CSV import/export for PCOR datasets.
//!
//! The format is deliberately simple: a header row with the categorical
//! attribute names followed by the metric name, then one row per record with
//! the categorical values spelled out and the metric as a decimal number.
//! This is enough to round-trip the synthetic workloads and to let users load
//! their own extracts (e.g. the real Ontario salary disclosure) without
//! pulling in a CSV dependency.

use crate::dataset::Dataset;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use crate::{DataError, Result};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a dataset as CSV to `writer`.
///
/// # Errors
/// Returns [`DataError::Malformed`] wrapping any I/O error.
pub fn write_csv<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<()> {
    let schema = dataset.schema();
    let mut header: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    header.push(schema.metric_name());
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for record in dataset.records() {
        let mut fields: Vec<String> = record
            .values()
            .iter()
            .enumerate()
            .map(|(attr, &val)| {
                schema.attribute(attr).value(val as usize).unwrap_or("?").to_string()
            })
            .collect();
        fields.push(format_metric(record.metric()));
        writeln!(writer, "{}", fields.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Serializes a dataset to a CSV string.
///
/// # Errors
/// Same conditions as [`write_csv`].
pub fn to_csv_string(dataset: &Dataset) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)?;
    String::from_utf8(buf).map_err(|e| DataError::Malformed(e.to_string()))
}

/// Reads a dataset from CSV given an existing schema (values must belong to
/// the schema's domains).
///
/// # Errors
/// Returns [`DataError::Malformed`] for I/O errors, missing columns, unknown
/// categorical values or unparsable metrics.
pub fn read_csv_with_schema<R: Read>(schema: &Schema, reader: R) -> Result<Dataset> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(line) => line.map_err(io_err)?,
        None => return Err(DataError::Malformed("empty CSV input".into())),
    };
    let expected_cols = schema.num_attributes() + 1;
    let header_fields: Vec<&str> = header.split(',').map(str::trim).collect();
    if header_fields.len() != expected_cols {
        return Err(DataError::Malformed(format!(
            "header has {} columns, schema expects {expected_cols}",
            header_fields.len()
        )));
    }
    let mut records = Vec::new();
    for (line_no, line) in lines.enumerate() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != expected_cols {
            return Err(DataError::Malformed(format!(
                "line {} has {} columns, expected {expected_cols}",
                line_no + 2,
                fields.len()
            )));
        }
        let mut values = Vec::with_capacity(schema.num_attributes());
        for (attr, &value) in fields.iter().enumerate().take(schema.num_attributes()) {
            let idx = schema.attribute(attr).value_index(value).ok_or_else(|| {
                DataError::Malformed(format!(
                    "unknown value '{value}' for attribute {} on line {}",
                    schema.attribute(attr).name(),
                    line_no + 2
                ))
            })?;
            values.push(idx as u16);
        }
        let metric: f64 = fields[expected_cols - 1].parse().map_err(|_| {
            DataError::Malformed(format!("unparsable metric on line {}", line_no + 2))
        })?;
        records.push(Record::new(values, metric));
    }
    Dataset::new(schema.clone(), records)
}

/// Reads a dataset from CSV, inferring the schema: every column except the
/// last is treated as categorical (domain = distinct values in file order),
/// the last column is the numeric metric.
///
/// Note that a schema inferred this way only contains the values *present* in
/// the file; per Section 4 of the paper, for real deployments the data owner
/// should construct the schema from the full attribute domains instead (use
/// [`read_csv_with_schema`]).
///
/// # Errors
/// Returns [`DataError::Malformed`] for structural problems.
pub fn read_csv_infer_schema<R: Read>(reader: R) -> Result<Dataset> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(line) => line.map_err(io_err)?,
        None => return Err(DataError::Malformed("empty CSV input".into())),
    };
    let header_fields: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if header_fields.len() < 2 {
        return Err(DataError::Malformed(
            "need at least one categorical column and one metric column".into(),
        ));
    }
    let num_attrs = header_fields.len() - 1;
    let mut domains: Vec<Vec<String>> = vec![Vec::new(); num_attrs];
    let mut raw_rows: Vec<(Vec<String>, f64)> = Vec::new();

    for (line_no, line) in lines.enumerate() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != header_fields.len() {
            return Err(DataError::Malformed(format!(
                "line {} has {} columns, expected {}",
                line_no + 2,
                fields.len(),
                header_fields.len()
            )));
        }
        let metric: f64 = fields[num_attrs].parse().map_err(|_| {
            DataError::Malformed(format!("unparsable metric on line {}", line_no + 2))
        })?;
        let cat: Vec<String> = fields[..num_attrs].iter().map(|s| s.to_string()).collect();
        for (attr, value) in cat.iter().enumerate() {
            if !domains[attr].contains(value) {
                domains[attr].push(value.clone());
            }
        }
        raw_rows.push((cat, metric));
    }

    let attributes: Vec<Attribute> = header_fields[..num_attrs]
        .iter()
        .zip(domains.iter())
        .map(|(name, dom)| Attribute::new(name.clone(), dom.clone()))
        .collect::<Result<Vec<_>>>()?;
    let schema = Schema::new(attributes, header_fields[num_attrs].clone())?;

    let records: Vec<Record> = raw_rows
        .into_iter()
        .map(|(cat, metric)| {
            let values: Vec<u16> = cat
                .iter()
                .enumerate()
                .map(|(attr, v)| schema.attribute(attr).value_index(v).unwrap() as u16)
                .collect();
            Record::new(values, metric)
        })
        .collect();
    Dataset::new(schema, records)
}

fn format_metric(m: f64) -> String {
    if m.fract() == 0.0 && m.abs() < 1e15 {
        format!("{}", m as i64)
    } else {
        format!("{m}")
    }
}

fn io_err(e: std::io::Error) -> DataError {
    DataError::Malformed(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{salary_dataset, SalaryConfig};

    #[test]
    fn round_trip_with_schema() {
        let d = salary_dataset(&SalaryConfig::tiny()).unwrap();
        let csv = to_csv_string(&d).unwrap();
        let back = read_csv_with_schema(d.schema(), csv.as_bytes()).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.records(), d.records());
    }

    #[test]
    fn round_trip_with_inferred_schema_preserves_populations() {
        let d = salary_dataset(&SalaryConfig::tiny()).unwrap();
        let csv = to_csv_string(&d).unwrap();
        let back = read_csv_infer_schema(csv.as_bytes()).unwrap();
        assert_eq!(back.len(), d.len());
        // Metric values survive the round trip.
        assert_eq!(back.metrics(), d.metrics());
        // The inferred schema only differs in value order, not in counts.
        assert_eq!(back.schema().num_attributes(), d.schema().num_attributes());
    }

    #[test]
    fn header_and_column_mismatches_are_rejected() {
        let d = salary_dataset(&SalaryConfig::tiny()).unwrap();
        assert!(read_csv_with_schema(d.schema(), "a,b\n".as_bytes()).is_err());
        let bad_row = "JobTitle,Employer,Year,Salary\nProfessor,City of Toronto,2012\n";
        assert!(read_csv_with_schema(d.schema(), bad_row.as_bytes()).is_err());
        assert!(read_csv_with_schema(d.schema(), "".as_bytes()).is_err());
    }

    #[test]
    fn unknown_values_and_bad_metrics_are_rejected() {
        let d = salary_dataset(&SalaryConfig::tiny()).unwrap();
        let unknown = "JobTitle,Employer,Year,Salary\nAstronaut,City of Toronto,2012,100000\n";
        assert!(read_csv_with_schema(d.schema(), unknown.as_bytes()).is_err());
        let bad_metric = "JobTitle,Employer,Year,Salary\nProfessor,City of Toronto,2012,abc\n";
        assert!(read_csv_with_schema(d.schema(), bad_metric.as_bytes()).is_err());
    }

    #[test]
    fn infer_schema_needs_two_columns() {
        assert!(read_csv_infer_schema("Only\n1\n".as_bytes()).is_err());
        assert!(read_csv_infer_schema("".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "A,M\nx,1\n\ny,2\n";
        let d = read_csv_infer_schema(csv.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }
}
