//! Relational schemas with categorical attributes and a numeric metric.
//!
//! The schema fixes the *bit layout* of contexts: attribute `i`'s domain
//! occupies the contiguous block `[offset(i), offset(i) + |A_i|)` of the
//! context bit vector, and `t = Σ|A_i|` is the total number of attribute
//! values — the length of every context and the degree of every vertex in the
//! context graph.

use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// A categorical attribute: a name plus its full domain of values.
///
/// The PCOR paper stresses (Section 4) that contexts must be defined over the
/// *entire domain* of each attribute — not only the values that happen to be
/// present in the dataset — otherwise the released context itself leaks which
/// values occur. The domain is therefore part of the schema, not derived from
/// the data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute from a name and its domain values.
    ///
    /// # Errors
    /// Returns [`DataError::EmptySchema`] when the domain is empty.
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Result<Self> {
        if values.is_empty() {
            return Err(DataError::EmptySchema);
        }
        Ok(Attribute { name: name.into(), values })
    }

    /// Convenience constructor from string slices.
    ///
    /// # Panics
    /// Panics if the domain is empty; use [`Attribute::new`] for fallible
    /// construction.
    pub fn from_values(name: &str, values: &[&str]) -> Self {
        Attribute::new(name, values.iter().map(|s| s.to_string()).collect())
            .expect("attribute domain must be non-empty")
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values in the attribute's domain, `|A_i|`.
    pub fn domain_size(&self) -> usize {
        self.values.len()
    }

    /// All domain values in order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// The value at `index` within the domain.
    pub fn value(&self, index: usize) -> Option<&str> {
        self.values.get(index).map(|s| s.as_str())
    }

    /// Index of `value` within the domain, if present.
    pub fn value_index(&self, value: &str) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }
}

/// A relational schema: `m` categorical attributes plus one numeric metric
/// attribute `M`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
    metric_name: String,
    /// `offsets[i]` is the bit index where attribute `i`'s block starts.
    offsets: Vec<usize>,
    /// `t = Σ|A_i|`.
    total_values: usize,
}

impl Schema {
    /// Creates a schema from categorical attributes and the metric name.
    ///
    /// # Errors
    /// Returns [`DataError::EmptySchema`] when there are no attributes.
    pub fn new(attributes: Vec<Attribute>, metric_name: impl Into<String>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        let mut offsets = Vec::with_capacity(attributes.len());
        let mut total = 0;
        for attr in &attributes {
            offsets.push(total);
            total += attr.domain_size();
        }
        Ok(Schema { attributes, metric_name: metric_name.into(), offsets, total_values: total })
    }

    /// Number of categorical attributes, `m`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Total number of attribute values, `t = Σ|A_i|` — the context length.
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    /// The categorical attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at index `i`.
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// Name of the numeric metric attribute `M`.
    pub fn metric_name(&self) -> &str {
        &self.metric_name
    }

    /// Bit offset of attribute `i`'s block within a context.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// The bit range occupied by attribute `i`'s block.
    pub fn block(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.offsets[i];
        start..start + self.attributes[i].domain_size()
    }

    /// The context bit index of value `value_idx` of attribute `attr_idx`.
    ///
    /// # Errors
    /// Returns [`DataError::ValueOutOfDomain`] when the value index is outside
    /// the attribute's domain.
    pub fn bit_index(&self, attr_idx: usize, value_idx: usize) -> Result<usize> {
        let domain = self.attributes[attr_idx].domain_size();
        if value_idx >= domain {
            return Err(DataError::ValueOutOfDomain {
                attribute: attr_idx,
                value: value_idx,
                domain_size: domain,
            });
        }
        Ok(self.offsets[attr_idx] + value_idx)
    }

    /// Maps a context bit index back to `(attribute index, value index)`.
    ///
    /// # Panics
    /// Panics if `bit >= t`.
    pub fn bit_to_attr_value(&self, bit: usize) -> (usize, usize) {
        assert!(bit < self.total_values, "bit {bit} out of range (t = {})", self.total_values);
        // Linear scan: m is tiny (3–4 in the paper's datasets).
        for (i, &off) in self.offsets.iter().enumerate() {
            let size = self.attributes[i].domain_size();
            if bit < off + size {
                return (i, bit - off);
            }
        }
        unreachable!("bit index within total_values must fall inside some block")
    }

    /// Looks up an attribute by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// A compact human-readable description, e.g. `JobTitle(9) x Employer(8) x Year(8) | metric Salary`.
    pub fn describe(&self) -> String {
        let attrs: Vec<String> =
            self.attributes.iter().map(|a| format!("{}({})", a.name(), a.domain_size())).collect();
        format!("{} | metric {}", attrs.join(" x "), self.metric_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::from_values("JobTitle", &["CEO", "MedicalDoctor", "Lawyer"]),
                Attribute::from_values("City", &["Montreal", "Ottawa", "Toronto"]),
                Attribute::from_values("District", &["Business", "Historic", "Diplomatic"]),
            ],
            "Salary",
        )
        .unwrap()
    }

    #[test]
    fn offsets_and_total_values() {
        let s = toy_schema();
        assert_eq!(s.num_attributes(), 3);
        assert_eq!(s.total_values(), 9);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 3);
        assert_eq!(s.offset(2), 6);
        assert_eq!(s.block(1), 3..6);
        assert_eq!(s.metric_name(), "Salary");
    }

    #[test]
    fn bit_index_round_trips() {
        let s = toy_schema();
        for attr in 0..s.num_attributes() {
            for val in 0..s.attribute(attr).domain_size() {
                let bit = s.bit_index(attr, val).unwrap();
                assert_eq!(s.bit_to_attr_value(bit), (attr, val));
            }
        }
        assert!(s.bit_index(0, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_to_attr_value_panics_out_of_range() {
        toy_schema().bit_to_attr_value(9);
    }

    #[test]
    fn attribute_value_lookups() {
        let s = toy_schema();
        let a = s.attribute(0);
        assert_eq!(a.name(), "JobTitle");
        assert_eq!(a.domain_size(), 3);
        assert_eq!(a.value_index("Lawyer"), Some(2));
        assert_eq!(a.value_index("Janitor"), None);
        assert_eq!(a.value(1), Some("MedicalDoctor"));
        assert_eq!(a.value(7), None);
        assert_eq!(s.attribute_index("City"), Some(1));
        assert_eq!(s.attribute_index("Nope"), None);
    }

    #[test]
    fn empty_schemas_are_rejected() {
        assert_eq!(Schema::new(vec![], "M").unwrap_err(), DataError::EmptySchema);
        assert_eq!(Attribute::new("A", vec![]).unwrap_err(), DataError::EmptySchema);
    }

    #[test]
    fn describe_is_human_readable() {
        let s = toy_schema();
        assert_eq!(s.describe(), "JobTitle(3) x City(3) x District(3) | metric Salary");
    }

    #[test]
    fn running_example_matches_paper_layout() {
        // The paper's running example: context <101001010> selects
        // JobTitle in {CEO, Lawyer}, City = Toronto, District = Historic.
        let s = toy_schema();
        assert_eq!(s.bit_index(0, 0).unwrap(), 0); // CEO
        assert_eq!(s.bit_index(0, 2).unwrap(), 2); // Lawyer
        assert_eq!(s.bit_index(1, 2).unwrap(), 5); // Toronto
        assert_eq!(s.bit_index(2, 1).unwrap(), 7); // Historic
    }
}
