//! Incremental, allocation-free population evaluation.
//!
//! `Dataset::population` is the inner loop of every PCOR algorithm: the
//! paper's runtime numbers are essentially counts of `f_M` evaluations, and
//! each one filters the dataset. The naive evaluation allocates two fresh
//! [`RecordBitmap`]s and re-runs the OR/AND pass over *all* attributes even
//! though the search algorithms (BFS, DFS, random walk, Gray-code
//! enumeration) only ever move by single-bit context flips.
//!
//! This module provides the machinery that removes both costs:
//!
//! * [`PopulationScratch`] — reusable result/attribute-union bitmaps for
//!   [`Dataset::population_into`](crate::Dataset::population_into), making a
//!   from-scratch evaluation allocation-free after the first call;
//! * [`PopulationCursor`] — a stateful evaluator that caches one union
//!   bitmap *per attribute*. A one-bit context flip then recomputes only the
//!   touched attribute's union (an OR over at most `|A_i|` value bitmaps —
//!   or a single OR when a bit turns on) followed by one fused
//!   AND + popcount pass over the `m` cached unions, instead of the full
//!   per-attribute loop over all selected values;
//! * [`ShardPolicy`] — for large `n`, the fused AND/popcount pass shards the
//!   record-word space across threads, parallelizing evaluation *within* a
//!   single release rather than only across releases (the "dataset sharding"
//!   ROADMAP item). Sharded and serial evaluation are bit-identical: the
//!   pass is an exact word-wise AND. Two execution modes exist: spawning
//!   `std::thread::scope` workers per pass (no setup, but tens of
//!   microseconds of spawn cost, so the auto policy only engages at
//!   [`ShardPolicy::AUTO_MIN_WORDS`] ≈ 4 M records), or — preferred —
//!   submitting the shards to a resident [`pcor_runtime::ThreadPool`]
//!   ([`ShardPolicy::pooled`]), whose amortized dispatch cost is a few
//!   queue operations and therefore pays from
//!   [`ShardPolicy::POOLED_MIN_WORDS`] ≈ 260 k records (measured by the
//!   `pool-breakeven` experiment in `pcor-bench`).

use crate::bitmap::RecordBitmap;
use crate::context::Context;
use crate::dataset::Dataset;
use crate::kernel::{self, KernelFn, KernelKind};
use crate::{DataError, Result};
use pcor_runtime::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative stop probe threaded into sharded fused passes: shards
/// poll it between sub-chunks and abandon the pass when it returns `true`.
/// The closure form keeps `pcor-data` below the crate that owns request
/// lifecycles — `pcor-core` adapts its `CancelToken` (deadline included)
/// into one of these without this crate knowing what a request is.
pub type HaltFn = Arc<dyn Fn() -> bool + Send + Sync>;

/// Reusable buffers for from-scratch population evaluation.
///
/// Create one per long-lived evaluator (verifier, enumeration worker) and
/// pass it to [`Dataset::population_into`](crate::Dataset::population_into);
/// after the first call no evaluation allocates.
#[derive(Debug, Clone)]
pub struct PopulationScratch {
    pub(crate) result: RecordBitmap,
    pub(crate) attr_union: RecordBitmap,
}

impl PopulationScratch {
    /// Creates scratch buffers for datasets of `len` records.
    pub fn new(len: usize) -> Self {
        PopulationScratch { result: RecordBitmap::new(len), attr_union: RecordBitmap::new(len) }
    }

    /// Creates scratch buffers sized for `dataset`.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        PopulationScratch::new(dataset.len())
    }

    /// Number of records the scratch is sized for.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// Whether the scratch addresses zero records.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// The population bitmap of the most recent
    /// [`Dataset::population_into`](crate::Dataset::population_into) call.
    pub fn result(&self) -> &RecordBitmap {
        &self.result
    }

    /// Consumes the scratch, yielding the result bitmap.
    pub fn into_result(self) -> RecordBitmap {
        self.result
    }
}

/// How a sharded fused pass is executed.
#[derive(Debug, Clone, Default)]
enum ShardExecutor {
    /// Spawn fresh `std::thread::scope` workers per pass (the PR 3 design;
    /// pays thread-spawn cost on every pass).
    #[default]
    Spawn,
    /// Submit the shards to a resident work-stealing pool; the submitting
    /// thread helps execute, so dispatch costs a few queue operations.
    Pool(Arc<ThreadPool>),
}

/// How the fused AND/popcount pass of a [`PopulationCursor`] distributes its
/// word range across threads.
///
/// Sharding is exact — the pass is a word-wise AND, so sharded and serial
/// results are bit-identical — but parallelism has a dispatch cost that only
/// pays off once a single pass streams enough memory:
///
/// * spawn-per-pass ([`ShardPolicy::auto`]) costs tens of microseconds of
///   thread spawns and therefore stays serial below
///   [`ShardPolicy::AUTO_MIN_WORDS`] words (≈ 4 M records);
/// * pool-backed ([`ShardPolicy::pooled`]) runs the shards on resident
///   [`pcor_runtime::ThreadPool`] workers — the submitting thread helps
///   execute, so the overhead is a few queue operations and the break-even
///   drops to [`ShardPolicy::POOLED_MIN_WORDS`] words (≈ 260 k records).
///
/// Every policy also carries the [`KernelKind`] its fused passes run with —
/// by default the process-wide dispatched kernel ([`kernel::selected`]), so
/// pooled shards and spawned shards execute the same SIMD implementation as
/// serial passes. [`ShardPolicy::with_kernel`] pins an explicit kernel for
/// in-process comparisons (tests, benchmarks).
#[derive(Clone)]
pub struct ShardPolicy {
    /// Maximum number of worker threads for one pass.
    pub threads: usize,
    /// Minimum number of 64-bit words in the record space before the pass
    /// shards at all.
    pub min_words: usize,
    executor: ShardExecutor,
    kernel: KernelKind,
    /// Cooperative stop probe polled between sub-chunks of every pass
    /// (serial and sharded); `None` means passes always run to completion.
    halt: Option<HaltFn>,
}

impl std::fmt::Debug for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPolicy")
            .field("threads", &self.threads)
            .field("min_words", &self.min_words)
            .field("executor", &self.executor)
            .field("kernel", &self.kernel)
            .field("halt", &self.halt.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl ShardPolicy {
    /// Word threshold of the [`ShardPolicy::auto`] policy: 2^16 words
    /// (≈ 4.2 M records), below which one AND pass is too cheap to amortize
    /// thread spawns.
    pub const AUTO_MIN_WORDS: usize = 1 << 16;

    /// Word threshold of the [`ShardPolicy::pooled`] policy: 2^12 words
    /// (≈ 260 k records). A resident pool's fork-join dispatch is a few
    /// queue operations plus at most one wake, which one pass over a few
    /// kilowords already amortizes — see `BENCH_pool.json` for the
    /// spawn-vs-pool crossover measurement.
    pub const POOLED_MIN_WORDS: usize = 1 << 12;

    /// Never shard; every pass runs on the calling thread.
    pub fn serial() -> Self {
        ShardPolicy {
            threads: 1,
            min_words: usize::MAX,
            executor: ShardExecutor::Spawn,
            kernel: kernel::selected(),
            halt: None,
        }
    }

    /// Shard across up to `available_parallelism` (capped at 8) spawned
    /// threads once the record space reaches
    /// [`ShardPolicy::AUTO_MIN_WORDS`] words.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        ShardPolicy {
            threads,
            min_words: Self::AUTO_MIN_WORDS,
            executor: ShardExecutor::Spawn,
            kernel: kernel::selected(),
            halt: None,
        }
    }

    /// Shard every pass across `threads` spawned workers regardless of size
    /// — for tests (bit-identity against serial) and benchmarks; production
    /// code should prefer [`ShardPolicy::auto`] or [`ShardPolicy::pooled`].
    pub fn forced(threads: usize) -> Self {
        ShardPolicy {
            threads: threads.max(1),
            min_words: 0,
            executor: ShardExecutor::Spawn,
            kernel: kernel::selected(),
            halt: None,
        }
    }

    /// Shard on the resident `pool` once the record space reaches
    /// [`ShardPolicy::POOLED_MIN_WORDS`] words, using up to one shard per
    /// pool worker. A pool with a single worker yields a serial policy
    /// (sharding cannot win without parallelism), so this is always safe to
    /// request — the policy right-sizes itself to the machine.
    pub fn pooled(pool: Arc<ThreadPool>) -> Self {
        let threads = pool.workers();
        ShardPolicy {
            threads,
            min_words: Self::POOLED_MIN_WORDS,
            executor: ShardExecutor::Pool(pool),
            kernel: kernel::selected(),
            halt: None,
        }
    }

    /// Shard every pass on `pool` across `threads` shards regardless of
    /// size — the pooled counterpart of [`ShardPolicy::forced`], for tests
    /// and benchmarks.
    pub fn pooled_forced(pool: Arc<ThreadPool>, threads: usize) -> Self {
        ShardPolicy {
            threads: threads.max(1),
            min_words: 0,
            executor: ShardExecutor::Pool(pool),
            kernel: kernel::selected(),
            halt: None,
        }
    }

    /// Pins an explicit fused-pass kernel on this policy. Unsupported kinds
    /// degrade to the scalar implementation at dispatch time
    /// ([`KernelKind::func`]), so a pinned policy is always safe to run.
    ///
    /// The default for every constructor is [`kernel::selected`] — the
    /// process-wide dispatched kernel (honoring `PCOR_KERNEL`); pinning is
    /// for comparing kernels within one process.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The fused-pass kernel this policy's passes run with.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The resident pool this policy executes on, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        match &self.executor {
            ShardExecutor::Pool(pool) => Some(pool),
            ShardExecutor::Spawn => None,
        }
    }

    /// Attaches a cooperative stop probe: every fused pass (serial or
    /// sharded) polls it between sub-chunks and abandons the pass —
    /// marking its cursor [`PopulationCursor::interrupted`] — when it
    /// returns `true`. This is how a request deadline reaches into a pass
    /// already running on pool workers: the probe typically wraps a cancel
    /// token shared with the request lifecycle.
    #[must_use]
    pub fn with_halt(mut self, halt: HaltFn) -> Self {
        self.halt = Some(halt);
        self
    }

    /// Installs or clears the stop probe in place (see
    /// [`ShardPolicy::with_halt`]).
    pub fn set_halt(&mut self, halt: Option<HaltFn>) {
        self.halt = halt;
    }

    /// The installed stop probe, if any.
    pub fn halt(&self) -> Option<&HaltFn> {
        self.halt.as_ref()
    }

    /// The number of shards a pass over `words` words uses under this policy.
    fn shards_for(&self, words: usize) -> usize {
        if self.threads > 1 && words >= self.min_words {
            self.threads.min(words.max(1))
        } else {
            1
        }
    }
}

impl PartialEq for ShardPolicy {
    fn eq(&self, other: &Self) -> bool {
        let same_executor = match (&self.executor, &other.executor) {
            (ShardExecutor::Spawn, ShardExecutor::Spawn) => true,
            (ShardExecutor::Pool(a), ShardExecutor::Pool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        let same_halt = match (&self.halt, &other.halt) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.threads == other.threads
            && self.min_words == other.min_words
            && self.kernel == other.kernel
            && same_executor
            && same_halt
    }
}

impl Eq for ShardPolicy {}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy::auto()
    }
}

/// A stateful population evaluator positioned at one context.
///
/// The cursor caches the per-attribute union bitmap
/// `U_i = OR over selected values j of attribute i (B_ij)` for its current
/// context. Moving to a connected context (one-bit flip) updates only the
/// touched attribute's union — a single OR when the bit turns on, an OR over
/// the block's remaining selected values when it turns off — and the
/// population is then one fused AND + popcount pass over the `m` cached
/// unions. No step allocates.
///
/// [`PopulationCursor::move_to`] generalizes to arbitrary jumps at cost
/// proportional to the number of *attributes* whose selection changed, so a
/// cursor is never slower than a from-scratch evaluation and strictly
/// cheaper for the local moves every search algorithm makes.
#[derive(Debug)]
pub struct PopulationCursor<'a> {
    dataset: &'a Dataset,
    context: Context,
    /// One cached union bitmap per attribute.
    attr_unions: Vec<RecordBitmap>,
    /// Number of selected values per attribute (0 ⇒ empty population).
    selected: Vec<usize>,
    /// Scratch flags for [`PopulationCursor::move_to`] (one per attribute).
    touched: Vec<bool>,
    result: RecordBitmap,
    population_size: usize,
    /// Whether `result`/`population_size` reflect the current context.
    fresh: bool,
    /// Whether the last pass was abandoned by the policy's halt probe. An
    /// interrupted pass leaves `result` partial and `population_size` at 0,
    /// and `fresh` stays false so the next accessor recomputes; callers
    /// observing this must discard the evaluation (and not let a moment
    /// tracker sync against the partial bitmap).
    interrupted: bool,
    policy: ShardPolicy,
    /// The fused-pass implementation, resolved once from the policy's
    /// [`KernelKind`]; serial passes and every shard call the same pointer.
    kernel: KernelFn,
    /// Per-shard popcount slots, reused across passes (no per-pass alloc).
    shard_counts: Vec<usize>,
    /// Total bitmap words read by fused passes over the cursor's lifetime.
    words_scanned: u64,
    /// Incremental sufficient statistics for moment-decidable detectors,
    /// enabled by [`PopulationCursor::track_moments`].
    moments: Option<MomentTracker>,
    /// Whether the population may have moved since the tracker last synced.
    moments_dirty: bool,
    /// Words read by moment syncs (bitmap diffs + one word per metric load),
    /// metered separately from the fused passes.
    moment_words: u64,
}

impl<'a> PopulationCursor<'a> {
    /// Default drift-bound refresh interval of the moment tracker: after
    /// this many consecutive delta syncs the statistics are rebuilt from
    /// scratch. Each delta applies two compensated additions whose rounding
    /// error is bounded by a few ulps of the running magnitude, so even 256
    /// deltas stay far inside the slack of any detector threshold; the
    /// scheduled rescan makes the bound unconditional rather than
    /// statistical.
    pub const MOMENT_REFRESH_INTERVAL: u32 = 256;

    /// Positions a new cursor at `context` with the default (auto) shard
    /// policy.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does
    /// not match the dataset's schema.
    pub fn new(dataset: &'a Dataset, context: &Context) -> Result<Self> {
        Self::with_policy(dataset, context, ShardPolicy::auto())
    }

    /// Positions a new cursor at `context` with an explicit shard policy.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does
    /// not match the dataset's schema.
    pub fn with_policy(
        dataset: &'a Dataset,
        context: &Context,
        policy: ShardPolicy,
    ) -> Result<Self> {
        let schema = dataset.schema();
        if context.len() != schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: schema.total_values(),
                actual: context.len(),
            });
        }
        let n = dataset.len();
        let m = schema.num_attributes();
        let shard_slots = policy.threads.max(1);
        let kernel_fn = policy.kernel.func();
        let mut cursor = PopulationCursor {
            dataset,
            context: context.clone(),
            attr_unions: vec![RecordBitmap::new(n); m],
            selected: vec![0; m],
            touched: vec![false; m],
            result: RecordBitmap::new(n),
            population_size: 0,
            fresh: false,
            interrupted: false,
            policy,
            kernel: kernel_fn,
            shard_counts: vec![0; shard_slots],
            words_scanned: 0,
            moments: None,
            moments_dirty: false,
            moment_words: 0,
        };
        for attr in 0..m {
            cursor.rebuild_union(attr);
        }
        Ok(cursor)
    }

    /// The context the cursor is positioned at.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The dataset the cursor evaluates against.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The shard policy of the fused AND/popcount pass.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Installs or clears the halt probe on this cursor's policy — the
    /// hook [`ShardPolicy::with_halt`] describes, but applicable to a
    /// cursor that already exists (a verifier positions its cursor lazily
    /// and may receive its cancel token either side of that).
    pub fn set_halt(&mut self, halt: Option<HaltFn>) {
        self.policy.set_halt(halt);
    }

    /// Whether the most recent pass was abandoned by the halt probe. The
    /// cursor stays usable — the next accessor recomputes from the cached
    /// unions — but the evaluation that set this flag must be discarded.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Total bitmap words read by the cursor's fused AND/popcount passes so
    /// far (each pass reads `words × attribute count` words; ×8 gives the
    /// bytes the hot loop touched). Telemetry feeds this into the
    /// `verify-hotpath` bytes/sec figure.
    pub fn words_scanned(&self) -> u64 {
        self.words_scanned
    }

    /// Flips one context bit and updates the touched attribute's cached
    /// union. Returns the bit's new value. Cost: one bitmap OR when the bit
    /// turns on, an OR over the block's remaining selected values when it
    /// turns off. The population itself is recomputed lazily on the next
    /// [`PopulationCursor::population`] call.
    ///
    /// # Panics
    /// Panics if `bit` is out of range for the schema.
    pub fn flip(&mut self, bit: usize) -> bool {
        let now_set = self.context.flip(bit);
        let (attr, _) = self.dataset.schema().bit_to_attr_value(bit);
        if now_set {
            self.attr_unions[attr].union_with(self.dataset.value_bitmap(bit));
            self.selected[attr] += 1;
        } else {
            self.selected[attr] -= 1;
            self.rebuild_union(attr);
        }
        self.fresh = false;
        self.moments_dirty = true;
        now_set
    }

    /// Repositions the cursor at `target`, rebuilding only the unions of
    /// attributes whose selection actually changed.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the target does not
    /// match the schema.
    pub fn move_to(&mut self, target: &Context) -> Result<()> {
        let schema = self.dataset.schema();
        if target.len() != schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: schema.total_values(),
                actual: target.len(),
            });
        }
        self.touched.iter_mut().for_each(|t| *t = false);
        let mut any = false;
        for (word_index, (current, wanted)) in
            self.context.words().iter().zip(target.words()).enumerate()
        {
            let mut diff = current ^ wanted;
            while diff != 0 {
                let bit = word_index * 64 + diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let (attr, _) = schema.bit_to_attr_value(bit);
                self.touched[attr] = true;
                any = true;
            }
        }
        if !any {
            return Ok(());
        }
        self.context.words_mut().copy_from_slice(target.words());
        for attr in 0..self.touched.len() {
            if self.touched[attr] {
                self.rebuild_union(attr);
            }
        }
        self.fresh = false;
        self.moments_dirty = true;
        Ok(())
    }

    /// The population bitmap `D_C` of the current context. Recomputes the
    /// fused AND/popcount pass only when the context moved since the last
    /// call.
    pub fn population(&mut self) -> &RecordBitmap {
        self.refresh();
        &self.result
    }

    /// The population size `|D_C|` of the current context.
    pub fn population_size(&mut self) -> usize {
        self.refresh();
        self.population_size
    }

    /// Refreshes and returns the current `(context, population, |D_C|)` as
    /// simultaneous shared borrows — the shape the verification hot path
    /// needs (coverage probe, utility scoring and metric gather all read the
    /// same evaluation).
    pub fn evaluated(&mut self) -> (&Context, &RecordBitmap, usize) {
        self.refresh();
        (&self.context, &self.result, self.population_size)
    }

    /// Enables incremental moment tracking with deviations centered on
    /// `origin` (the queried record's metric — see
    /// [`Dataset::population_metric_moments`] for why the origin matters
    /// numerically), using the default refresh interval
    /// [`PopulationCursor::MOMENT_REFRESH_INTERVAL`].
    pub fn track_moments(&mut self, origin: f64) {
        self.track_moments_every(origin, Self::MOMENT_REFRESH_INTERVAL);
    }

    /// Enables incremental moment tracking with an explicit drift-bound
    /// refresh interval: after `refresh_every` delta syncs the tracker
    /// rebuilds its statistics from scratch, discarding any accumulated
    /// floating-point drift. `refresh_every` is clamped to at least 1;
    /// interval 1 degenerates to a full rescan on every sync (useful in
    /// tests as the drift-free reference).
    pub fn track_moments_every(&mut self, origin: f64, refresh_every: u32) {
        self.moments = Some(MomentTracker::new(origin, self.dataset.len(), refresh_every.max(1)));
        self.moments_dirty = true;
    }

    /// The `(Σ x, Σ (x − x̄)²)` sufficient statistics of the current
    /// population's metric values — the same quantities as
    /// [`Dataset::population_metric_moments`] with the tracker's origin, but
    /// maintained incrementally: the tracker diffs the population bitmap
    /// against its last-synced copy and applies per-record deltas under
    /// compensated (Neumaier) summation, instead of rescanning every member.
    /// A scheduled full rescan every `refresh_every` syncs bounds drift.
    ///
    /// # Panics
    /// Panics unless [`PopulationCursor::track_moments`] enabled tracking.
    pub fn moments(&mut self) -> (f64, f64) {
        self.refresh();
        if self.interrupted {
            // The pass was abandoned and `result` is partial garbage: do not
            // sync the tracker against it (and keep `moments_dirty` set so
            // the next complete pass does sync). The stale statistics
            // returned here are as discarded as the evaluation itself.
            let tracker = self
                .moments
                .as_ref()
                .expect("moment tracking not enabled; call track_moments() first");
            return tracker.moments();
        }
        let metrics = self.dataset.metrics();
        let dirty = std::mem::take(&mut self.moments_dirty);
        let PopulationCursor { result, moments, moment_words, population_size, .. } = self;
        let tracker =
            moments.as_mut().expect("moment tracking not enabled; call track_moments() first");
        if dirty || !tracker.synced {
            *moment_words += tracker.sync(result, metrics);
        }
        debug_assert_eq!(tracker.count, *population_size, "tracker count diverged");
        tracker.moments()
    }

    /// Words read by moment syncs so far (bitmap-diff words plus one word
    /// per `f64` metric load) — the incremental counterpart of the
    /// full-rescan cost `words + |D_C|` per call. Metered separately from
    /// [`PopulationCursor::words_scanned`].
    pub fn moment_words_scanned(&self) -> u64 {
        self.moment_words
    }

    /// Number of full moment rescans performed (first sync + scheduled
    /// drift-bound refreshes).
    pub fn moment_full_refreshes(&self) -> u64 {
        self.moments.as_ref().map_or(0, |t| t.full_refreshes)
    }

    /// Number of incremental (diff-based) moment syncs performed.
    pub fn moment_delta_syncs(&self) -> u64 {
        self.moments.as_ref().map_or(0, |t| t.delta_syncs)
    }

    /// Rebuilds `attr`'s union from the context's selected values and resets
    /// the selected count.
    fn rebuild_union(&mut self, attr: usize) {
        let schema = self.dataset.schema();
        let union = &mut self.attr_unions[attr];
        union.clear();
        let mut count = 0;
        for bit in schema.block(attr) {
            if self.context.get(bit) {
                union.union_with(self.dataset.value_bitmap(bit));
                count += 1;
            }
        }
        self.selected[attr] = count;
    }

    /// Recomputes the result bitmap and popcount when stale: one fused pass
    /// computing `AND over attributes i (U_i)` word by word, sharded across
    /// threads — spawned or pool-resident per the policy — when the policy
    /// and size warrant it.
    fn refresh(&mut self) {
        if self.fresh {
            return;
        }
        self.fresh = true;
        self.interrupted = false;
        if self.selected.contains(&0) {
            // Ill-formed context (an attribute with no selected value):
            // empty population by definition.
            self.result.clear();
            self.population_size = 0;
            return;
        }
        let halt = self.policy.halt().cloned();
        if halt.as_ref().is_some_and(|probe| probe()) {
            // Already cancelled before any work: abandon without touching
            // the bitmap so the caller can discard and retry cheaply.
            self.fresh = false;
            self.interrupted = true;
            self.population_size = 0;
            return;
        }
        let halted = AtomicBool::new(false);
        let PopulationCursor { attr_unions, result, shard_counts, kernel, .. } = self;
        let kernel = *kernel;
        let (first, rest) = attr_unions.split_first().expect("schemas have >= 1 attribute");
        let out = result.words_mut();
        // One fused pass reads every output word once from `first` and once
        // per remaining attribute union.
        self.words_scanned += (out.len() * (1 + rest.len())) as u64;
        let shards = self.policy.shards_for(out.len());
        // `Option<(&HaltFn, &AtomicBool)>` is `Copy`, so each shard closure
        // captures its own copy of the probe pair.
        let probe = halt.as_ref().map(|probe| (probe, &halted));
        if shards <= 1 {
            self.population_size = run_shard(kernel, first.words(), rest, out, 0, probe);
        } else {
            let chunk = out.len().div_ceil(shards);
            match &self.policy.executor {
                ShardExecutor::Spawn => {
                    // Per-shard counts land in the reusable `shard_counts`
                    // slots (no per-pass handle collection);
                    // `std::thread::scope` joins every spawned worker on exit
                    // and propagates its panic.
                    std::thread::scope(|scope| {
                        for ((shard, out_chunk), count) in
                            out.chunks_mut(chunk).enumerate().zip(shard_counts.iter_mut())
                        {
                            let lo = shard * chunk;
                            let first_words = &first.words()[lo..lo + out_chunk.len()];
                            scope.spawn(move || {
                                *count = run_shard(kernel, first_words, rest, out_chunk, lo, probe);
                            });
                        }
                    });
                    let used = out.len().div_ceil(chunk);
                    self.population_size = shard_counts[..used].iter().sum();
                }
                ShardExecutor::Pool(pool) => {
                    // Resident workers steal the shards while the submitting
                    // thread helps execute — the dispatch overhead is a few
                    // queue operations, which is what lowers the break-even to
                    // `POOLED_MIN_WORDS`. Per-shard counts land in reusable
                    // slots; a shard panic propagates out of `scope` like the
                    // spawn path's join would.
                    pool.scope(|scope| {
                        for ((shard, out_chunk), count) in
                            out.chunks_mut(chunk).enumerate().zip(shard_counts.iter_mut())
                        {
                            let lo = shard * chunk;
                            let first_words = &first.words()[lo..lo + out_chunk.len()];
                            scope.spawn(move || {
                                *count = run_shard(kernel, first_words, rest, out_chunk, lo, probe);
                            });
                        }
                    });
                    let used = out.len().div_ceil(chunk);
                    self.population_size = shard_counts[..used].iter().sum();
                }
            }
        }
        if halted.load(Ordering::Relaxed) {
            // Partial pass: `result` holds a mix of new and stale words.
            // Leave the cursor stale so the next accessor recomputes, and
            // flag the interruption so this evaluation gets discarded.
            self.fresh = false;
            self.interrupted = true;
            self.population_size = 0;
        }
    }
}

/// Granularity, in output words, between halt-probe checks inside one shard
/// of the fused pass. 4096 words (32 KiB of `first` plus the same per
/// remaining attribute) amortises the probe to well under 1% of kernel time
/// while bounding cancellation latency to microseconds per shard.
const HALT_CHECK_WORDS: usize = 1 << 12;

/// Runs `kernel` over one shard's words. With no halt probe this is a single
/// kernel call; with one, the shard proceeds in [`HALT_CHECK_WORDS`]-word
/// sub-chunks, checking the shared `halted` flag and the probe between them.
/// Once any shard observes a halt it publishes it so sibling shards stop at
/// their next boundary, and the partial count returned is meaningless — the
/// caller discards the whole pass.
fn run_shard(
    kernel: KernelFn,
    first: &[u64],
    rest: &[RecordBitmap],
    out: &mut [u64],
    lo: usize,
    halt: Option<(&HaltFn, &AtomicBool)>,
) -> usize {
    let Some((halt, halted)) = halt else {
        return kernel(first, rest, out, lo);
    };
    let total = out.len();
    let mut count = 0;
    let mut done = 0;
    while done < total {
        if halted.load(Ordering::Relaxed) || halt() {
            halted.store(true, Ordering::Relaxed);
            return count;
        }
        let len = HALT_CHECK_WORDS.min(total - done);
        count += kernel(&first[done..done + len], rest, &mut out[done..done + len], lo + done);
        done += len;
    }
    count
}

/// Incrementally maintained centered sufficient statistics of a population's
/// metric values: exact integer `count`, and compensated accumulators for
/// `Σ d` and `Σ d²` with `d = x − origin`.
///
/// The tracker keeps a copy of the population bitmap as of its last sync
/// (`prev`). Syncing XOR-diffs the current population against that copy and
/// applies one add/remove delta per changed record — `O(words)` streaming
/// over two bitmaps plus `O(changed)` metric loads, instead of the full
/// rescan's one metric load per population member. Because deltas are
/// floating-point additions, error can accumulate over long flip sequences;
/// Neumaier compensation keeps the per-delta error at a few ulps and a
/// scheduled full rescan every `refresh_every` syncs re-zeroes the drift
/// outright, so verdicts may safely depend on the tracked values.
#[derive(Debug)]
struct MomentTracker {
    /// Deviation origin (the queried record's metric).
    origin: f64,
    /// Population bitmap as of the last sync.
    prev: RecordBitmap,
    /// Exact member count as of the last sync.
    count: usize,
    /// Compensated `Σ (x − origin)` over current members.
    sum_dev: Neumaier,
    /// Compensated `Σ (x − origin)²` over current members.
    sum_sq: Neumaier,
    /// Whether the tracker has synced at least once since construction.
    synced: bool,
    /// Delta syncs since the last full rescan.
    syncs_since_refresh: u32,
    /// Drift bound: full rescan after this many delta syncs.
    refresh_every: u32,
    /// Lifetime full rescans (first sync + scheduled refreshes).
    full_refreshes: u64,
    /// Lifetime delta syncs.
    delta_syncs: u64,
}

impl MomentTracker {
    fn new(origin: f64, len: usize, refresh_every: u32) -> Self {
        MomentTracker {
            origin,
            prev: RecordBitmap::new(len),
            count: 0,
            sum_dev: Neumaier::default(),
            sum_sq: Neumaier::default(),
            synced: false,
            syncs_since_refresh: 0,
            refresh_every,
            full_refreshes: 0,
            delta_syncs: 0,
        }
    }

    /// Brings the statistics in line with `result`, returning the number of
    /// words read (bitmap words + one per metric load).
    fn sync(&mut self, result: &RecordBitmap, metrics: &[f64]) -> u64 {
        if !self.synced || self.syncs_since_refresh >= self.refresh_every {
            return self.rescan(result, metrics);
        }
        let words = result.words();
        let prev = self.prev.words_mut();
        let mut changed = 0u64;
        for (word_index, (&now, old)) in words.iter().zip(prev.iter_mut()).enumerate() {
            let mut diff = now ^ *old;
            if diff == 0 {
                continue;
            }
            *old = now;
            while diff != 0 {
                let id = word_index * 64 + diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let d = metrics[id] - self.origin;
                if (now >> (id % 64)) & 1 == 1 {
                    self.count += 1;
                    self.sum_dev.add(d);
                    self.sum_sq.add(d * d);
                } else {
                    self.count -= 1;
                    self.sum_dev.add(-d);
                    self.sum_sq.add(-(d * d));
                }
                changed += 1;
            }
        }
        self.syncs_since_refresh += 1;
        self.delta_syncs += 1;
        2 * words.len() as u64 + changed
    }

    /// Full rescan: copies the population into `prev` and rebuilds both
    /// accumulators from scratch, zeroing any accumulated drift.
    fn rescan(&mut self, result: &RecordBitmap, metrics: &[f64]) -> u64 {
        self.prev.words_mut().copy_from_slice(result.words());
        self.count = 0;
        self.sum_dev = Neumaier::default();
        self.sum_sq = Neumaier::default();
        for id in result.iter_ones() {
            let d = metrics[id] - self.origin;
            self.sum_dev.add(d);
            self.sum_sq.add(d * d);
            self.count += 1;
        }
        self.synced = true;
        self.syncs_since_refresh = 0;
        self.full_refreshes += 1;
        2 * result.words().len() as u64 + self.count as u64
    }

    /// The `(Σ x, Σ (x − x̄)²)` pair, de-centered exactly like
    /// [`Dataset::population_metric_moments`] (same shifted-variance
    /// identity, same zero clamp) so the two paths agree to summation order.
    fn moments(&self) -> (f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0);
        }
        let sum_dev = self.sum_dev.value();
        let sum = self.origin * self.count as f64 + sum_dev;
        let sum_sq_dev = (self.sum_sq.value() - sum_dev * sum_dev / self.count as f64).max(0.0);
        (sum, sum_sq_dev)
    }
}

/// Neumaier (improved Kahan) compensated accumulator: tracks the rounding
/// error of every addition in a parallel compensation term, so sums of
/// mixed-sign deltas with adversarial magnitudes stay accurate to a few ulps
/// of the running total instead of drifting with the sequence length.
#[derive(Debug, Clone, Copy, Default)]
struct Neumaier {
    sum: f64,
    compensation: f64,
}

impl Neumaier {
    fn add(&mut self, value: f64) {
        let total = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - total) + value;
        } else {
            self.compensation += (value - total) + self.sum;
        }
        self.sum = total;
    }

    fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Attribute, Schema};
    use pcor_runtime::ThreadPool;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1"]),
                Attribute::from_values("C", &["c0", "c1", "c2", "c3"]),
            ],
            "M",
        )
        .unwrap();
        let records = (0..200u32)
            .map(|i| {
                Record::new(
                    vec![(i % 3) as u16, ((i / 3) % 2) as u16, ((i / 7) % 4) as u16],
                    i as f64,
                )
            })
            .collect();
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn cursor_matches_from_scratch_population_after_flips() {
        let d = dataset();
        let t = d.schema().total_values();
        let start = Context::from_indices(t, [0, 3, 5]);
        let mut cursor = PopulationCursor::new(&d, &start).unwrap();
        let mut reference = start.clone();
        // A deterministic pseudo-random flip sequence.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bit = (state >> 33) as usize % t;
            cursor.flip(bit);
            reference.flip(bit);
            let expected = d.population(&reference).unwrap();
            assert_eq!(cursor.population(), &expected);
            assert_eq!(cursor.population_size(), expected.count());
            assert_eq!(cursor.context(), &reference);
        }
    }

    #[test]
    fn move_to_handles_arbitrary_jumps() {
        let d = dataset();
        let t = d.schema().total_values();
        let mut cursor = PopulationCursor::new(&d, &Context::empty(t)).unwrap();
        let targets = [
            Context::full(t),
            Context::from_indices(t, [1, 4, 6, 8]),
            Context::empty(t),
            Context::from_indices(t, [0, 1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        for target in &targets {
            cursor.move_to(target).unwrap();
            let expected = d.population(target).unwrap();
            assert_eq!(cursor.population(), &expected);
        }
        // A no-op move keeps the cached result valid.
        let before = cursor.population_size();
        cursor.move_to(&targets[targets.len() - 1].clone()).unwrap();
        assert_eq!(cursor.population_size(), before);
    }

    #[test]
    fn sharded_pass_is_bit_identical_to_serial() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::from_indices(t, [0, 2, 3, 5, 7]);
        let mut serial =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        let mut sharded =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::forced(4)).unwrap();
        assert_eq!(serial.population(), sharded.population());
        assert_eq!(serial.population_size(), sharded.population_size());
        for bit in 0..t {
            serial.flip(bit);
            sharded.flip(bit);
            assert_eq!(serial.population(), sharded.population());
        }
    }

    #[test]
    fn ill_formed_contexts_have_empty_populations() {
        let d = dataset();
        let t = d.schema().total_values();
        // No value of attribute B selected.
        let context = Context::from_indices(t, [0, 6]);
        let mut cursor = PopulationCursor::new(&d, &context).unwrap();
        assert_eq!(cursor.population_size(), 0);
        assert_eq!(cursor.population().count(), 0);
        // Selecting a B value repairs it.
        cursor.flip(3);
        assert!(cursor.population_size() > 0);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let d = dataset();
        assert!(PopulationCursor::new(&d, &Context::empty(3)).is_err());
        let t = d.schema().total_values();
        let mut cursor = PopulationCursor::new(&d, &Context::empty(t)).unwrap();
        assert!(cursor.move_to(&Context::empty(3)).is_err());
    }

    #[test]
    fn scratch_reports_its_capacity() {
        let d = dataset();
        let scratch = PopulationScratch::for_dataset(&d);
        assert_eq!(scratch.len(), d.len());
        assert!(!scratch.is_empty());
        assert!(PopulationScratch::new(0).is_empty());
    }

    #[test]
    fn shard_policy_thresholds() {
        assert_eq!(ShardPolicy::serial().shards_for(1 << 20), 1);
        assert_eq!(ShardPolicy::forced(4).shards_for(10), 4);
        assert_eq!(ShardPolicy::forced(4).shards_for(2), 2);
        let auto = ShardPolicy::auto();
        assert_eq!(auto.shards_for(ShardPolicy::AUTO_MIN_WORDS - 1), 1);
        assert_eq!(ShardPolicy::default(), auto);
        const _: () = assert!(ShardPolicy::POOLED_MIN_WORDS < ShardPolicy::AUTO_MIN_WORDS);
    }

    #[test]
    fn pooled_policy_right_sizes_to_the_pool_and_compares_by_pool_identity() {
        let pool = Arc::new(ThreadPool::new(3));
        let policy = ShardPolicy::pooled(Arc::clone(&pool));
        assert_eq!(policy.threads, 3);
        assert_eq!(policy.min_words, ShardPolicy::POOLED_MIN_WORDS);
        assert!(policy.pool().is_some());
        assert_eq!(policy.shards_for(ShardPolicy::POOLED_MIN_WORDS), 3);
        assert_eq!(policy.shards_for(ShardPolicy::POOLED_MIN_WORDS - 1), 1);
        // A single-worker pool yields a policy that never shards.
        let lone = ShardPolicy::pooled(Arc::new(ThreadPool::new(1)));
        assert_eq!(lone.shards_for(1 << 20), 1);
        // Equality is by pool identity, not by configuration.
        assert_eq!(policy, ShardPolicy::pooled(Arc::clone(&pool)));
        assert_ne!(policy, ShardPolicy::pooled(Arc::new(ThreadPool::new(3))));
        assert_ne!(policy, ShardPolicy::auto());
    }

    #[test]
    fn pool_sharded_pass_is_bit_identical_to_serial() {
        let d = dataset();
        let t = d.schema().total_values();
        let pool = Arc::new(ThreadPool::new(2));
        let context = Context::from_indices(t, [0, 2, 3, 5, 7]);
        let mut serial =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        let mut pooled = PopulationCursor::with_policy(
            &d,
            &context,
            ShardPolicy::pooled_forced(Arc::clone(&pool), 4),
        )
        .unwrap();
        assert_eq!(serial.population(), pooled.population());
        assert_eq!(serial.population_size(), pooled.population_size());
        for bit in 0..t {
            serial.flip(bit);
            pooled.flip(bit);
            assert_eq!(serial.population(), pooled.population());
            assert_eq!(serial.population_size(), pooled.population_size());
        }
        // The pool actually executed fork-join work for those passes.
        assert!(pool.stats().tasks_submitted > 0);
    }

    #[test]
    fn tracked_moments_match_from_scratch_over_flips() {
        let d = dataset();
        let t = d.schema().total_values();
        let origin = d.metric(42);
        let start = Context::from_indices(t, [0, 3, 5]);
        let mut cursor = PopulationCursor::new(&d, &start).unwrap();
        // Interval 3 forces several refresh boundaries inside the walk.
        cursor.track_moments_every(origin, 3);
        let mut state = 0x9E3779B97F4A7C15u64;
        for step in 0..100 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cursor.flip((state >> 33) as usize % t);
            let (sum, sum_sq_dev) = cursor.moments();
            let expected = d.population_metric_moments(cursor.population(), origin);
            let tol = 1e-9 * (1.0 + expected.0.abs());
            assert!((sum - expected.0).abs() <= tol, "step {step}: sum {sum} vs {expected:?}");
            let tol = 1e-9 * (1.0 + expected.1.abs());
            assert!((sum_sq_dev - expected.1).abs() <= tol, "step {step}: sq {sum_sq_dev}");
        }
        assert!(cursor.moment_full_refreshes() > 1, "refresh boundary never crossed");
        assert!(cursor.moment_delta_syncs() > cursor.moment_full_refreshes());
        assert!(cursor.moment_words_scanned() > 0);
    }

    #[test]
    fn tracked_moments_skip_sync_when_population_unchanged() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::full(t);
        let mut cursor = PopulationCursor::new(&d, &context).unwrap();
        cursor.track_moments(d.metric(0));
        let first = cursor.moments();
        let words_after_first = cursor.moment_words_scanned();
        // No movement between calls: the tracker must not re-diff.
        assert_eq!(cursor.moments(), first);
        assert_eq!(cursor.moment_words_scanned(), words_after_first);
    }

    #[test]
    #[should_panic(expected = "moment tracking not enabled")]
    fn moments_without_tracking_panics() {
        let d = dataset();
        let t = d.schema().total_values();
        let mut cursor = PopulationCursor::new(&d, &Context::full(t)).unwrap();
        cursor.moments();
    }

    #[test]
    fn policies_carry_kernels_and_cursors_run_them_identically() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::from_indices(t, [0, 2, 3, 5, 7]);
        let mut reference =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        for kind in crate::kernel::KernelKind::supported() {
            let policy = ShardPolicy::serial().with_kernel(kind);
            assert_eq!(policy.kernel(), kind);
            // Kernel participates in policy equality.
            if kind != ShardPolicy::serial().kernel() {
                assert_ne!(policy, ShardPolicy::serial());
            }
            let mut cursor = PopulationCursor::with_policy(&d, &context, policy).unwrap();
            assert_eq!(cursor.population(), reference.population());
            assert_eq!(cursor.population_size(), reference.population_size());
        }
    }

    #[test]
    fn neumaier_recovers_catastrophic_cancellation() {
        // 1e16 + 1 − 1e16 loses the 1 in naive f64 summation.
        let mut naive = 0.0f64;
        let mut comp = Neumaier::default();
        for x in [1e16, 1.0, -1e16] {
            naive += x;
            comp.add(x);
        }
        assert_eq!(naive, 0.0);
        assert_eq!(comp.value(), 1.0);
    }

    #[test]
    fn pool_sharded_pass_survives_pool_shutdown() {
        // After shutdown the scope degenerates to an inline serial loop; the
        // evaluation must stay available and bit-identical.
        let d = dataset();
        let t = d.schema().total_values();
        let pool = Arc::new(ThreadPool::new(2));
        let context = Context::from_indices(t, [0, 3, 5]);
        let mut pooled = PopulationCursor::with_policy(
            &d,
            &context,
            ShardPolicy::pooled_forced(pool.clone(), 2),
        )
        .unwrap();
        pool.shutdown();
        let expected = d.population(&context).unwrap();
        assert_eq!(pooled.population(), &expected);
    }

    #[test]
    fn halt_before_any_work_interrupts_and_recovers() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::from_indices(t, [0, 3, 5]);
        let mut cursor =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        cursor.set_halt(Some(Arc::new(|| true)));
        assert_eq!(cursor.population_size(), 0);
        assert!(cursor.interrupted());
        // Clearing the halt recovers the exact evaluation: `fresh` stayed
        // false, so the next accessor recomputes from the cached unions.
        cursor.set_halt(None);
        let expected = d.population(&context).unwrap();
        assert_eq!(cursor.population(), &expected);
        assert!(!cursor.interrupted());
    }

    #[test]
    fn halt_mid_pass_discards_partial_result_across_executors() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::from_indices(t, [0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let pool = Arc::new(ThreadPool::new(2));
        for policy in
            [ShardPolicy::serial(), ShardPolicy::forced(2), ShardPolicy::pooled_forced(pool, 2)]
        {
            let mut cursor = PopulationCursor::with_policy(&d, &context, policy).unwrap();
            // Fires on the second probe: the up-front check passes, then the
            // first shard to probe again trips it and publishes the halt.
            let probes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let seen = Arc::clone(&probes);
            cursor.set_halt(Some(Arc::new(move || seen.fetch_add(1, Ordering::Relaxed) >= 1)));
            assert_eq!(cursor.population_size(), 0);
            assert!(cursor.interrupted());
            cursor.set_halt(None);
            let expected = d.population(&context).unwrap();
            assert_eq!(cursor.population(), &expected);
            assert_eq!(cursor.population_size(), expected.count());
        }
    }

    #[test]
    fn interrupted_pass_never_corrupts_moment_tracking() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::full(t);
        let mut cursor =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        cursor.track_moments(0.0);
        let clean = cursor.moments();
        // Move the context, then interrupt the recompute: moments() must not
        // sync the tracker against the partial bitmap.
        cursor.flip(1);
        cursor.set_halt(Some(Arc::new(|| true)));
        assert_eq!(cursor.moments(), clean);
        assert!(cursor.interrupted());
        // After the halt clears, the tracker syncs against the completed
        // pass and matches the from-scratch statistics.
        cursor.set_halt(None);
        let expected = d.population_metric_moments(cursor.population(), 0.0);
        let tracked = cursor.moments();
        assert!((tracked.0 - expected.0).abs() < 1e-6);
        assert!((tracked.1 - expected.1).abs() < 1e-6);
    }
}
