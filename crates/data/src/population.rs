//! Incremental, allocation-free population evaluation.
//!
//! `Dataset::population` is the inner loop of every PCOR algorithm: the
//! paper's runtime numbers are essentially counts of `f_M` evaluations, and
//! each one filters the dataset. The naive evaluation allocates two fresh
//! [`RecordBitmap`]s and re-runs the OR/AND pass over *all* attributes even
//! though the search algorithms (BFS, DFS, random walk, Gray-code
//! enumeration) only ever move by single-bit context flips.
//!
//! This module provides the machinery that removes both costs:
//!
//! * [`PopulationScratch`] — reusable result/attribute-union bitmaps for
//!   [`Dataset::population_into`](crate::Dataset::population_into), making a
//!   from-scratch evaluation allocation-free after the first call;
//! * [`PopulationCursor`] — a stateful evaluator that caches one union
//!   bitmap *per attribute*. A one-bit context flip then recomputes only the
//!   touched attribute's union (an OR over at most `|A_i|` value bitmaps —
//!   or a single OR when a bit turns on) followed by one fused
//!   AND + popcount pass over the `m` cached unions, instead of the full
//!   per-attribute loop over all selected values;
//! * [`ShardPolicy`] — for large `n`, the fused AND/popcount pass shards the
//!   record-word space across threads, parallelizing evaluation *within* a
//!   single release rather than only across releases (the "dataset sharding"
//!   ROADMAP item). Sharded and serial evaluation are bit-identical: the
//!   pass is an exact word-wise AND. Two execution modes exist: spawning
//!   `std::thread::scope` workers per pass (no setup, but tens of
//!   microseconds of spawn cost, so the auto policy only engages at
//!   [`ShardPolicy::AUTO_MIN_WORDS`] ≈ 4 M records), or — preferred —
//!   submitting the shards to a resident [`pcor_runtime::ThreadPool`]
//!   ([`ShardPolicy::pooled`]), whose amortized dispatch cost is a few
//!   queue operations and therefore pays from
//!   [`ShardPolicy::POOLED_MIN_WORDS`] ≈ 260 k records (measured by the
//!   `pool-breakeven` experiment in `pcor-bench`).

use crate::bitmap::RecordBitmap;
use crate::context::Context;
use crate::dataset::Dataset;
use crate::{DataError, Result};
use pcor_runtime::ThreadPool;
use std::sync::Arc;

/// Reusable buffers for from-scratch population evaluation.
///
/// Create one per long-lived evaluator (verifier, enumeration worker) and
/// pass it to [`Dataset::population_into`](crate::Dataset::population_into);
/// after the first call no evaluation allocates.
#[derive(Debug, Clone)]
pub struct PopulationScratch {
    pub(crate) result: RecordBitmap,
    pub(crate) attr_union: RecordBitmap,
}

impl PopulationScratch {
    /// Creates scratch buffers for datasets of `len` records.
    pub fn new(len: usize) -> Self {
        PopulationScratch { result: RecordBitmap::new(len), attr_union: RecordBitmap::new(len) }
    }

    /// Creates scratch buffers sized for `dataset`.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        PopulationScratch::new(dataset.len())
    }

    /// Number of records the scratch is sized for.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// Whether the scratch addresses zero records.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// The population bitmap of the most recent
    /// [`Dataset::population_into`](crate::Dataset::population_into) call.
    pub fn result(&self) -> &RecordBitmap {
        &self.result
    }

    /// Consumes the scratch, yielding the result bitmap.
    pub fn into_result(self) -> RecordBitmap {
        self.result
    }
}

/// How a sharded fused pass is executed.
#[derive(Debug, Clone, Default)]
enum ShardExecutor {
    /// Spawn fresh `std::thread::scope` workers per pass (the PR 3 design;
    /// pays thread-spawn cost on every pass).
    #[default]
    Spawn,
    /// Submit the shards to a resident work-stealing pool; the submitting
    /// thread helps execute, so dispatch costs a few queue operations.
    Pool(Arc<ThreadPool>),
}

/// How the fused AND/popcount pass of a [`PopulationCursor`] distributes its
/// word range across threads.
///
/// Sharding is exact — the pass is a word-wise AND, so sharded and serial
/// results are bit-identical — but parallelism has a dispatch cost that only
/// pays off once a single pass streams enough memory:
///
/// * spawn-per-pass ([`ShardPolicy::auto`]) costs tens of microseconds of
///   thread spawns and therefore stays serial below
///   [`ShardPolicy::AUTO_MIN_WORDS`] words (≈ 4 M records);
/// * pool-backed ([`ShardPolicy::pooled`]) runs the shards on resident
///   [`pcor_runtime::ThreadPool`] workers — the submitting thread helps
///   execute, so the overhead is a few queue operations and the break-even
///   drops to [`ShardPolicy::POOLED_MIN_WORDS`] words (≈ 260 k records).
#[derive(Debug, Clone)]
pub struct ShardPolicy {
    /// Maximum number of worker threads for one pass.
    pub threads: usize,
    /// Minimum number of 64-bit words in the record space before the pass
    /// shards at all.
    pub min_words: usize,
    executor: ShardExecutor,
}

impl ShardPolicy {
    /// Word threshold of the [`ShardPolicy::auto`] policy: 2^16 words
    /// (≈ 4.2 M records), below which one AND pass is too cheap to amortize
    /// thread spawns.
    pub const AUTO_MIN_WORDS: usize = 1 << 16;

    /// Word threshold of the [`ShardPolicy::pooled`] policy: 2^12 words
    /// (≈ 260 k records). A resident pool's fork-join dispatch is a few
    /// queue operations plus at most one wake, which one pass over a few
    /// kilowords already amortizes — see `BENCH_pool.json` for the
    /// spawn-vs-pool crossover measurement.
    pub const POOLED_MIN_WORDS: usize = 1 << 12;

    /// Never shard; every pass runs on the calling thread.
    pub fn serial() -> Self {
        ShardPolicy { threads: 1, min_words: usize::MAX, executor: ShardExecutor::Spawn }
    }

    /// Shard across up to `available_parallelism` (capped at 8) spawned
    /// threads once the record space reaches
    /// [`ShardPolicy::AUTO_MIN_WORDS`] words.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        ShardPolicy { threads, min_words: Self::AUTO_MIN_WORDS, executor: ShardExecutor::Spawn }
    }

    /// Shard every pass across `threads` spawned workers regardless of size
    /// — for tests (bit-identity against serial) and benchmarks; production
    /// code should prefer [`ShardPolicy::auto`] or [`ShardPolicy::pooled`].
    pub fn forced(threads: usize) -> Self {
        ShardPolicy { threads: threads.max(1), min_words: 0, executor: ShardExecutor::Spawn }
    }

    /// Shard on the resident `pool` once the record space reaches
    /// [`ShardPolicy::POOLED_MIN_WORDS`] words, using up to one shard per
    /// pool worker. A pool with a single worker yields a serial policy
    /// (sharding cannot win without parallelism), so this is always safe to
    /// request — the policy right-sizes itself to the machine.
    pub fn pooled(pool: Arc<ThreadPool>) -> Self {
        let threads = pool.workers();
        ShardPolicy {
            threads,
            min_words: Self::POOLED_MIN_WORDS,
            executor: ShardExecutor::Pool(pool),
        }
    }

    /// Shard every pass on `pool` across `threads` shards regardless of
    /// size — the pooled counterpart of [`ShardPolicy::forced`], for tests
    /// and benchmarks.
    pub fn pooled_forced(pool: Arc<ThreadPool>, threads: usize) -> Self {
        ShardPolicy { threads: threads.max(1), min_words: 0, executor: ShardExecutor::Pool(pool) }
    }

    /// The resident pool this policy executes on, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        match &self.executor {
            ShardExecutor::Pool(pool) => Some(pool),
            ShardExecutor::Spawn => None,
        }
    }

    /// The number of shards a pass over `words` words uses under this policy.
    fn shards_for(&self, words: usize) -> usize {
        if self.threads > 1 && words >= self.min_words {
            self.threads.min(words.max(1))
        } else {
            1
        }
    }
}

impl PartialEq for ShardPolicy {
    fn eq(&self, other: &Self) -> bool {
        let same_executor = match (&self.executor, &other.executor) {
            (ShardExecutor::Spawn, ShardExecutor::Spawn) => true,
            (ShardExecutor::Pool(a), ShardExecutor::Pool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.threads == other.threads && self.min_words == other.min_words && same_executor
    }
}

impl Eq for ShardPolicy {}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy::auto()
    }
}

/// A stateful population evaluator positioned at one context.
///
/// The cursor caches the per-attribute union bitmap
/// `U_i = OR over selected values j of attribute i (B_ij)` for its current
/// context. Moving to a connected context (one-bit flip) updates only the
/// touched attribute's union — a single OR when the bit turns on, an OR over
/// the block's remaining selected values when it turns off — and the
/// population is then one fused AND + popcount pass over the `m` cached
/// unions. No step allocates.
///
/// [`PopulationCursor::move_to`] generalizes to arbitrary jumps at cost
/// proportional to the number of *attributes* whose selection changed, so a
/// cursor is never slower than a from-scratch evaluation and strictly
/// cheaper for the local moves every search algorithm makes.
#[derive(Debug)]
pub struct PopulationCursor<'a> {
    dataset: &'a Dataset,
    context: Context,
    /// One cached union bitmap per attribute.
    attr_unions: Vec<RecordBitmap>,
    /// Number of selected values per attribute (0 ⇒ empty population).
    selected: Vec<usize>,
    /// Scratch flags for [`PopulationCursor::move_to`] (one per attribute).
    touched: Vec<bool>,
    result: RecordBitmap,
    population_size: usize,
    /// Whether `result`/`population_size` reflect the current context.
    fresh: bool,
    policy: ShardPolicy,
    /// Per-shard popcount slots, reused across passes (no per-pass alloc).
    shard_counts: Vec<usize>,
    /// Total bitmap words read by fused passes over the cursor's lifetime.
    words_scanned: u64,
}

impl<'a> PopulationCursor<'a> {
    /// Positions a new cursor at `context` with the default (auto) shard
    /// policy.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does
    /// not match the dataset's schema.
    pub fn new(dataset: &'a Dataset, context: &Context) -> Result<Self> {
        Self::with_policy(dataset, context, ShardPolicy::auto())
    }

    /// Positions a new cursor at `context` with an explicit shard policy.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does
    /// not match the dataset's schema.
    pub fn with_policy(
        dataset: &'a Dataset,
        context: &Context,
        policy: ShardPolicy,
    ) -> Result<Self> {
        let schema = dataset.schema();
        if context.len() != schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: schema.total_values(),
                actual: context.len(),
            });
        }
        let n = dataset.len();
        let m = schema.num_attributes();
        let shard_slots = policy.threads.max(1);
        let mut cursor = PopulationCursor {
            dataset,
            context: context.clone(),
            attr_unions: vec![RecordBitmap::new(n); m],
            selected: vec![0; m],
            touched: vec![false; m],
            result: RecordBitmap::new(n),
            population_size: 0,
            fresh: false,
            policy,
            shard_counts: vec![0; shard_slots],
            words_scanned: 0,
        };
        for attr in 0..m {
            cursor.rebuild_union(attr);
        }
        Ok(cursor)
    }

    /// The context the cursor is positioned at.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The dataset the cursor evaluates against.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The shard policy of the fused AND/popcount pass.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Total bitmap words read by the cursor's fused AND/popcount passes so
    /// far (each pass reads `words × attribute count` words; ×8 gives the
    /// bytes the hot loop touched). Telemetry feeds this into the
    /// `verify-hotpath` bytes/sec figure.
    pub fn words_scanned(&self) -> u64 {
        self.words_scanned
    }

    /// Flips one context bit and updates the touched attribute's cached
    /// union. Returns the bit's new value. Cost: one bitmap OR when the bit
    /// turns on, an OR over the block's remaining selected values when it
    /// turns off. The population itself is recomputed lazily on the next
    /// [`PopulationCursor::population`] call.
    ///
    /// # Panics
    /// Panics if `bit` is out of range for the schema.
    pub fn flip(&mut self, bit: usize) -> bool {
        let now_set = self.context.flip(bit);
        let (attr, _) = self.dataset.schema().bit_to_attr_value(bit);
        if now_set {
            self.attr_unions[attr].union_with(self.dataset.value_bitmap(bit));
            self.selected[attr] += 1;
        } else {
            self.selected[attr] -= 1;
            self.rebuild_union(attr);
        }
        self.fresh = false;
        now_set
    }

    /// Repositions the cursor at `target`, rebuilding only the unions of
    /// attributes whose selection actually changed.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the target does not
    /// match the schema.
    pub fn move_to(&mut self, target: &Context) -> Result<()> {
        let schema = self.dataset.schema();
        if target.len() != schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: schema.total_values(),
                actual: target.len(),
            });
        }
        self.touched.iter_mut().for_each(|t| *t = false);
        let mut any = false;
        for (word_index, (current, wanted)) in
            self.context.words().iter().zip(target.words()).enumerate()
        {
            let mut diff = current ^ wanted;
            while diff != 0 {
                let bit = word_index * 64 + diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let (attr, _) = schema.bit_to_attr_value(bit);
                self.touched[attr] = true;
                any = true;
            }
        }
        if !any {
            return Ok(());
        }
        self.context.words_mut().copy_from_slice(target.words());
        for attr in 0..self.touched.len() {
            if self.touched[attr] {
                self.rebuild_union(attr);
            }
        }
        self.fresh = false;
        Ok(())
    }

    /// The population bitmap `D_C` of the current context. Recomputes the
    /// fused AND/popcount pass only when the context moved since the last
    /// call.
    pub fn population(&mut self) -> &RecordBitmap {
        self.refresh();
        &self.result
    }

    /// The population size `|D_C|` of the current context.
    pub fn population_size(&mut self) -> usize {
        self.refresh();
        self.population_size
    }

    /// Refreshes and returns the current `(context, population, |D_C|)` as
    /// simultaneous shared borrows — the shape the verification hot path
    /// needs (coverage probe, utility scoring and metric gather all read the
    /// same evaluation).
    pub fn evaluated(&mut self) -> (&Context, &RecordBitmap, usize) {
        self.refresh();
        (&self.context, &self.result, self.population_size)
    }

    /// Rebuilds `attr`'s union from the context's selected values and resets
    /// the selected count.
    fn rebuild_union(&mut self, attr: usize) {
        let schema = self.dataset.schema();
        let union = &mut self.attr_unions[attr];
        union.clear();
        let mut count = 0;
        for bit in schema.block(attr) {
            if self.context.get(bit) {
                union.union_with(self.dataset.value_bitmap(bit));
                count += 1;
            }
        }
        self.selected[attr] = count;
    }

    /// Recomputes the result bitmap and popcount when stale: one fused pass
    /// computing `AND over attributes i (U_i)` word by word, sharded across
    /// threads — spawned or pool-resident per the policy — when the policy
    /// and size warrant it.
    fn refresh(&mut self) {
        if self.fresh {
            return;
        }
        self.fresh = true;
        if self.selected.contains(&0) {
            // Ill-formed context (an attribute with no selected value):
            // empty population by definition.
            self.result.clear();
            self.population_size = 0;
            return;
        }
        let PopulationCursor { attr_unions, result, shard_counts, .. } = self;
        let (first, rest) = attr_unions.split_first().expect("schemas have >= 1 attribute");
        let out = result.words_mut();
        // One fused pass reads every output word once from `first` and once
        // per remaining attribute union.
        self.words_scanned += (out.len() * (1 + rest.len())) as u64;
        let shards = self.policy.shards_for(out.len());
        if shards <= 1 {
            self.population_size = and_popcount(first.words(), rest, out, 0);
            return;
        }
        let chunk = out.len().div_ceil(shards);
        match &self.policy.executor {
            ShardExecutor::Spawn => {
                self.population_size = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(shards);
                    for (shard, out_chunk) in out.chunks_mut(chunk).enumerate() {
                        let lo = shard * chunk;
                        let first_words = &first.words()[lo..lo + out_chunk.len()];
                        handles.push(
                            scope.spawn(move || and_popcount(first_words, rest, out_chunk, lo)),
                        );
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("population shard worker panicked"))
                        .sum()
                });
            }
            ShardExecutor::Pool(pool) => {
                // Resident workers steal the shards while the submitting
                // thread helps execute — the dispatch overhead is a few
                // queue operations, which is what lowers the break-even to
                // `POOLED_MIN_WORDS`. Per-shard counts land in reusable
                // slots; a shard panic propagates out of `scope` like the
                // spawn path's join would.
                pool.scope(|scope| {
                    for ((shard, out_chunk), count) in
                        out.chunks_mut(chunk).enumerate().zip(shard_counts.iter_mut())
                    {
                        let lo = shard * chunk;
                        let first_words = &first.words()[lo..lo + out_chunk.len()];
                        scope.spawn(move || {
                            *count = and_popcount(first_words, rest, out_chunk, lo);
                        });
                    }
                });
                let used = out.len().div_ceil(chunk);
                self.population_size = shard_counts[..used].iter().sum();
            }
        }
    }
}

/// The fused pass over one word range: `out[k] = first[k] AND (AND over rest
/// of rest[attr][lo + k])`, returning the popcount of the range. `first` is
/// pre-sliced to the range; `rest` bitmaps are indexed at `lo + k`.
fn and_popcount(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize {
    let mut count = 0usize;
    for (k, (slot, &word)) in out.iter_mut().zip(first).enumerate() {
        let mut w = word;
        for union in rest {
            w &= union.words()[lo + k];
        }
        *slot = w;
        count += w.count_ones() as usize;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Attribute, Schema};
    use pcor_runtime::ThreadPool;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("A", &["a0", "a1", "a2"]),
                Attribute::from_values("B", &["b0", "b1"]),
                Attribute::from_values("C", &["c0", "c1", "c2", "c3"]),
            ],
            "M",
        )
        .unwrap();
        let records = (0..200u32)
            .map(|i| {
                Record::new(
                    vec![(i % 3) as u16, ((i / 3) % 2) as u16, ((i / 7) % 4) as u16],
                    i as f64,
                )
            })
            .collect();
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn cursor_matches_from_scratch_population_after_flips() {
        let d = dataset();
        let t = d.schema().total_values();
        let start = Context::from_indices(t, [0, 3, 5]);
        let mut cursor = PopulationCursor::new(&d, &start).unwrap();
        let mut reference = start.clone();
        // A deterministic pseudo-random flip sequence.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bit = (state >> 33) as usize % t;
            cursor.flip(bit);
            reference.flip(bit);
            let expected = d.population(&reference).unwrap();
            assert_eq!(cursor.population(), &expected);
            assert_eq!(cursor.population_size(), expected.count());
            assert_eq!(cursor.context(), &reference);
        }
    }

    #[test]
    fn move_to_handles_arbitrary_jumps() {
        let d = dataset();
        let t = d.schema().total_values();
        let mut cursor = PopulationCursor::new(&d, &Context::empty(t)).unwrap();
        let targets = [
            Context::full(t),
            Context::from_indices(t, [1, 4, 6, 8]),
            Context::empty(t),
            Context::from_indices(t, [0, 1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        for target in &targets {
            cursor.move_to(target).unwrap();
            let expected = d.population(target).unwrap();
            assert_eq!(cursor.population(), &expected);
        }
        // A no-op move keeps the cached result valid.
        let before = cursor.population_size();
        cursor.move_to(&targets[targets.len() - 1].clone()).unwrap();
        assert_eq!(cursor.population_size(), before);
    }

    #[test]
    fn sharded_pass_is_bit_identical_to_serial() {
        let d = dataset();
        let t = d.schema().total_values();
        let context = Context::from_indices(t, [0, 2, 3, 5, 7]);
        let mut serial =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        let mut sharded =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::forced(4)).unwrap();
        assert_eq!(serial.population(), sharded.population());
        assert_eq!(serial.population_size(), sharded.population_size());
        for bit in 0..t {
            serial.flip(bit);
            sharded.flip(bit);
            assert_eq!(serial.population(), sharded.population());
        }
    }

    #[test]
    fn ill_formed_contexts_have_empty_populations() {
        let d = dataset();
        let t = d.schema().total_values();
        // No value of attribute B selected.
        let context = Context::from_indices(t, [0, 6]);
        let mut cursor = PopulationCursor::new(&d, &context).unwrap();
        assert_eq!(cursor.population_size(), 0);
        assert_eq!(cursor.population().count(), 0);
        // Selecting a B value repairs it.
        cursor.flip(3);
        assert!(cursor.population_size() > 0);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let d = dataset();
        assert!(PopulationCursor::new(&d, &Context::empty(3)).is_err());
        let t = d.schema().total_values();
        let mut cursor = PopulationCursor::new(&d, &Context::empty(t)).unwrap();
        assert!(cursor.move_to(&Context::empty(3)).is_err());
    }

    #[test]
    fn scratch_reports_its_capacity() {
        let d = dataset();
        let scratch = PopulationScratch::for_dataset(&d);
        assert_eq!(scratch.len(), d.len());
        assert!(!scratch.is_empty());
        assert!(PopulationScratch::new(0).is_empty());
    }

    #[test]
    fn shard_policy_thresholds() {
        assert_eq!(ShardPolicy::serial().shards_for(1 << 20), 1);
        assert_eq!(ShardPolicy::forced(4).shards_for(10), 4);
        assert_eq!(ShardPolicy::forced(4).shards_for(2), 2);
        let auto = ShardPolicy::auto();
        assert_eq!(auto.shards_for(ShardPolicy::AUTO_MIN_WORDS - 1), 1);
        assert_eq!(ShardPolicy::default(), auto);
        const _: () = assert!(ShardPolicy::POOLED_MIN_WORDS < ShardPolicy::AUTO_MIN_WORDS);
    }

    #[test]
    fn pooled_policy_right_sizes_to_the_pool_and_compares_by_pool_identity() {
        let pool = Arc::new(ThreadPool::new(3));
        let policy = ShardPolicy::pooled(Arc::clone(&pool));
        assert_eq!(policy.threads, 3);
        assert_eq!(policy.min_words, ShardPolicy::POOLED_MIN_WORDS);
        assert!(policy.pool().is_some());
        assert_eq!(policy.shards_for(ShardPolicy::POOLED_MIN_WORDS), 3);
        assert_eq!(policy.shards_for(ShardPolicy::POOLED_MIN_WORDS - 1), 1);
        // A single-worker pool yields a policy that never shards.
        let lone = ShardPolicy::pooled(Arc::new(ThreadPool::new(1)));
        assert_eq!(lone.shards_for(1 << 20), 1);
        // Equality is by pool identity, not by configuration.
        assert_eq!(policy, ShardPolicy::pooled(Arc::clone(&pool)));
        assert_ne!(policy, ShardPolicy::pooled(Arc::new(ThreadPool::new(3))));
        assert_ne!(policy, ShardPolicy::auto());
    }

    #[test]
    fn pool_sharded_pass_is_bit_identical_to_serial() {
        let d = dataset();
        let t = d.schema().total_values();
        let pool = Arc::new(ThreadPool::new(2));
        let context = Context::from_indices(t, [0, 2, 3, 5, 7]);
        let mut serial =
            PopulationCursor::with_policy(&d, &context, ShardPolicy::serial()).unwrap();
        let mut pooled = PopulationCursor::with_policy(
            &d,
            &context,
            ShardPolicy::pooled_forced(Arc::clone(&pool), 4),
        )
        .unwrap();
        assert_eq!(serial.population(), pooled.population());
        assert_eq!(serial.population_size(), pooled.population_size());
        for bit in 0..t {
            serial.flip(bit);
            pooled.flip(bit);
            assert_eq!(serial.population(), pooled.population());
            assert_eq!(serial.population_size(), pooled.population_size());
        }
        // The pool actually executed fork-join work for those passes.
        assert!(pool.stats().tasks_submitted > 0);
    }

    #[test]
    fn pool_sharded_pass_survives_pool_shutdown() {
        // After shutdown the scope degenerates to an inline serial loop; the
        // evaluation must stay available and bit-identical.
        let d = dataset();
        let t = d.schema().total_values();
        let pool = Arc::new(ThreadPool::new(2));
        let context = Context::from_indices(t, [0, 3, 5]);
        let mut pooled = PopulationCursor::with_policy(
            &d,
            &context,
            ShardPolicy::pooled_forced(pool.clone(), 2),
        )
        .unwrap();
        pool.shutdown();
        let expected = d.population(&context).unwrap();
        assert_eq!(pooled.population(), &expected);
    }
}
