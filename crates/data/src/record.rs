//! Records: one row of a PCOR dataset.

use crate::schema::Schema;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// A single record: the categorical value index for every attribute plus the
/// numeric metric value.
///
/// Categorical values are stored as `u16` indices into the attribute's domain
/// (the paper's datasets have domains of size 4–9, so `u16` is generous while
/// keeping records compact for the 50k–110k row workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<u16>,
    metric: f64,
}

impl Record {
    /// Creates a record from categorical value indices and a metric value.
    pub fn new(values: Vec<u16>, metric: f64) -> Self {
        Record { values, metric }
    }

    /// The categorical value indices, one per attribute.
    pub fn values(&self) -> &[u16] {
        &self.values
    }

    /// The value index of attribute `attr`.
    pub fn value(&self, attr: usize) -> u16 {
        self.values[attr]
    }

    /// The metric value (the attribute `M` outliers are defined against).
    pub fn metric(&self) -> f64 {
        self.metric
    }

    /// Replaces the metric value, returning the modified record.
    pub fn with_metric(mut self, metric: f64) -> Self {
        self.metric = metric;
        self
    }

    /// Validates the record against a schema: arity and domain bounds.
    ///
    /// # Errors
    /// Returns [`DataError::ArityMismatch`] or [`DataError::ValueOutOfDomain`].
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.values.len() != schema.num_attributes() {
            return Err(DataError::ArityMismatch {
                expected: schema.num_attributes(),
                actual: self.values.len(),
            });
        }
        for (attr, &val) in self.values.iter().enumerate() {
            let domain = schema.attribute(attr).domain_size();
            if (val as usize) >= domain {
                return Err(DataError::ValueOutOfDomain {
                    attribute: attr,
                    value: val as usize,
                    domain_size: domain,
                });
            }
        }
        Ok(())
    }

    /// Renders the record with attribute/value names from the schema, e.g.
    /// `Lawyer, Ottawa, Diplomatic | Salary = 185000`.
    pub fn describe(&self, schema: &Schema) -> String {
        let names: Vec<&str> = self
            .values
            .iter()
            .enumerate()
            .map(|(attr, &val)| schema.attribute(attr).value(val as usize).unwrap_or("?"))
            .collect();
        format!("{} | {} = {}", names.join(", "), schema.metric_name(), self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn toy_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::from_values("JobTitle", &["CEO", "MedicalDoctor", "Lawyer"]),
                Attribute::from_values("City", &["Montreal", "Ottawa", "Toronto"]),
            ],
            "Salary",
        )
        .unwrap()
    }

    #[test]
    fn accessors_and_with_metric() {
        let r = Record::new(vec![2, 1], 185_000.0);
        assert_eq!(r.values(), &[2, 1]);
        assert_eq!(r.value(0), 2);
        assert_eq!(r.metric(), 185_000.0);
        let r2 = r.clone().with_metric(10.0);
        assert_eq!(r2.metric(), 10.0);
        assert_eq!(r2.values(), r.values());
    }

    #[test]
    fn validation_catches_arity_and_domain() {
        let schema = toy_schema();
        assert!(Record::new(vec![2, 1], 1.0).validate(&schema).is_ok());
        assert!(matches!(
            Record::new(vec![2], 1.0).validate(&schema),
            Err(DataError::ArityMismatch { expected: 2, actual: 1 })
        ));
        assert!(matches!(
            Record::new(vec![3, 1], 1.0).validate(&schema),
            Err(DataError::ValueOutOfDomain { attribute: 0, value: 3, .. })
        ));
    }

    #[test]
    fn describe_uses_names() {
        let schema = toy_schema();
        let r = Record::new(vec![2, 1], 185_000.0);
        assert_eq!(r.describe(&schema), "Lawyer, Ottawa | Salary = 185000");
    }
}
