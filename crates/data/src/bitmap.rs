//! Record bitmaps: fixed-size bitsets over record identifiers.
//!
//! The dataset keeps one bitmap per attribute value (`record id -> bit`).
//! Evaluating a context's population is then an OR over the selected values of
//! each attribute followed by an AND across attributes — a handful of word-wise
//! passes over `n/64` words instead of a per-record scan. This is the data
//! structure that makes the reference-file enumeration (Section 6.2 of the
//! paper) and the sampling algorithms affordable.

use serde::{Deserialize, Serialize};

/// A bitset over record identifiers `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordBitmap {
    words: Vec<u64>,
    len: usize,
}

impl RecordBitmap {
    /// Creates an empty bitmap for `len` records.
    pub fn new(len: usize) -> Self {
        RecordBitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates a bitmap with every record set.
    pub fn all(len: usize) -> Self {
        let mut b = RecordBitmap::new(len);
        for word in &mut b.words {
            *word = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Number of addressable records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap addresses zero records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for `record`.
    ///
    /// # Panics
    /// Panics if `record >= len`.
    pub fn insert(&mut self, record: usize) {
        assert!(record < self.len, "record {record} out of range {}", self.len);
        self.words[record / 64] |= 1 << (record % 64);
    }

    /// Clears the bit for `record`.
    ///
    /// # Panics
    /// Panics if `record >= len`.
    pub fn remove(&mut self, record: usize) {
        assert!(record < self.len, "record {record} out of range {}", self.len);
        self.words[record / 64] &= !(1 << (record % 64));
    }

    /// Whether the bit for `record` is set.
    ///
    /// # Panics
    /// Panics if `record >= len`.
    pub fn contains(&self, record: usize) -> bool {
        assert!(record < self.len, "record {record} out of range {}", self.len);
        (self.words[record / 64] >> (record % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &RecordBitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &RecordBitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Size of the intersection with `other`, without allocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersection_count(&self, other: &RecordBitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Sets every bit (respecting the length).
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Word-level view of the bitmap (least-significant bit of `words()[0]`
    /// is record 0). Exposed for the population-evaluation engine, which
    /// fuses multi-bitmap AND/OR/popcount passes over raw words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word-level view. Callers must keep the tail invariant: bits
    /// at positions `>= len` stay zero. The engine's writers (the fused
    /// AND pass) only combine words of valid bitmaps, which preserves it.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterator over the set record identifiers in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Collects the set record identifiers into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Clears any bits above `len` (kept as an invariant after whole-word
    /// operations such as [`RecordBitmap::all`]).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut b = RecordBitmap::new(100);
        assert_eq!(b.count(), 0);
        b.insert(0);
        b.insert(63);
        b.insert(64);
        b.insert(99);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(99));
        assert!(!b.contains(50));
        assert_eq!(b.count(), 4);
        b.remove(63);
        assert!(!b.contains(63));
        assert_eq!(b.count(), 3);
        assert_eq!(b.to_vec(), vec![0, 64, 99]);
    }

    #[test]
    fn all_respects_length() {
        let b = RecordBitmap::all(70);
        assert_eq!(b.count(), 70);
        assert_eq!(b.len(), 70);
        assert!(!b.is_empty());
        let empty = RecordBitmap::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = RecordBitmap::new(128);
        let mut b = RecordBitmap::new(128);
        for i in (0..128).step_by(2) {
            a.insert(i);
        }
        for i in (0..128).step_by(3) {
            b.insert(i);
        }
        assert_eq!(a.intersection_count(&b), (0..128).step_by(6).count());
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 64 + 43 - 22);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count(), 22);
        assert_eq!(i.to_vec(), (0..128).step_by(6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut a = RecordBitmap::new(10);
        let b = RecordBitmap::new(20);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        RecordBitmap::new(10).insert(10);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = RecordBitmap::all(33);
        b.clear();
        assert_eq!(b.count(), 0);
        assert!(b.to_vec().is_empty());
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut b = RecordBitmap::new(200);
        let expected: Vec<usize> = vec![3, 64, 65, 127, 128, 199];
        for &i in &expected {
            b.insert(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), expected);
    }
}
