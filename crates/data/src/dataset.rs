//! Datasets: a schema, its records, and fast context-population evaluation.
//!
//! The dataset maintains one [`RecordBitmap`] per attribute value. The
//! population `D_C` of a context is computed as
//!
//! ```text
//! AND over attributes i ( OR over selected values j of attribute i  B_ij )
//! ```
//!
//! which is a few word-wise passes over `n/64` words. Neighboring datasets
//! (differing in one or more records, as used throughout the differential
//! privacy analysis and the COE-match experiments of Section 6.7) are produced
//! by [`Dataset::without_records`] / [`Dataset::with_record`].

use crate::bitmap::RecordBitmap;
use crate::context::Context;
use crate::population::PopulationScratch;
use crate::record::Record;
use crate::schema::Schema;
use crate::{DataError, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dataset instance `D` of a relational schema `R`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
    /// One bitmap per context bit (attribute value): which records carry it.
    value_bitmaps: Vec<RecordBitmap>,
    /// Columnar copy of every record's metric, indexed by record id — the
    /// evaluation hot path gathers population metrics from this flat array
    /// instead of chasing per-[`Record`] indirection.
    metric_column: Vec<f64>,
    /// Flattened `n × m` matrix of context-bit indices: entry `id * m + attr`
    /// is the bit of record `id`'s value of attribute `attr`. Lets
    /// [`Dataset::covers`] answer with `m` direct bit probes.
    record_bits: Vec<u32>,
}

impl Dataset {
    /// Creates a dataset, validating every record against the schema and
    /// building the per-value record bitmaps plus the columnar metric and
    /// record-bit indexes.
    ///
    /// # Errors
    /// Propagates validation errors from [`Record::validate`].
    pub fn new(schema: Schema, records: Vec<Record>) -> Result<Self> {
        for r in &records {
            r.validate(&schema)?;
        }
        let value_bitmaps = Self::build_bitmaps(&schema, &records)?;
        let metric_column = records.iter().map(Record::metric).collect();
        let m = schema.num_attributes();
        let mut record_bits = Vec::with_capacity(records.len() * m);
        for r in &records {
            for (attr, &val) in r.values().iter().enumerate() {
                record_bits.push(schema.bit_index(attr, val as usize)? as u32);
            }
        }
        Ok(Dataset { schema, records, value_bitmaps, metric_column, record_bits })
    }

    fn build_bitmaps(schema: &Schema, records: &[Record]) -> Result<Vec<RecordBitmap>> {
        let t = schema.total_values();
        let n = records.len();
        let mut bitmaps = vec![RecordBitmap::new(n); t];
        for (id, r) in records.iter().enumerate() {
            for (attr, &val) in r.values().iter().enumerate() {
                let bit = schema.bit_index(attr, val as usize)?;
                bitmaps[bit].insert(id);
            }
        }
        Ok(bitmaps)
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records, `n = |D|`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with identifier `id`.
    pub fn record(&self, id: usize) -> &Record {
        &self.records[id]
    }

    /// All records in identifier order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The metric value of record `id` (read from the columnar store).
    pub fn metric(&self, id: usize) -> f64 {
        self.metric_column[id]
    }

    /// The population bitmap `D_C` of a context.
    ///
    /// Allocates a fresh bitmap per call; hot paths should hold a
    /// [`PopulationScratch`] and use [`Dataset::population_into`], or a
    /// [`PopulationCursor`](crate::PopulationCursor) when evaluating a
    /// sequence of connected contexts.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does not
    /// match the schema.
    pub fn population(&self, context: &Context) -> Result<RecordBitmap> {
        let mut scratch = PopulationScratch::for_dataset(self);
        self.population_into(context, &mut scratch)?;
        Ok(scratch.into_result())
    }

    /// Evaluates the population of a context into reusable scratch buffers,
    /// returning the result bitmap. After the first call on a given scratch
    /// no allocation happens.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does not
    /// match the schema, or [`DataError::Malformed`] when the scratch is
    /// sized for a different dataset.
    pub fn population_into<'s>(
        &self,
        context: &Context,
        scratch: &'s mut PopulationScratch,
    ) -> Result<&'s RecordBitmap> {
        if context.len() != self.schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: self.schema.total_values(),
                actual: context.len(),
            });
        }
        if scratch.len() != self.records.len() {
            return Err(DataError::Malformed(format!(
                "population scratch sized for {} records used on a dataset of {}",
                scratch.len(),
                self.records.len()
            )));
        }
        let result = &mut scratch.result;
        let attr_union = &mut scratch.attr_union;
        result.fill();
        for attr in 0..self.schema.num_attributes() {
            attr_union.clear();
            let mut any = false;
            for bit in self.schema.block(attr) {
                if context.get(bit) {
                    attr_union.union_with(&self.value_bitmaps[bit]);
                    any = true;
                }
            }
            if !any {
                // No value of this attribute selected: population is empty.
                result.clear();
                return Ok(&scratch.result);
            }
            result.intersect_with(attr_union);
        }
        Ok(&scratch.result)
    }

    /// Identifiers of the records covered by a context.
    ///
    /// # Errors
    /// Same conditions as [`Dataset::population`].
    pub fn population_ids(&self, context: &Context) -> Result<Vec<usize>> {
        Ok(self.population(context)?.to_vec())
    }

    /// Size of the population `|D_C|`, computed without materializing any
    /// bitmap: a single word-at-a-time pass fuses the per-attribute OR, the
    /// cross-attribute AND and the popcount.
    ///
    /// # Errors
    /// Same conditions as [`Dataset::population`].
    pub fn population_size(&self, context: &Context) -> Result<usize> {
        if context.len() != self.schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: self.schema.total_values(),
                actual: context.len(),
            });
        }
        // Hoist the selected bits out of the word loop: one O(t) scan into a
        // flat list with per-attribute block boundaries, then the fused pass
        // touches only selected bitmaps (O(num_words · selected), not
        // O(num_words · t)).
        let m = self.schema.num_attributes();
        let mut selected: Vec<usize> = Vec::with_capacity(self.schema.total_values());
        let mut block_ends: Vec<usize> = Vec::with_capacity(m);
        for attr in 0..m {
            let before = selected.len();
            selected.extend(self.schema.block(attr).filter(|&bit| context.get(bit)));
            if selected.len() == before {
                return Ok(0); // Ill-formed context: empty population.
            }
            block_ends.push(selected.len());
        }
        let num_words = self.records.len().div_ceil(64);
        let mut count = 0usize;
        for word in 0..num_words {
            let mut and = u64::MAX;
            let mut start = 0usize;
            for &end in &block_ends {
                let mut or = 0u64;
                for &bit in &selected[start..end] {
                    or |= self.value_bitmaps[bit].words()[word];
                }
                and &= or;
                start = end;
            }
            count += and.count_ones() as usize;
        }
        Ok(count)
    }

    /// Metric values of the records covered by a context, in record-id order.
    ///
    /// # Errors
    /// Same conditions as [`Dataset::population`].
    pub fn population_metrics(&self, context: &Context) -> Result<Vec<f64>> {
        Ok(self.population(context)?.iter_ones().map(|id| self.metric_column[id]).collect())
    }

    /// Gathers the metric values of a population bitmap into a reusable
    /// buffer (cleared first), returning the position of `target` within the
    /// gathered slice when the population contains it. This is the verifier's
    /// inner gather: columnar reads, no per-call allocation once `out` has
    /// grown to capacity.
    pub fn gather_population_metrics(
        &self,
        population: &RecordBitmap,
        target: usize,
        out: &mut Vec<f64>,
    ) -> Option<usize> {
        out.clear();
        let mut target_index = None;
        for (pos, id) in population.iter_ones().enumerate() {
            if id == target {
                target_index = Some(pos);
            }
            out.push(self.metric_column[id]);
        }
        target_index
    }

    /// Accumulates `(Σ x, Σ (x − x̄)²)` of the metric values of a population
    /// bitmap over the columnar store — the sufficient statistics
    /// moment-decidable detectors need, with no metrics slice materialized.
    ///
    /// One pass in record-id order, accumulating deviations from `origin`
    /// and applying the shifted-variance identity
    /// `Σ(x − x̄)² = Σd² − (Σd)²/n` with `d = x − origin` (clamped at zero).
    /// `origin` must be a value on the scale of the population — the
    /// verification engine passes the queried record's own metric. The
    /// naive `origin = 0` form cancels catastrophically for populations
    /// with a large mean and small spread; with an in-population origin the
    /// cancellation term scales with `(x̄ − origin)² / Var ≈ z²`, so the
    /// relative error stays ~`n·ε·(1 + z²)` — negligible where verdicts are
    /// decided (z near a detector threshold) and far too small to drag a
    /// genuinely extreme z below one.
    pub fn population_metric_moments(&self, population: &RecordBitmap, origin: f64) -> (f64, f64) {
        let mut sum_dev = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for id in population.iter_ones() {
            let d = self.metric_column[id] - origin;
            sum_dev += d;
            sum_sq += d * d;
            count += 1;
        }
        if count == 0 {
            return (0.0, 0.0);
        }
        let sum = origin * count as f64 + sum_dev;
        let sum_sq_dev = (sum_sq - sum_dev * sum_dev / count as f64).max(0.0);
        (sum, sum_sq_dev)
    }

    /// Whether record `id` is covered by the context, answered from the
    /// dataset's flattened record-bit index: `m` direct bit probes, no
    /// per-attribute value scan or domain re-validation.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] when the context does not
    /// match the schema.
    pub fn covers(&self, context: &Context, id: usize) -> Result<bool> {
        if context.len() != self.schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: self.schema.total_values(),
                actual: context.len(),
            });
        }
        let m = self.schema.num_attributes();
        Ok(self.record_bits[id * m..(id + 1) * m].iter().all(|&bit| context.get(bit as usize)))
    }

    /// The minimal (starting) context of record `id`: exactly its own values.
    ///
    /// # Errors
    /// Propagates schema mismatches.
    pub fn minimal_context(&self, id: usize) -> Result<Context> {
        Context::for_record(&self.schema, self.records[id].values())
    }

    /// Number of records carrying each value of attribute `attr`.
    pub fn value_counts(&self, attr: usize) -> Vec<usize> {
        self.schema.block(attr).map(|bit| self.value_bitmaps[bit].count()).collect()
    }

    /// A neighboring dataset with the given record identifiers removed.
    /// Remaining records are re-indexed densely (record identities are
    /// positional; differential privacy only cares about multisets of rows).
    ///
    /// # Errors
    /// Never fails for valid `self`; kept fallible for uniformity.
    pub fn without_records(&self, remove: &[usize]) -> Result<Dataset> {
        let remove_set: std::collections::HashSet<usize> = remove.iter().copied().collect();
        let records: Vec<Record> = self
            .records
            .iter()
            .enumerate()
            .filter(|(id, _)| !remove_set.contains(id))
            .map(|(_, r)| r.clone())
            .collect();
        Dataset::new(self.schema.clone(), records)
    }

    /// A neighboring dataset with one extra record appended.
    ///
    /// # Errors
    /// Returns a validation error if the record does not fit the schema.
    pub fn with_record(&self, record: Record) -> Result<Dataset> {
        let mut records = self.records.clone();
        records.push(record);
        Dataset::new(self.schema.clone(), records)
    }

    /// Draws a neighboring dataset at group-privacy distance `delta`:
    /// removes `delta` records chosen uniformly at random, never removing any
    /// identifier in `protect` (the experiments keep the queried outlier `V`
    /// in both datasets). Returns the neighbor and the removed identifiers
    /// (referring to `self`'s numbering).
    ///
    /// # Errors
    /// Returns [`DataError::Malformed`] if fewer than `delta` removable
    /// records exist.
    pub fn random_neighbor<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        delta: usize,
        protect: &[usize],
    ) -> Result<(Dataset, Vec<usize>)> {
        let protected: std::collections::HashSet<usize> = protect.iter().copied().collect();
        let mut candidates: Vec<usize> =
            (0..self.records.len()).filter(|id| !protected.contains(id)).collect();
        if candidates.len() < delta {
            return Err(DataError::Malformed(format!(
                "cannot remove {delta} records from a dataset with only {} removable rows",
                candidates.len()
            )));
        }
        candidates.shuffle(rng);
        let removed: Vec<usize> = candidates.into_iter().take(delta).collect();
        let neighbor = self.without_records(&removed)?;
        Ok((neighbor, removed))
    }

    /// All metric values in record-id order (the "global" population), as a
    /// borrowed view of the columnar store.
    pub fn metrics(&self) -> &[f64] {
        &self.metric_column
    }

    /// The record bitmap of one context bit (attribute value) — which
    /// records carry it. Used by the population-evaluation engine.
    pub(crate) fn value_bitmap(&self, bit: usize) -> &RecordBitmap {
        &self.value_bitmaps[bit]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// The income example of Table 1 in the paper (salaries are made up;
    /// record 8 — index 7 here — is the Lawyer in Ottawa's Diplomatic
    /// district used as the running outlier example).
    fn paper_table1() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::from_values("JobTitle", &["CEO", "MedicalDoctor", "Lawyer"]),
                Attribute::from_values("City", &["Montreal", "Ottawa", "Toronto"]),
                Attribute::from_values("District", &["Business", "Historic", "Diplomatic"]),
            ],
            "Salary",
        )
        .unwrap();
        let rows: Vec<(u16, u16, u16, f64)> = vec![
            (1, 0, 0, 260_000.0), // MedicalDoctor, Montreal, Business
            (2, 2, 0, 150_000.0), // Lawyer, Toronto, Business
            (0, 1, 2, 450_000.0), // CEO, Ottawa, Diplomatic
            (2, 2, 0, 155_000.0), // Lawyer, Toronto, Business
            (2, 1, 2, 160_000.0), // Lawyer, Ottawa, Diplomatic
            (1, 2, 1, 240_000.0), // MedicalDoctor, Toronto, Historic
            (2, 1, 0, 150_000.0), // Lawyer, Ottawa, Business
            (2, 1, 2, 620_000.0), // Lawyer, Ottawa, Diplomatic  <- outlier V
            (0, 0, 1, 400_000.0), // CEO, Montreal, Historic
            (1, 2, 2, 255_000.0), // MedicalDoctor, Toronto, Diplomatic
        ];
        let records = rows.into_iter().map(|(a, b, c, m)| Record::new(vec![a, b, c], m)).collect();
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn population_of_paper_context() {
        let d = paper_table1();
        // Context: JobTitle in {CEO, Lawyer}, City = Ottawa, District = Diplomatic.
        let c = Context::from_indices(9, [0, 2, 4, 8]);
        let pop = d.population_ids(&c).unwrap();
        assert_eq!(pop, vec![2, 4, 7]);
        assert_eq!(d.population_size(&c).unwrap(), 3);
        let metrics = d.population_metrics(&c).unwrap();
        assert_eq!(metrics, vec![450_000.0, 160_000.0, 620_000.0]);
        assert!(d.covers(&c, 7).unwrap());
        assert!(!d.covers(&c, 0).unwrap());
    }

    #[test]
    fn full_context_covers_everything() {
        let d = paper_table1();
        let full = Context::full(9);
        assert_eq!(d.population_size(&full).unwrap(), d.len());
        assert_eq!(d.metrics().len(), 10);
    }

    #[test]
    fn ill_formed_context_has_empty_population() {
        let d = paper_table1();
        // No City selected.
        let c = Context::from_indices(9, [0, 2, 8]);
        assert_eq!(d.population_size(&c).unwrap(), 0);
        let empty = Context::empty(9);
        assert_eq!(d.population_size(&empty).unwrap(), 0);
    }

    #[test]
    fn context_length_mismatch_is_an_error() {
        let d = paper_table1();
        let wrong = Context::empty(5);
        assert!(d.population(&wrong).is_err());
    }

    #[test]
    fn minimal_context_selects_exactly_matching_rows() {
        let d = paper_table1();
        let c = d.minimal_context(7).unwrap();
        // Records 4 and 7 are both Lawyer/Ottawa/Diplomatic.
        assert_eq!(d.population_ids(&c).unwrap(), vec![4, 7]);
    }

    #[test]
    fn value_counts_match_data() {
        let d = paper_table1();
        assert_eq!(d.value_counts(0), vec![2, 3, 5]); // CEO, MD, Lawyer
        assert_eq!(d.value_counts(1), vec![2, 4, 4]); // Montreal, Ottawa, Toronto
        assert_eq!(d.value_counts(2), vec![4, 2, 4]); // Business, Historic, Diplomatic
    }

    #[test]
    fn without_records_reindexes_and_shrinks_population() {
        let d = paper_table1();
        let c = Context::from_indices(9, [0, 2, 4, 8]);
        let neighbor = d.without_records(&[2]).unwrap(); // drop the CEO in Ottawa/Diplomatic
        assert_eq!(neighbor.len(), 9);
        assert_eq!(neighbor.population_size(&c).unwrap(), 2);
        // Removing a record outside the context does not change the population size.
        let neighbor2 = d.without_records(&[0]).unwrap();
        assert_eq!(neighbor2.population_size(&c).unwrap(), 3);
    }

    #[test]
    fn with_record_validates_and_grows() {
        let d = paper_table1();
        let grown = d.with_record(Record::new(vec![0, 1, 2], 500_000.0)).unwrap();
        assert_eq!(grown.len(), 11);
        assert!(d.with_record(Record::new(vec![9, 0, 0], 1.0)).is_err());
    }

    #[test]
    fn random_neighbor_respects_protection_and_delta() {
        let d = paper_table1();
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let (neighbor, removed) = d.random_neighbor(&mut rng, 3, &[7]).unwrap();
        assert_eq!(neighbor.len(), 7);
        assert_eq!(removed.len(), 3);
        assert!(!removed.contains(&7));
        // Asking for more removals than removable rows fails.
        assert!(d.random_neighbor(&mut rng, 10, &[7]).is_err());
    }

    #[test]
    fn dataset_rejects_invalid_records() {
        let schema = Schema::new(vec![Attribute::from_values("A", &["x", "y"])], "M").unwrap();
        let bad = Dataset::new(schema, vec![Record::new(vec![5], 0.0)]);
        assert!(bad.is_err());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let schema = Schema::new(vec![Attribute::from_values("A", &["x", "y"])], "M").unwrap();
        let d = Dataset::new(schema, vec![]).unwrap();
        assert!(d.is_empty());
        let c = Context::full(2);
        assert_eq!(d.population_size(&c).unwrap(), 0);
    }
}
