//! Runtime-dispatched fused AND + popcount kernels.
//!
//! The fused pass `out[k] = AND over attribute unions of their k-th word`,
//! accumulating the popcount of the result, is the hot loop of every `f_M`
//! evaluation (see [`crate::population`]). This module provides explicit
//! `std::arch` implementations of that pass — AVX2 (Mula's `vpshufb`
//! nibble-LUT popcount), AVX-512 (`vpopcntq`), NEON (`vcntq_u8`) — behind a
//! [`OnceLock`] function-pointer dispatch chosen once per process via runtime
//! feature detection, with a 4-wide unrolled scalar fallback that is always
//! available.
//!
//! Every kernel produces **bit-identical** output — the result bitmap words
//! *and* the returned count — including ragged tails whose word count is not
//! a multiple of the vector width. The word-wise AND is exact on any
//! hardware, and popcounts are integer, so the only way implementations could
//! diverge is a bounds bug; the property tests in `tests/prop_kernels.rs`
//! compare every supported kernel against the scalar reference on random word
//! streams (empty, single-word, and non-multiple-of-4 tails included).
//!
//! Selection order for `auto` (the default): AVX-512 > AVX2 > NEON > scalar,
//! using `is_x86_feature_detected!` at first use. The `PCOR_KERNEL`
//! environment variable (`scalar|avx2|avx512|neon|auto`) overrides the choice
//! for testing; forcing a kernel the CPU does not support (or an unrecognized
//! name) falls back to `scalar`, the fail-safe choice for reproducibility.
//!
//! This is the one module in `pcor-data` allowed to use `unsafe` (the crate
//! is otherwise `deny(unsafe_code)`): `std::arch` intrinsics require it. All
//! unsafe is confined to the `#[target_feature]` implementations, which are
//! only ever reachable through [`KernelKind::func`] after the corresponding
//! feature check has passed.
#![allow(unsafe_code)]

use crate::bitmap::RecordBitmap;
use std::sync::OnceLock;

/// Signature shared by all fused AND+popcount kernels.
///
/// Computes `out[k] = first[k] & AND over rest of rest[attr].words()[lo + k]`
/// and returns the total popcount of `out`. `first` is pre-sliced to the
/// shard's word range; `rest` bitmaps are indexed at `lo + k` so one pass can
/// operate on any contiguous shard of the record-word space.
pub type KernelFn = fn(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize;

/// The available fused-pass implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Portable 4-wide unrolled scalar loop (`u64::count_ones`). Always
    /// supported; the reference all SIMD kernels are verified against.
    Scalar,
    /// AVX2: 256-bit AND over 4-word blocks, Mula `vpshufb` nibble-LUT
    /// popcount accumulated with `vpsadbw`.
    Avx2,
    /// AVX-512: 512-bit AND over 8-word blocks with the dedicated
    /// `vpopcntq` instruction (requires `avx512f` + `avx512vpopcntdq`).
    Avx512,
    /// NEON (aarch64): 128-bit AND over 2-word blocks, `vcntq_u8` byte
    /// popcount summed with `vaddvq_u8`.
    Neon,
}

impl KernelKind {
    /// All kernel kinds, in dispatch-preference order (best first, scalar
    /// last).
    pub const ALL: [KernelKind; 4] =
        [KernelKind::Avx512, KernelKind::Avx2, KernelKind::Neon, KernelKind::Scalar];

    /// Stable lower-case name, matching the `PCOR_KERNEL` values.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
            KernelKind::Neon => "neon",
        }
    }

    /// Parses a `PCOR_KERNEL` value (case-insensitive). `None` for
    /// unrecognized names — including `auto`, which is not a concrete kind.
    pub fn parse(name: &str) -> Option<KernelKind> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "avx2" => Some(KernelKind::Avx2),
            "avx512" => Some(KernelKind::Avx512),
            "neon" => Some(KernelKind::Neon),
            _ => None,
        }
    }

    /// Whether this kernel can run on the current CPU (runtime feature
    /// detection; `Scalar` is always supported).
    pub fn is_supported(self) -> bool {
        match self {
            KernelKind::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(target_arch = "aarch64")]
            KernelKind::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The kernel kinds the current CPU supports, preference order.
    pub fn supported() -> Vec<KernelKind> {
        Self::ALL.into_iter().filter(|k| k.is_supported()).collect()
    }

    /// The fastest supported kernel (what `PCOR_KERNEL=auto` resolves to).
    pub fn best_supported() -> KernelKind {
        Self::ALL.into_iter().find(|k| k.is_supported()).unwrap_or(KernelKind::Scalar)
    }

    /// The fused-pass implementation for this kind.
    ///
    /// Requesting an unsupported kind returns the scalar implementation —
    /// the function pointer handed out is always safe to call on this CPU.
    pub fn func(self) -> KernelFn {
        if !self.is_supported() {
            return scalar_pass;
        }
        match self {
            KernelKind::Scalar => scalar_pass,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => avx2_pass,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512 => avx512_pass,
            #[cfg(target_arch = "aarch64")]
            KernelKind::Neon => neon_pass,
            #[allow(unreachable_patterns)]
            _ => scalar_pass,
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide dispatched kernel: `PCOR_KERNEL` if set (unknown or
/// unsupported values fall back to `scalar`; `auto` or unset picks
/// [`KernelKind::best_supported`]). Resolved once and cached — the env
/// override cannot change mid-process; use
/// [`ShardPolicy::with_kernel`](crate::ShardPolicy::with_kernel) to compare
/// kernels within one process.
pub fn selected() -> KernelKind {
    static SELECTED: OnceLock<KernelKind> = OnceLock::new();
    *SELECTED.get_or_init(|| resolve(std::env::var("PCOR_KERNEL").ok().as_deref()))
}

/// Resolution rule behind [`selected`], factored out for tests.
pub(crate) fn resolve(request: Option<&str>) -> KernelKind {
    match request.map(str::trim) {
        None | Some("") => KernelKind::best_supported(),
        Some(name) if name.eq_ignore_ascii_case("auto") => KernelKind::best_supported(),
        Some(name) => match KernelKind::parse(name) {
            Some(kind) if kind.is_supported() => kind,
            // Unknown or unsupported forced kernel: fail safe and
            // reproducible rather than silently picking SIMD.
            _ => KernelKind::Scalar,
        },
    }
}

/// Portable reference kernel: 4-wide unrolled AND across the attribute
/// unions, `count_ones` popcount. The unroll keeps four independent
/// dependency chains in flight, which matters on targets where `count_ones`
/// lowers to a SWAR sequence rather than a `popcnt` instruction.
pub fn scalar_pass(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize {
    debug_assert_eq!(first.len(), out.len());
    let n = out.len();
    let mut count = 0usize;
    let mut k = 0usize;
    while k + 4 <= n {
        let mut w0 = first[k];
        let mut w1 = first[k + 1];
        let mut w2 = first[k + 2];
        let mut w3 = first[k + 3];
        for union in rest {
            let words = &union.words()[lo + k..lo + k + 4];
            w0 &= words[0];
            w1 &= words[1];
            w2 &= words[2];
            w3 &= words[3];
        }
        out[k] = w0;
        out[k + 1] = w1;
        out[k + 2] = w2;
        out[k + 3] = w3;
        count += (w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones()) as usize;
        k += 4;
    }
    while k < n {
        let mut w = first[k];
        for union in rest {
            w &= union.words()[lo + k];
        }
        out[k] = w;
        count += w.count_ones() as usize;
        k += 1;
    }
    count
}

/// Scalar cleanup for the ragged tail a vector kernel leaves behind.
fn scalar_tail(
    first: &[u64],
    rest: &[RecordBitmap],
    out: &mut [u64],
    lo: usize,
    from: usize,
) -> usize {
    let mut count = 0usize;
    for k in from..out.len() {
        let mut w = first[k];
        for union in rest {
            w &= union.words()[lo + k];
        }
        out[k] = w;
        count += w.count_ones() as usize;
    }
    count
}

/// Safe AVX2 entry point; only handed out by [`KernelKind::func`] after the
/// `avx2` feature check passed.
#[cfg(target_arch = "x86_64")]
fn avx2_pass(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize {
    // SAFETY: `func` verified `is_x86_feature_detected!("avx2")` before
    // returning this function pointer.
    unsafe { avx2_pass_impl(first, rest, out, lo) }
}

/// Fused pass over 4-word (256-bit) blocks: vector AND across the unions,
/// then Mula's nibble-LUT popcount (`vpshufb` per nibble, `vpsadbw` to fold
/// byte counts into four u64 lanes). Lane sums stay far below u64 range, so
/// accumulation is exact.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_pass_impl(
    first: &[u64],
    rest: &[RecordBitmap],
    out: &mut [u64],
    lo: usize,
) -> usize {
    use std::arch::x86_64::*;
    debug_assert_eq!(first.len(), out.len());
    let n = out.len();
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibble = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut k = 0usize;
    while k + 4 <= n {
        // SAFETY: k + 4 <= n and every bitmap holds >= lo + n words, so all
        // 4-word loads/stores below are in bounds; loadu/storeu are
        // alignment-free.
        let mut v = _mm256_loadu_si256(first.as_ptr().add(k).cast());
        for union in rest {
            let p = union.words().as_ptr().add(lo + k).cast();
            v = _mm256_and_si256(v, _mm256_loadu_si256(p));
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(k).cast(), v);
        let lo_counts = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low_nibble));
        let hi_counts =
            _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble));
        let byte_counts = _mm256_add_epi8(lo_counts, hi_counts);
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(byte_counts, zero));
        k += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
    let count = lanes.iter().sum::<u64>() as usize;
    count + scalar_tail(first, rest, out, lo, k)
}

/// Safe AVX-512 entry point; only handed out by [`KernelKind::func`] after
/// the `avx512f`/`avx512vpopcntdq` feature checks passed.
#[cfg(target_arch = "x86_64")]
fn avx512_pass(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize {
    // SAFETY: `func` verified avx512f + avx512vpopcntdq before returning
    // this function pointer.
    unsafe { avx512_pass_impl(first, rest, out, lo) }
}

/// Fused pass over 8-word (512-bit) blocks: vector AND across the unions,
/// per-lane `vpopcntq`, horizontal reduce at the end.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn avx512_pass_impl(
    first: &[u64],
    rest: &[RecordBitmap],
    out: &mut [u64],
    lo: usize,
) -> usize {
    use std::arch::x86_64::*;
    debug_assert_eq!(first.len(), out.len());
    let n = out.len();
    let mut acc = _mm512_setzero_si512();
    let mut k = 0usize;
    while k + 8 <= n {
        // SAFETY: k + 8 <= n and every bitmap holds >= lo + n words, so all
        // 8-word loads/stores below are in bounds; loadu/storeu are
        // alignment-free.
        let mut v = _mm512_loadu_si512(first.as_ptr().add(k).cast());
        for union in rest {
            let p = union.words().as_ptr().add(lo + k).cast();
            v = _mm512_and_si512(v, _mm512_loadu_si512(p));
        }
        _mm512_storeu_si512(out.as_mut_ptr().add(k).cast(), v);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        k += 8;
    }
    let count = _mm512_reduce_add_epi64(acc) as usize;
    count + scalar_tail(first, rest, out, lo, k)
}

/// Safe NEON entry point; only handed out by [`KernelKind::func`] after the
/// `neon` feature check passed.
#[cfg(target_arch = "aarch64")]
fn neon_pass(first: &[u64], rest: &[RecordBitmap], out: &mut [u64], lo: usize) -> usize {
    // SAFETY: `func` verified `is_aarch64_feature_detected!("neon")` before
    // returning this function pointer.
    unsafe { neon_pass_impl(first, rest, out, lo) }
}

/// Fused pass over 2-word (128-bit) blocks: vector AND across the unions,
/// `vcntq_u8` byte popcount folded with `vaddvq_u8` (16 bytes × ≤8 bits
/// = ≤128, which fits the u8 horizontal sum exactly).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn neon_pass_impl(
    first: &[u64],
    rest: &[RecordBitmap],
    out: &mut [u64],
    lo: usize,
) -> usize {
    use std::arch::aarch64::*;
    debug_assert_eq!(first.len(), out.len());
    let n = out.len();
    let mut count = 0usize;
    let mut k = 0usize;
    while k + 2 <= n {
        // SAFETY: k + 2 <= n and every bitmap holds >= lo + n words, so all
        // 2-word loads/stores below are in bounds.
        let mut v = vld1q_u64(first.as_ptr().add(k));
        for union in rest {
            v = vandq_u64(v, vld1q_u64(union.words().as_ptr().add(lo + k)));
        }
        vst1q_u64(out.as_mut_ptr().add(k), v);
        count += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))) as usize;
        k += 2;
    }
    count + scalar_tail(first, rest, out, lo, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(KernelKind::parse("AVX2"), Some(KernelKind::Avx2));
        assert_eq!(KernelKind::parse("auto"), None);
        assert_eq!(KernelKind::parse("nope"), None);
    }

    #[test]
    fn resolution_rule() {
        let best = KernelKind::best_supported();
        assert_eq!(resolve(None), best);
        assert_eq!(resolve(Some("")), best);
        assert_eq!(resolve(Some("auto")), best);
        assert_eq!(resolve(Some("AUTO")), best);
        assert_eq!(resolve(Some("scalar")), KernelKind::Scalar);
        // Unknown names fail safe to scalar, never silently to SIMD.
        assert_eq!(resolve(Some("sclar")), KernelKind::Scalar);
        // A supported explicit request is honored.
        for kind in KernelKind::supported() {
            assert_eq!(resolve(Some(kind.name())), kind);
        }
        // Neon is never supported on x86_64 and vice versa for AVX — an
        // unsupported forced kernel resolves to scalar.
        for kind in KernelKind::ALL {
            if !kind.is_supported() {
                assert_eq!(resolve(Some(kind.name())), KernelKind::Scalar);
            }
        }
    }

    #[test]
    fn best_supported_is_first_supported_in_preference_order() {
        let best = KernelKind::best_supported();
        assert!(best.is_supported());
        let supported = KernelKind::supported();
        assert_eq!(supported.first().copied(), Some(best));
        assert_eq!(supported.last().copied(), Some(KernelKind::Scalar));
        assert_eq!(selected(), selected());
    }

    #[test]
    fn unsupported_kind_funcs_fall_back_to_scalar() {
        for kind in KernelKind::ALL {
            if !kind.is_supported() {
                assert!(std::ptr::fn_addr_eq(kind.func(), scalar_pass as KernelFn));
            }
        }
        assert!(std::ptr::fn_addr_eq(KernelKind::Scalar.func(), scalar_pass as KernelFn));
    }

    #[test]
    fn kernels_agree_on_a_small_fixed_case() {
        // Cross-kernel identity on a deliberately ragged 7-word stream; the
        // heavyweight randomized coverage lives in tests/prop_kernels.rs.
        let words = 7usize;
        let n = words * 64;
        let mut first = RecordBitmap::new(n);
        let mut a = RecordBitmap::new(n);
        let mut b = RecordBitmap::new(n);
        let mut state = 0x243F6A8885A308D3u64;
        for target in [&mut first, &mut a, &mut b] {
            for w in target.words_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *w = state;
            }
        }
        let rest = vec![a, b];
        let mut expected_out = vec![0u64; words];
        let expected = scalar_pass(first.words(), &rest, &mut expected_out, 0);
        for kind in KernelKind::supported() {
            let mut out = vec![0u64; words];
            let got = kind.func()(first.words(), &rest, &mut out, 0);
            assert_eq!(got, expected, "{kind} count mismatch");
            assert_eq!(out, expected_out, "{kind} bitmap mismatch");
        }
    }
}
