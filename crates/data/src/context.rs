//! Contexts: bit vectors over attribute values.
//!
//! A context `C` is a binary vector `⟨c_11, …, c_1|A_1|, …, c_m1, …, c_m|A_m|⟩`
//! of length `t = Σ|A_i|`. Bit `c_ij` is set when predicate `P_ij` (attribute
//! `A_i` takes its `j`-th domain value) is part of the context. A context
//! filters a dataset to the population `D_C`: a record belongs to `D_C` iff,
//! for **every** attribute, the bit of the record's value is set.
//!
//! Two contexts are *connected* (adjacent in the context graph) when their
//! Hamming distance is 1, i.e. one is obtained from the other by adding or
//! removing a single predicate.

use crate::schema::Schema;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A context: a fixed-length bit vector over the schema's attribute values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Context {
    /// Bit storage, least-significant bit of `words[0]` is bit 0.
    words: Vec<u64>,
    /// Number of valid bits (`t`).
    len: usize,
}

impl Context {
    /// Creates an all-zero context of length `len`.
    pub fn empty(len: usize) -> Self {
        Context { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates an all-one context of length `len` (every predicate selected).
    pub fn full(len: usize) -> Self {
        let mut c = Context::empty(len);
        for i in 0..len {
            c.set(i, true);
        }
        c
    }

    /// Creates a context from an iterator of set bit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut c = Context::empty(len);
        for i in indices {
            c.set(i, true);
        }
        c
    }

    /// Parses a context from a string of `0`/`1` characters, e.g. the paper's
    /// `"101001010"`.
    ///
    /// # Errors
    /// Returns [`DataError::Malformed`] for characters other than `0`/`1`.
    pub fn from_bit_string(s: &str) -> Result<Self> {
        let mut c = Context::empty(s.len());
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '1' => c.set(i, true),
                '0' => {}
                other => {
                    return Err(DataError::Malformed(format!(
                        "invalid character '{other}' in context bit string"
                    )))
                }
            }
        }
        Ok(c)
    }

    /// The *minimal context* of a record: exactly the record's own attribute
    /// values are selected. This is the natural starting context `C_V` for the
    /// outlier record `V` and always covers `V`.
    pub fn for_record(schema: &Schema, values: &[u16]) -> Result<Self> {
        if values.len() != schema.num_attributes() {
            return Err(DataError::ArityMismatch {
                expected: schema.num_attributes(),
                actual: values.len(),
            });
        }
        let mut c = Context::empty(schema.total_values());
        for (attr, &val) in values.iter().enumerate() {
            let bit = schema.bit_index(attr, val as usize)?;
            c.set(bit, true);
        }
        Ok(c)
    }

    /// Number of bits (`t`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the context has zero bits (degenerate empty schema).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Flips bit `i` and returns the new value.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) -> bool {
        let new = !self.get(i);
        self.set(i, new);
        new
    }

    /// Returns a copy of this context with bit `i` flipped — the `i`-th
    /// neighbor in the context graph.
    pub fn with_flipped(&self, i: usize) -> Self {
        let mut c = self.clone();
        c.flip(i);
        c
    }

    /// Word-level view of the bit storage (least-significant bit of
    /// `words()[0]` is bit 0; bits `>= len` are zero). Exposed for the
    /// evaluation engine: cursors diff contexts word-wise and verifier
    /// caches fingerprint the words instead of cloning contexts.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word-level view. Callers must keep bits `>= len` zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of set bits (the context's Hamming weight).
    pub fn hamming_weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another context of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &Context) -> usize {
        assert_eq!(self.len, other.len, "contexts must have equal length");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Whether two contexts are connected (adjacent in the context graph),
    /// i.e. differ in exactly one predicate.
    pub fn is_connected_to(&self, other: &Context) -> bool {
        self.hamming_distance(other) == 1
    }

    /// Indices of all set bits.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.hamming_weight());
        for i in 0..self.len {
            if self.get(i) {
                out.push(i);
            }
        }
        out
    }

    /// Whether the context is *well-formed* for `schema`: it selects at least
    /// one value in **every** attribute block. (The paper: any non-empty
    /// context has Hamming weight at least `m`, with at least one predicate
    /// per attribute.) Ill-formed contexts always have an empty population.
    ///
    /// # Errors
    /// Returns [`DataError::ContextLengthMismatch`] if the length does not
    /// match the schema.
    pub fn is_well_formed(&self, schema: &Schema) -> Result<bool> {
        self.check_len(schema)?;
        for attr in 0..schema.num_attributes() {
            let block = schema.block(attr);
            if !block.clone().any(|bit| self.get(bit)) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether a record with categorical value indices `values` is covered by
    /// (selected into) this context.
    ///
    /// # Errors
    /// Returns an error if the context length or the record arity does not
    /// match the schema.
    pub fn covers(&self, schema: &Schema, values: &[u16]) -> Result<bool> {
        self.check_len(schema)?;
        if values.len() != schema.num_attributes() {
            return Err(DataError::ArityMismatch {
                expected: schema.num_attributes(),
                actual: values.len(),
            });
        }
        for (attr, &val) in values.iter().enumerate() {
            let bit = schema.bit_index(attr, val as usize)?;
            if !self.get(bit) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The set-bit count per attribute block (how many values of each
    /// attribute the context selects).
    pub fn selected_per_attribute(&self, schema: &Schema) -> Result<Vec<usize>> {
        self.check_len(schema)?;
        Ok((0..schema.num_attributes())
            .map(|attr| schema.block(attr).filter(|&bit| self.get(bit)).count())
            .collect())
    }

    /// Renders the context as a SQL-like conjunction of disjunctions using the
    /// schema's attribute and value names, e.g.
    /// `JobTitle IN {CEO, Lawyer} AND City IN {Toronto}`.
    pub fn to_predicate_string(&self, schema: &Schema) -> String {
        let mut clauses = Vec::new();
        for attr in 0..schema.num_attributes() {
            let attribute = schema.attribute(attr);
            let selected: Vec<&str> = schema
                .block(attr)
                .filter(|&bit| self.get(bit))
                .map(|bit| {
                    let (_, v) = schema.bit_to_attr_value(bit);
                    attribute.value(v).unwrap_or("?")
                })
                .collect();
            if selected.is_empty() {
                clauses.push(format!("{} IN {{}}", attribute.name()));
            } else if selected.len() == attribute.domain_size() {
                clauses.push(format!("{} IN *", attribute.name()));
            } else {
                clauses.push(format!("{} IN {{{}}}", attribute.name(), selected.join(", ")));
            }
        }
        clauses.join(" AND ")
    }

    /// Renders the raw bit string, e.g. `101001010`.
    pub fn to_bit_string(&self) -> String {
        (0..self.len).map(|i| if self.get(i) { '1' } else { '0' }).collect()
    }

    /// Internal: validates that this context matches the schema's `t`.
    fn check_len(&self, schema: &Schema) -> Result<()> {
        if self.len != schema.total_values() {
            return Err(DataError::ContextLengthMismatch {
                expected: schema.total_values(),
                actual: self.len,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn toy_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::from_values("JobTitle", &["CEO", "MedicalDoctor", "Lawyer"]),
                Attribute::from_values("City", &["Montreal", "Ottawa", "Toronto"]),
                Attribute::from_values("District", &["Business", "Historic", "Diplomatic"]),
            ],
            "Salary",
        )
        .unwrap()
    }

    #[test]
    fn paper_running_example_bits() {
        // C = <101001010>: CEOs and Lawyers in Toronto's Historic district.
        let schema = toy_schema();
        let c = Context::from_bit_string("101001010").unwrap();
        assert_eq!(c.len(), 9);
        assert_eq!(c.hamming_weight(), 4);
        assert!(c.is_well_formed(&schema).unwrap());
        assert_eq!(c.ones(), vec![0, 2, 5, 7]);
        assert_eq!(c.to_bit_string(), "101001010");
        assert_eq!(c.to_string(), "101001010");
        let pred = c.to_predicate_string(&schema);
        assert_eq!(
            pred,
            "JobTitle IN {CEO, Lawyer} AND City IN {Toronto} AND District IN {Historic}"
        );
    }

    #[test]
    fn paper_connected_context_example() {
        // C' = <100001010> (drop Lawyer) is connected to C = <101001010>.
        let c = Context::from_bit_string("101001010").unwrap();
        let c2 = Context::from_bit_string("100001010").unwrap();
        assert_eq!(c.hamming_distance(&c2), 1);
        assert!(c.is_connected_to(&c2));
        assert!(!c.is_connected_to(&c));
        assert_eq!(c.with_flipped(2), c2);
    }

    #[test]
    fn set_get_flip_round_trip() {
        let mut c = Context::empty(130); // spans three words
        assert_eq!(c.hamming_weight(), 0);
        c.set(0, true);
        c.set(64, true);
        c.set(129, true);
        assert!(c.get(0) && c.get(64) && c.get(129));
        assert!(!c.get(1));
        assert_eq!(c.hamming_weight(), 3);
        assert!(!c.flip(0));
        assert_eq!(c.hamming_weight(), 2);
        assert!(c.flip(1));
        assert_eq!(c.ones(), vec![1, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Context::empty(8).get(8);
    }

    #[test]
    fn full_and_empty_well_formedness() {
        let schema = toy_schema();
        let full = Context::full(schema.total_values());
        let empty = Context::empty(schema.total_values());
        assert!(full.is_well_formed(&schema).unwrap());
        assert!(!empty.is_well_formed(&schema).unwrap());
        // Missing an entire attribute block -> not well formed.
        let c = Context::from_bit_string("111111000").unwrap();
        assert!(!c.is_well_formed(&schema).unwrap());
        // Wrong length -> error.
        let short = Context::empty(5);
        assert!(short.is_well_formed(&schema).is_err());
    }

    #[test]
    fn covers_checks_every_attribute() {
        let schema = toy_schema();
        // Record 8 of the paper's Table 1: Lawyer, Ottawa, Diplomatic -> values [2, 1, 2].
        let record = [2u16, 1, 2];
        let c_match = Context::from_indices(9, [0, 2, 4, 8]); // {CEO, Lawyer} x {Ottawa} x {Diplomatic}
        let c_miss = Context::from_indices(9, [0, 2, 5, 8]); // Toronto instead of Ottawa
        assert!(c_match.covers(&schema, &record).unwrap());
        assert!(!c_miss.covers(&schema, &record).unwrap());
        assert!(c_match.covers(&schema, &[2u16, 1]).is_err());
    }

    #[test]
    fn minimal_context_for_record_covers_it() {
        let schema = toy_schema();
        let record = [2u16, 1, 2];
        let c = Context::for_record(&schema, &record).unwrap();
        assert_eq!(c.hamming_weight(), schema.num_attributes());
        assert!(c.covers(&schema, &record).unwrap());
        assert!(c.is_well_formed(&schema).unwrap());
        assert!(Context::for_record(&schema, &[1u16]).is_err());
    }

    #[test]
    fn selected_per_attribute_counts() {
        let schema = toy_schema();
        let c = Context::from_bit_string("101001010").unwrap();
        assert_eq!(c.selected_per_attribute(&schema).unwrap(), vec![2, 1, 1]);
    }

    #[test]
    fn from_bit_string_rejects_junk() {
        assert!(Context::from_bit_string("10x").is_err());
        assert_eq!(Context::from_bit_string("").unwrap().len(), 0);
        assert!(Context::from_bit_string("").unwrap().is_empty());
    }

    #[test]
    fn predicate_string_star_for_full_attribute() {
        let schema = toy_schema();
        let c = Context::from_bit_string("111001010").unwrap();
        let s = c.to_predicate_string(&schema);
        assert!(s.starts_with("JobTitle IN *"));
    }

    #[test]
    fn contexts_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = Context::from_bit_string("001").unwrap();
        let b = Context::from_bit_string("100").unwrap();
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
        assert!(a != b);
    }
}
