//! Synthetic workload generators.
//!
//! The paper evaluates PCOR on two real datasets that we cannot redistribute:
//!
//! 1. the Ontario public-sector salary disclosure (≈51 000 employees earning
//!    ≥ $100 000; attributes `JobTitle(9) × Employer(8) × Year(8)`, metric
//!    `Salary`), and
//! 2. the Murder Accountability Project homicide reports (≈110 000 records;
//!    attributes `AgencyType(4) × State(6) × Weapon(6)`, metric `VictimAge`).
//!
//! These generators produce synthetic datasets with the **same schemas, domain
//! sizes and qualitative structure**: per-group metric distributions with
//! multiplicative group effects, plus a configurable fraction of planted
//! *contextual outliers* — records whose metric is normal globally but extreme
//! within their own categorical subgroup. PCOR only ever observes the data
//! through categorical filtering and the metric column handed to a detector,
//! so this preserves the behaviour the paper measures (see DESIGN.md,
//! "Substitutions").

use crate::dataset::Dataset;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// Implemented locally so the generators need nothing beyond the base `rand`
/// crate.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Configuration of the synthetic salary workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalaryConfig {
    /// Number of records to generate.
    pub num_records: usize,
    /// Domain size of the `JobTitle` attribute (9 in the paper's full dataset).
    pub num_job_titles: usize,
    /// Domain size of the `Employer` attribute (8 in the paper).
    pub num_employers: usize,
    /// Domain size of the `Year` attribute (8 in the paper).
    pub num_years: usize,
    /// Fraction of records turned into planted contextual outliers.
    pub outlier_fraction: f64,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl SalaryConfig {
    /// The full-size configuration used in Sections 6.3–6.6 of the paper
    /// (51 000 records, domains 9/8/8, `t = 25`).
    pub fn full() -> Self {
        SalaryConfig {
            num_records: 51_000,
            num_job_titles: 9,
            num_employers: 8,
            num_years: 8,
            outlier_fraction: 0.02,
            seed: 0xC0FFEE,
        }
    }

    /// The reduced configuration of Sections 6.5 and 6.7 (≈11 000 records,
    /// 14 attribute values in total, `t = 14`).
    pub fn reduced() -> Self {
        SalaryConfig {
            num_records: 11_000,
            num_job_titles: 6,
            num_employers: 4,
            num_years: 4,
            outlier_fraction: 0.02,
            seed: 0xC0FFEE,
        }
    }

    /// A tiny configuration for unit tests and doc examples (fast to
    /// enumerate exhaustively).
    pub fn tiny() -> Self {
        SalaryConfig {
            num_records: 400,
            num_job_titles: 3,
            num_employers: 3,
            num_years: 2,
            outlier_fraction: 0.05,
            seed: 7,
        }
    }

    /// Returns a copy with a different number of records.
    pub fn with_records(mut self, n: usize) -> Self {
        self.num_records = n;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const JOB_TITLES: &[&str] = &[
    "Professor",
    "Police Officer",
    "Firefighter",
    "Registered Nurse",
    "Engineer",
    "Physician",
    "Judge",
    "Deputy Minister",
    "Crown Attorney",
    "Director",
    "Analyst",
    "Superintendent",
];

const EMPLOYERS: &[&str] = &[
    "City of Toronto",
    "University of Waterloo",
    "Ontario Power Generation",
    "Hydro One",
    "Hospital Network",
    "School Board",
    "Provincial Police",
    "Ministry of Health",
    "Transit Commission",
    "Municipality of Ottawa",
];

/// Builds the salary schema for a given configuration (domains truncated from
/// a fixed name pool, years starting at 2012).
pub fn salary_schema(cfg: &SalaryConfig) -> Result<Schema> {
    let job_titles: Vec<String> = JOB_TITLES
        .iter()
        .cycle()
        .take(cfg.num_job_titles)
        .enumerate()
        .map(|(i, s)| if i < JOB_TITLES.len() { s.to_string() } else { format!("{s} {i}") })
        .collect();
    let employers: Vec<String> = EMPLOYERS
        .iter()
        .cycle()
        .take(cfg.num_employers)
        .enumerate()
        .map(|(i, s)| if i < EMPLOYERS.len() { s.to_string() } else { format!("{s} {i}") })
        .collect();
    let years: Vec<String> = (0..cfg.num_years).map(|i| (2012 + i).to_string()).collect();
    Schema::new(
        vec![
            Attribute::new("JobTitle", job_titles)?,
            Attribute::new("Employer", employers)?,
            Attribute::new("Year", years)?,
        ],
        "Salary",
    )
}

/// Generates the synthetic salary dataset.
///
/// Salaries are log-normal around a per-job-title base, scaled by a per-
/// employer factor and a mild year-over-year growth; everything is clamped to
/// ≥ $100 000 to mirror the disclosure threshold of the real dataset. A
/// `outlier_fraction` share of records receives a 2.5–6× multiplier, turning
/// them into contextual outliers within their subgroup.
///
/// # Errors
/// Propagates schema-construction errors (empty domains).
pub fn salary_dataset(cfg: &SalaryConfig) -> Result<Dataset> {
    let schema = salary_schema(cfg)?;
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);

    // Per-group effects.
    let base_by_job: Vec<f64> =
        (0..cfg.num_job_titles).map(|i| 105_000.0 + 28_000.0 * i as f64).collect();
    let employer_factor: Vec<f64> = (0..cfg.num_employers).map(|i| 0.9 + 0.05 * i as f64).collect();
    let year_growth: Vec<f64> = (0..cfg.num_years).map(|i| 1.0 + 0.02 * i as f64).collect();

    let mut records = Vec::with_capacity(cfg.num_records);
    for _ in 0..cfg.num_records {
        let job = rng.random_range(0..cfg.num_job_titles) as u16;
        let employer = rng.random_range(0..cfg.num_employers) as u16;
        let year = rng.random_range(0..cfg.num_years) as u16;

        let base = base_by_job[job as usize]
            * employer_factor[employer as usize]
            * year_growth[year as usize];
        // Log-normal noise with ~12% relative spread.
        let noise = (0.12 * sample_standard_normal(&mut rng)).exp();
        let mut salary = (base * noise).max(100_000.0);

        if rng.random::<f64>() < cfg.outlier_fraction {
            salary *= 2.5 + 3.5 * rng.random::<f64>();
        }
        records.push(Record::new(vec![job, employer, year], salary.round()));
    }
    Dataset::new(schema, records)
}

/// Configuration of the synthetic homicide workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomicideConfig {
    /// Number of records to generate.
    pub num_records: usize,
    /// Domain size of the `AgencyType` attribute (4 in the paper).
    pub num_agency_types: usize,
    /// Domain size of the `State` attribute (6 in the paper).
    pub num_states: usize,
    /// Domain size of the `Weapon` attribute (6 in the paper).
    pub num_weapons: usize,
    /// Fraction of records turned into planted contextual outliers.
    pub outlier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HomicideConfig {
    /// The full configuration (≈110 000 records, domains 4/6/6, `t = 16`).
    pub fn full() -> Self {
        HomicideConfig {
            num_records: 110_000,
            num_agency_types: 4,
            num_states: 6,
            num_weapons: 6,
            outlier_fraction: 0.02,
            seed: 0xBEEF,
        }
    }

    /// The reduced configuration of Section 6.7 (≈28 000 records, 12
    /// attribute values, `t = 12`).
    pub fn reduced() -> Self {
        HomicideConfig {
            num_records: 28_000,
            num_agency_types: 4,
            num_states: 4,
            num_weapons: 4,
            outlier_fraction: 0.02,
            seed: 0xBEEF,
        }
    }

    /// A tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        HomicideConfig {
            num_records: 400,
            num_agency_types: 2,
            num_states: 3,
            num_weapons: 3,
            outlier_fraction: 0.05,
            seed: 11,
        }
    }

    /// Returns a copy with a different number of records.
    pub fn with_records(mut self, n: usize) -> Self {
        self.num_records = n;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const AGENCY_TYPES: &[&str] = &["Municipal Police", "County Police", "State Police", "Sheriff"];
const STATES: &[&str] = &["California", "Texas", "New York", "Florida", "Illinois", "Ohio"];
const WEAPONS: &[&str] = &["Handgun", "Knife", "Blunt Object", "Rifle", "Strangulation", "Shotgun"];

/// Builds the homicide schema for a given configuration.
pub fn homicide_schema(cfg: &HomicideConfig) -> Result<Schema> {
    let take = |pool: &[&str], n: usize| -> Vec<String> {
        pool.iter()
            .cycle()
            .take(n)
            .enumerate()
            .map(|(i, s)| if i < pool.len() { s.to_string() } else { format!("{s} {i}") })
            .collect()
    };
    Schema::new(
        vec![
            Attribute::new("AgencyType", take(AGENCY_TYPES, cfg.num_agency_types))?,
            Attribute::new("State", take(STATES, cfg.num_states))?,
            Attribute::new("Weapon", take(WEAPONS, cfg.num_weapons))?,
        ],
        "VictimAge",
    )
}

/// Generates the synthetic homicide dataset.
///
/// Victim ages are normal around a per-weapon mean (e.g. strangulation skews
/// older, handguns younger), shifted slightly per state, clamped to `[1, 99]`.
/// Planted contextual outliers move a record's age to the far tail of its own
/// subgroup.
///
/// # Errors
/// Propagates schema-construction errors.
pub fn homicide_dataset(cfg: &HomicideConfig) -> Result<Dataset> {
    let schema = homicide_schema(cfg)?;
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);

    let mean_age_by_weapon: Vec<f64> =
        (0..cfg.num_weapons).map(|i| 24.0 + 6.0 * i as f64).collect();
    let state_shift: Vec<f64> = (0..cfg.num_states).map(|i| i as f64 - 2.0).collect();

    let mut records = Vec::with_capacity(cfg.num_records);
    for _ in 0..cfg.num_records {
        let agency = rng.random_range(0..cfg.num_agency_types) as u16;
        let state = rng.random_range(0..cfg.num_states) as u16;
        let weapon = rng.random_range(0..cfg.num_weapons) as u16;

        let mean = mean_age_by_weapon[weapon as usize] + state_shift[state as usize];
        let mut age = mean + 8.0 * sample_standard_normal(&mut rng);

        if rng.random::<f64>() < cfg.outlier_fraction {
            // Push into the far tail of the subgroup: very old or very young.
            age = if rng.random::<bool>() {
                mean + 45.0 + 10.0 * rng.random::<f64>()
            } else {
                (mean - 30.0 - 10.0 * rng.random::<f64>()).max(1.0)
            };
        }
        let age = age.clamp(1.0, 99.0).round();
        records.push(Record::new(vec![agency, state, weapon], age));
    }
    Dataset::new(schema, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salary_schema_matches_paper_domains() {
        let schema = salary_schema(&SalaryConfig::full()).unwrap();
        assert_eq!(schema.num_attributes(), 3);
        assert_eq!(schema.attribute(0).domain_size(), 9);
        assert_eq!(schema.attribute(1).domain_size(), 8);
        assert_eq!(schema.attribute(2).domain_size(), 8);
        assert_eq!(schema.total_values(), 25);
        assert_eq!(schema.metric_name(), "Salary");
    }

    #[test]
    fn reduced_salary_has_fourteen_attribute_values() {
        let schema = salary_schema(&SalaryConfig::reduced()).unwrap();
        assert_eq!(schema.total_values(), 14);
    }

    #[test]
    fn reduced_homicide_has_twelve_attribute_values() {
        let schema = homicide_schema(&HomicideConfig::reduced()).unwrap();
        assert_eq!(schema.total_values(), 12);
    }

    #[test]
    fn salary_generation_is_deterministic_and_valid() {
        let cfg = SalaryConfig::tiny();
        let d1 = salary_dataset(&cfg).unwrap();
        let d2 = salary_dataset(&cfg).unwrap();
        assert_eq!(d1.len(), cfg.num_records);
        assert_eq!(d1.records(), d2.records());
        // All salaries respect the $100k disclosure threshold.
        assert!(d1.metrics().iter().all(|&s| s >= 100_000.0));
        // A different seed produces different data.
        let d3 = salary_dataset(&cfg.clone().with_seed(99)).unwrap();
        assert_ne!(d1.records(), d3.records());
    }

    #[test]
    fn homicide_generation_is_deterministic_and_valid() {
        let cfg = HomicideConfig::tiny();
        let d1 = homicide_dataset(&cfg).unwrap();
        let d2 = homicide_dataset(&cfg).unwrap();
        assert_eq!(d1.len(), cfg.num_records);
        assert_eq!(d1.records(), d2.records());
        assert!(d1.metrics().iter().all(|&a| (1.0..=99.0).contains(&a)));
    }

    #[test]
    fn planted_outliers_create_extreme_subgroup_values() {
        let cfg = SalaryConfig::tiny().with_records(2_000);
        let d = salary_dataset(&cfg).unwrap();
        let metrics = d.metrics();
        let mean = metrics.iter().sum::<f64>() / metrics.len() as f64;
        let max = metrics.iter().cloned().fold(f64::MIN, f64::max);
        // With a 5% outlier fraction and 2.5–6x multipliers, the max must be
        // far above the mean.
        assert!(max > 2.0 * mean, "max {max} should dominate mean {mean}");
    }

    #[test]
    fn with_records_override_is_respected() {
        let d = homicide_dataset(&HomicideConfig::tiny().with_records(123)).unwrap();
        assert_eq!(d.len(), 123);
    }

    #[test]
    fn standard_normal_sampler_has_sane_moments() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
