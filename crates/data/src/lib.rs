//! # pcor-data
//!
//! Relational data substrate for the PCOR reproduction (SIGMOD 2021).
//!
//! PCOR operates over a dataset instance `D` of a relational schema `R` whose
//! attributes are `attr(R) = {A_1, …, A_m, M}`: `m` categorical attributes and
//! one numeric *metric* attribute `M` against which outliers are defined. A
//! **context** is a bit vector of length `t = Σ|A_i|` selecting, for every
//! attribute, a subset of its domain values; it filters the dataset to the
//! population `D_C`.
//!
//! This crate provides:
//!
//! * [`schema`] — attribute domains, the schema and the bit layout of contexts;
//! * [`context`] — the context bit vector, its well-formedness rule, coverage
//!   checks, Hamming-distance-1 neighborhood (the edges of the context graph)
//!   and predicate rendering;
//! * [`record`] / [`dataset`] — records, datasets, neighboring datasets
//!   (add/remove records, as required by differential privacy), and fast
//!   population evaluation through per-value record bitmaps ([`bitmap`]);
//! * [`generator`] — synthetic versions of the two evaluation datasets used in
//!   the paper (Ontario public-sector salary and US homicide reports), with
//!   matching schemas, domain sizes and planted contextual outliers;
//! * [`csv`] — simple CSV import/export so users can plug in their own data.

// `unsafe` is denied crate-wide and allowed in exactly one place: the
// `kernel` module's `std::arch` SIMD intrinsics (see its module docs for the
// containment story). Everything else remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod context;
pub mod csv;
pub mod dataset;
pub mod generator;
pub mod kernel;
pub mod population;
pub mod record;
pub mod schema;

pub use bitmap::RecordBitmap;
pub use context::Context;
pub use dataset::Dataset;
pub use kernel::KernelKind;
pub use population::{HaltFn, PopulationCursor, PopulationScratch, ShardPolicy};
pub use record::Record;
pub use schema::{Attribute, Schema};

/// Errors produced by the data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A record's categorical value index was outside its attribute's domain.
    ValueOutOfDomain {
        /// Attribute index within the schema.
        attribute: usize,
        /// Offending value index.
        value: usize,
        /// Size of the attribute's domain.
        domain_size: usize,
    },
    /// A record had the wrong number of categorical values for the schema.
    ArityMismatch {
        /// Number of categorical attributes the schema defines.
        expected: usize,
        /// Number of values the record carried.
        actual: usize,
    },
    /// A context's bit length did not match the schema's total value count.
    ContextLengthMismatch {
        /// `t = Σ|A_i|` for the schema.
        expected: usize,
        /// Length of the offending context.
        actual: usize,
    },
    /// A schema was constructed with no categorical attributes or an empty
    /// attribute domain.
    EmptySchema,
    /// Generic malformed-input error (CSV parsing, invalid configuration).
    Malformed(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::ValueOutOfDomain { attribute, value, domain_size } => write!(
                f,
                "value index {value} out of domain (size {domain_size}) for attribute {attribute}"
            ),
            DataError::ArityMismatch { expected, actual } => {
                write!(f, "record has {actual} categorical values, schema expects {expected}")
            }
            DataError::ContextLengthMismatch { expected, actual } => {
                write!(f, "context has {actual} bits, schema expects {expected}")
            }
            DataError::EmptySchema => {
                write!(f, "schema must have at least one non-empty attribute")
            }
            DataError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience result alias for the data substrate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = DataError::ValueOutOfDomain { attribute: 1, value: 9, domain_size: 3 };
        assert!(e.to_string().contains("attribute 1"));
        let e = DataError::ArityMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("expects 3"));
        let e = DataError::ContextLengthMismatch { expected: 14, actual: 12 };
        assert!(e.to_string().contains("14"));
        assert!(DataError::EmptySchema.to_string().contains("schema"));
        assert!(DataError::Malformed("x".into()).to_string().contains("x"));
    }
}
