//! A small blocking client for the envelope protocol — what an analyst
//! SDK, the integration tests, and the bench load generator all share.
//!
//! Deliberately synchronous: one [`NetClient`] is one TCP connection with
//! a frame decoder; concurrency comes from using many of them (the
//! reactor side is where a thread must never block, not here). The
//! misbehaving-peer helpers ([`NetClient::send_partial`],
//! [`NetClient::slow_send`], [`NetClient::reset`]) exist for the
//! fault-injection tests: torn frames, slow-loris writers and hard RSTs
//! are cheap to produce from a real socket.

use pcor_service::{decode_reply, encode_request, FrameDecoder, RequestEnvelope, WireReply};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One blocking connection to a [`crate::NetFront`]'s envelope listener.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl NetClient {
    /// Connects with a 30-second default read timeout (tests override).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(NetClient { stream, decoder: FrameDecoder::new() })
    }

    /// Overrides the blocking-read timeout (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The local (client-side) socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Sends one framed envelope.
    pub fn send(&mut self, envelope: &RequestEnvelope) -> io::Result<()> {
        self.stream.write_all(&encode_request(envelope))
    }

    /// Sends raw bytes as-is (hostile-input tests).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Sends only the first `prefix` bytes of the envelope's frame — a
    /// torn frame the server must neither answer nor choke on. Returns
    /// how many bytes actually went out.
    pub fn send_partial(&mut self, envelope: &RequestEnvelope, prefix: usize) -> io::Result<usize> {
        let frame = encode_request(envelope);
        let cut = prefix.min(frame.len());
        self.stream.write_all(&frame[..cut])?;
        Ok(cut)
    }

    /// Sends the envelope `chunk` bytes at a time with `pause` between
    /// chunks — a slow-loris writer; the frame still completes.
    pub fn slow_send(
        &mut self,
        envelope: &RequestEnvelope,
        chunk: usize,
        pause: Duration,
    ) -> io::Result<()> {
        let frame = encode_request(envelope);
        let mut sent = 0;
        while sent < frame.len() {
            let end = frame.len().min(sent + chunk.max(1));
            self.stream.write_all(&frame[sent..end])?;
            self.stream.flush()?;
            sent = end;
            if sent < frame.len() {
                std::thread::sleep(pause);
            }
        }
        Ok(())
    }

    /// Blocks for the next framed reply.
    ///
    /// # Errors
    /// Read timeouts and socket errors pass through; a closed peer is
    /// [`io::ErrorKind::UnexpectedEof`], undecodable replies are
    /// [`io::ErrorKind::InvalidData`].
    pub fn recv(&mut self) -> io::Result<WireReply> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return decode_reply(&payload)
                        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
                }
                Ok(None) => {}
                Err(err) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
                }
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
    }

    /// Sends one envelope and collects every reply through the terminal
    /// one: zero or more `Item`s followed by a `Response` or `Error`,
    /// returned in arrival order (terminal last).
    pub fn call(&mut self, envelope: &RequestEnvelope) -> io::Result<Vec<WireReply>> {
        self.send(envelope)?;
        let mut replies = Vec::new();
        loop {
            let reply = self.recv()?;
            let terminal = !matches!(reply, WireReply::Item(_));
            replies.push(reply);
            if terminal {
                return Ok(replies);
            }
        }
    }

    /// Closes with a hard RST instead of an orderly FIN (SO_LINGER with a
    /// zero timeout), so the server sees a mid-stream connection reset.
    pub fn reset(self) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            crate::sys::set_linger_reset(self.stream.as_raw_fd())?;
        }
        drop(self.stream);
        Ok(())
    }
}

/// One-shot `GET` against the reactor's HTTP listener; returns the status
/// code and body. The listener speaks `Connection: close`, so reading to
/// EOF delimits the response.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: pcor\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body =
        response.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or_default();
    Ok((status, body))
}
