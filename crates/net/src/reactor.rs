//! The reactor: one thread, one `epoll` instance, every connection.
//!
//! [`NetFront::bind`] sets up the listeners and spawns the reactor
//! thread; the returned handle reports the bound addresses (ephemeral
//! ports resolve at bind time) and stops the reactor on
//! [`NetFront::shutdown`] or drop. The loop itself is the classic
//! readiness design:
//!
//! 1. `epoll_wait` with an adaptive timeout — short (1 ms) while any
//!    request is in flight, because completions arrive over in-process
//!    channels that epoll cannot observe; otherwise bounded by the
//!    deadline wheel's next reap check.
//! 2. Dispatch readiness: accept new connections, read/parse/submit on
//!    readable ones, flush on writable ones.
//! 3. Pump completions: every connection with admitted requests moves
//!    finished results into its write buffer and flushes opportunistically.
//! 4. Reap: the wheel surfaces connections whose idle or stall deadline
//!    may have passed; live ones re-arm, dead ones close.
//!
//! Closing a connection drops its queued completion handles, which the
//! serving stack observes as a departed consumer: streaming batches stop
//! at the next item boundary and every unprocessed ε slice is refunded.
//! That is the crash-safety story for mid-stream disconnects — the
//! reactor holds no budget state of its own to leak.

use crate::conn::{CloseReason, Conn, Proto};
use crate::metrics::NetMetrics;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLRDHUP};
use crate::wheel::DeadlineWheel;
use crate::NetConfig;
use pcor_faults::{site, Faults};
use pcor_service::Server;
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_WAKER: u64 = u64::MAX;
const TOKEN_RPC: u64 = u64::MAX - 1;
const TOKEN_HTTP: u64 = u64::MAX - 2;
/// Highest connection slot id (everything above is a reserved token).
const MAX_CONN_ID: u64 = u64::MAX - 3;

/// Wheel bucket width; reap deadlines are only ever this coarse.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(100);
/// Wheel horizon = granularity × slots; longer deadlines re-arm.
const WHEEL_SLOTS: usize = 512;
/// Poll timeout while requests are in flight (completion channels are
/// invisible to epoll, so the reactor must look for itself).
const BUSY_TIMEOUT_MS: i32 = 1;
/// Poll timeout while fully idle with nothing scheduled.
const IDLE_TIMEOUT_MS: i32 = 200;

/// Handle to a running reactor. Dropping it stops the reactor thread and
/// closes every connection (in-flight batches are cancelled and their
/// unspent budget refunded by the serving stack).
#[derive(Debug)]
pub struct NetFront {
    rpc_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    waker: UnixStream,
    join: Option<JoinHandle<()>>,
}

impl NetFront {
    /// Binds the listeners, registers the `pcor_net_*` metrics on the
    /// server's registry, and spawns the reactor thread.
    ///
    /// # Errors
    /// Bind/registration failures, and [`io::ErrorKind::Unsupported`] on
    /// platforms without epoll (the crate compiles there; the reactor
    /// does not run).
    pub fn bind(config: NetConfig, server: Arc<Server>) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        let rpc_listener = TcpListener::bind(&config.rpc_addr)?;
        rpc_listener.set_nonblocking(true)?;
        let rpc_addr = rpc_listener.local_addr()?;
        let http_listener = match &config.http_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let http_addr = http_listener.as_ref().map(TcpListener::local_addr).transpose()?;
        let (waker, waker_rx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        epoll.add(rpc_listener.as_raw_fd(), EPOLLIN, TOKEN_RPC)?;
        if let Some(listener) = &http_listener {
            epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_HTTP)?;
        }
        epoll.add(waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;
        let metrics = NetMetrics::register(server.telemetry().registry());
        let stop = Arc::new(AtomicBool::new(false));
        let faults = config.faults.clone();
        let reactor = Reactor {
            epoll,
            rpc_listener,
            http_listener,
            waker_rx,
            server,
            faults,
            metrics,
            stop: Arc::clone(&stop),
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            inflight: BTreeSet::new(),
            wheel: DeadlineWheel::new(WHEEL_GRANULARITY, WHEEL_SLOTS, Instant::now()),
            config,
        };
        let join = std::thread::Builder::new()
            .name("pcor-net-reactor".to_string())
            .spawn(move || reactor.run())?;
        Ok(NetFront { rpc_addr, http_addr, stop, waker, join: Some(join) })
    }

    /// The envelope listener's bound address (ephemeral ports resolved).
    pub fn rpc_addr(&self) -> SocketAddr {
        self.rpc_addr
    }

    /// The HTTP listener's bound address, when enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Stops the reactor and waits for its thread: connections close,
    /// which cancels their in-flight work server-side.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = (&self.waker).write(&[1]);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for NetFront {
    fn drop(&mut self) {
        self.stop();
    }
}

struct Reactor {
    epoll: Epoll,
    rpc_listener: TcpListener,
    http_listener: Option<TcpListener>,
    waker_rx: UnixStream,
    server: Arc<Server>,
    config: NetConfig,
    faults: Faults,
    metrics: NetMetrics,
    stop: Arc<AtomicBool>,
    /// Connection slots; the slot index is the epoll token.
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    open: usize,
    /// Slots with admitted-but-unanswered requests — the set the
    /// completion pump visits, so thousands of idle connections cost
    /// nothing per tick.
    inflight: BTreeSet<u32>,
    wheel: DeadlineWheel,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        while !self.stop.load(Ordering::Acquire) {
            let timeout = self.poll_timeout();
            let fired = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            let now = Instant::now();
            for event in events[..fired].iter().copied() {
                // Copy out of the packed struct before matching (no
                // references into unaligned fields).
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_WAKER => self.drain_waker(),
                    TOKEN_RPC => self.accept(Proto::Rpc, now),
                    TOKEN_HTTP => self.accept(Proto::Http, now),
                    id if id <= MAX_CONN_ID => self.on_conn_event(id as u32, bits, now),
                    _ => {}
                }
            }
            // Completion pump: only connections with requests in flight.
            for id in self.inflight.iter().copied().collect::<Vec<_>>() {
                self.service(id, now);
            }
            self.reap(now);
        }
        // Dropping `conns` here closes every socket and cancels in-flight
        // batches (their streams' consumers vanish).
    }

    fn poll_timeout(&self) -> i32 {
        if !self.inflight.is_empty() {
            return BUSY_TIMEOUT_MS;
        }
        match self.wheel.next_deadline() {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                (wait.as_millis().clamp(1, IDLE_TIMEOUT_MS as u128)) as i32
            }
            None => IDLE_TIMEOUT_MS,
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn accept(&mut self, proto: Proto, now: Instant) {
        loop {
            let accepted = match proto {
                Proto::Rpc => self.rpc_listener.accept(),
                Proto::Http => match &self.http_listener {
                    Some(listener) => listener.accept(),
                    None => return,
                },
            };
            match accepted {
                Ok((stream, _peer)) => {
                    // The accept seam: any scheduled fault refuses the
                    // connection outright (close before a byte moves).
                    if self.faults.socket(site::NET_ACCEPT).is_some() {
                        self.metrics.closed_error.inc();
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let mut conn = Conn::new(stream, proto, &self.config, now);
                    let interest = conn.desired_interest(&self.config);
                    conn.interest = interest;
                    let id = self.alloc_slot();
                    let fd = conn.stream.as_raw_fd();
                    if self.epoll.add(fd, interest, u64::from(id)).is_err() {
                        self.free.push(id);
                        continue;
                    }
                    self.wheel.schedule(id, conn.next_deadline(&self.config, now), now);
                    self.conns[id as usize] = Some(conn);
                    self.open += 1;
                    self.metrics.open.set(self.open as f64);
                    match proto {
                        Proto::Rpc => self.metrics.accepted_rpc.inc(),
                        Proto::Http => self.metrics.accepted_http.inc(),
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(id) = self.free.pop() {
            return id;
        }
        let id = self.conns.len() as u32;
        self.conns.push(None);
        id
    }

    fn on_conn_event(&mut self, id: u32, bits: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(id as usize).and_then(Option::as_mut) else {
            return;
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(id, CloseReason::Peer);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            if let Err(reason) =
                conn.on_readable(&self.server, &self.faults, &self.metrics, &self.config, now)
            {
                self.close(id, reason);
                return;
            }
        }
        self.service(id, now);
    }

    /// Pumps completions into the write buffer, flushes, refreshes the
    /// inflight set and the epoll interest. The single post-I/O path for
    /// every live connection.
    fn service(&mut self, id: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(id as usize).and_then(Option::as_mut) else {
            return;
        };
        loop {
            let capped = conn.pump_replies(&self.metrics, &self.config);
            if let Err(reason) = conn.flush(&self.faults, &self.metrics, now) {
                self.close(id, reason);
                return;
            }
            // A capped pump left ready replies behind; keep alternating
            // pump/flush while the socket accepts bytes. Once the socket
            // backs up, EPOLLOUT re-enters this path to drain the rest.
            if !capped || conn.pending_write() > 0 {
                break;
            }
        }
        if conn.has_inflight() {
            self.inflight.insert(id);
        } else {
            self.inflight.remove(&id);
        }
        let desired = conn.desired_interest(&self.config);
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, desired, u64::from(id)).is_ok() {
                conn.interest = desired;
            }
        }
    }

    fn reap(&mut self, now: Instant) {
        for id in self.wheel.due(now) {
            let verdict = match self.conns.get(id as usize).and_then(Option::as_ref) {
                // Slot closed (or reused and freshly scheduled elsewhere):
                // nothing to do, its own entry covers it.
                None => continue,
                Some(conn) => conn.reap_verdict(&self.config, now),
            };
            match verdict {
                Some(reason) => self.close(id, reason),
                None => {
                    let deadline = self.conns[id as usize]
                        .as_ref()
                        .expect("checked live above")
                        .next_deadline(&self.config, now);
                    self.wheel.schedule(id, deadline, now);
                }
            }
        }
    }

    fn close(&mut self, id: u32, reason: CloseReason) {
        if let Some(conn) = self.conns[id as usize].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            reason.record(&self.metrics);
            self.inflight.remove(&id);
            self.free.push(id);
            self.open -= 1;
            self.metrics.open.set(self.open as f64);
            // `conn` drops here: the socket closes and every queued
            // PendingResponse/BatchStream handle goes with it — the
            // serving stack cancels at the next boundary and refunds.
        }
    }
}
