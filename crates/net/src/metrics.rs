//! Reactor observability: every `pcor_net_*` series, registered into the
//! *server's* registry so one `/metrics` scrape (or `snapshot_json`)
//! covers the wire front and the serving stack together.

use pcor_telemetry::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;

/// Pre-resolved handles for the reactor's hot paths (registration is
/// locked; incrementing is not).
#[derive(Debug, Clone)]
pub(crate) struct NetMetrics {
    /// Currently open connections (both listeners).
    pub open: Arc<Gauge>,
    /// Connections accepted on the envelope listener.
    pub accepted_rpc: Arc<Counter>,
    /// Connections accepted on the HTTP listener.
    pub accepted_http: Arc<Counter>,
    /// Raw bytes read off sockets.
    pub bytes_read: Arc<Counter>,
    /// Raw bytes written to sockets.
    pub bytes_written: Arc<Counter>,
    /// Complete request frames parsed.
    pub frames_read: Arc<Counter>,
    /// Streamed per-item replies written.
    pub replies_item: Arc<Counter>,
    /// Terminal success replies written.
    pub replies_response: Arc<Counter>,
    /// Terminal error replies written.
    pub replies_error: Arc<Counter>,
    /// Back-pressure refusals (`queue-full` / `overloaded`) sent.
    pub shed: Arc<Counter>,
    /// Connections reaped for idleness.
    pub reaped_idle: Arc<Counter>,
    /// Connections reaped for a stalled write buffer (slow-loris reader).
    pub reaped_stalled: Arc<Counter>,
    /// Connections closed by peer EOF or reset.
    pub closed_peer: Arc<Counter>,
    /// Connections closed on I/O or framing/protocol violations.
    pub closed_error: Arc<Counter>,
    /// HTTP requests served (any path).
    pub http_requests: Arc<Counter>,
}

impl NetMetrics {
    pub(crate) fn register(registry: &MetricsRegistry) -> Self {
        registry.set_help("pcor_net_connections_open", "Currently open reactor connections.");
        registry.set_help(
            "pcor_net_connections_total",
            "Connections accepted, labelled by listener protocol.",
        );
        registry.set_help("pcor_net_bytes_total", "Raw socket bytes, labelled by direction.");
        registry.set_help("pcor_net_frames_read_total", "Complete request frames parsed.");
        registry
            .set_help("pcor_net_replies_total", "Framed replies written, labelled by reply kind.");
        registry.set_help(
            "pcor_net_shed_total",
            "Requests refused with a back-pressure error carrying retry_after.",
        );
        registry.set_help(
            "pcor_net_connections_closed_total",
            "Connections closed, labelled by cause.",
        );
        registry.set_help("pcor_net_http_requests_total", "HTTP requests served.");
        NetMetrics {
            open: registry.gauge("pcor_net_connections_open", &[]),
            accepted_rpc: registry.counter("pcor_net_connections_total", &[("proto", "rpc")]),
            accepted_http: registry.counter("pcor_net_connections_total", &[("proto", "http")]),
            bytes_read: registry.counter("pcor_net_bytes_total", &[("direction", "read")]),
            bytes_written: registry.counter("pcor_net_bytes_total", &[("direction", "written")]),
            frames_read: registry.counter("pcor_net_frames_read_total", &[]),
            replies_item: registry.counter("pcor_net_replies_total", &[("kind", "item")]),
            replies_response: registry.counter("pcor_net_replies_total", &[("kind", "response")]),
            replies_error: registry.counter("pcor_net_replies_total", &[("kind", "error")]),
            shed: registry.counter("pcor_net_shed_total", &[]),
            reaped_idle: registry
                .counter("pcor_net_connections_closed_total", &[("cause", "idle")]),
            reaped_stalled: registry
                .counter("pcor_net_connections_closed_total", &[("cause", "stalled")]),
            closed_peer: registry
                .counter("pcor_net_connections_closed_total", &[("cause", "peer")]),
            closed_error: registry
                .counter("pcor_net_connections_closed_total", &[("cause", "error")]),
            http_requests: registry.counter("pcor_net_http_requests_total", &[]),
        }
    }
}
