//! A coarse single-level timing wheel for connection deadlines.
//!
//! The reactor needs "wake me when this connection *might* be reapable"
//! for thousands of connections with O(1) scheduling and no per-activity
//! bookkeeping. A wheel with lazy revalidation fits: every (connection,
//! deadline) is hashed into a slot of `granularity`-wide buckets; socket
//! activity never touches the wheel. When a slot comes due the reactor
//! re-checks the connection's *actual* state — still active entries are
//! simply re-armed at their true deadline, dead slots are skipped. Stale
//! entries therefore cost one revalidation per horizon, not a removal per
//! byte of traffic.

use std::time::{Duration, Instant};

/// Deadline wheel over `u32` connection ids.
#[derive(Debug)]
pub(crate) struct DeadlineWheel {
    slots: Vec<Vec<u32>>,
    granularity: Duration,
    /// Index of the slot that covers `[cursor_time, cursor_time + granularity)`.
    cursor: usize,
    /// Wall-clock start of the cursor slot.
    cursor_time: Instant,
    /// Total scheduled entries (stale ones included, until expired).
    len: usize,
}

impl DeadlineWheel {
    pub(crate) fn new(granularity: Duration, slots: usize, now: Instant) -> Self {
        assert!(granularity > Duration::ZERO, "granularity must be positive");
        DeadlineWheel {
            slots: vec![Vec::new(); slots.max(2)],
            granularity,
            cursor: 0,
            cursor_time: now,
            len: 0,
        }
    }

    /// Schedules `conn` to be revalidated at (or shortly after) `deadline`.
    /// Deadlines past the wheel's horizon land in the furthest slot and
    /// re-arm from there — correctness never depends on the horizon.
    pub(crate) fn schedule(&mut self, conn: u32, deadline: Instant, now: Instant) {
        let ahead = deadline.saturating_duration_since(now.max(self.cursor_time));
        let ticks = (ahead.as_nanos() / self.granularity.as_nanos().max(1)) as usize + 1;
        let slot = (self.cursor + ticks.min(self.slots.len() - 1)) % self.slots.len();
        self.slots[slot].push(conn);
        self.len += 1;
    }

    /// When the next non-empty slot comes due — the longest the reactor
    /// may sleep without missing a reap. `None` when nothing is scheduled.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        for offset in 0..self.slots.len() {
            let slot = (self.cursor + offset) % self.slots.len();
            if !self.slots[slot].is_empty() {
                // An entry in the cursor slot is due at the *end* of that
                // slot's window.
                return Some(self.cursor_time + self.granularity * (offset as u32 + 1));
            }
        }
        None
    }

    /// Advances the wheel to `now` and drains every due slot, returning
    /// the entries to revalidate. The caller inspects each connection's
    /// live state and re-[`schedule`](DeadlineWheel::schedule)s entries
    /// that earned a reprieve — returning them instead of taking a
    /// callback keeps the reactor free to mutate itself while reaping.
    pub(crate) fn due(&mut self, now: Instant) -> Vec<u32> {
        let mut out = Vec::new();
        while self.cursor_time + self.granularity <= now {
            let drained = std::mem::take(&mut self.slots[self.cursor]);
            self.len -= drained.len();
            out.extend(drained);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time += self.granularity;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_after_their_deadline_not_before() {
        let start = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(10), 64, start);
        wheel.schedule(1, start + Duration::from_millis(35), start);
        assert!(wheel.due(start + Duration::from_millis(30)).is_empty(), "fired early");
        assert_eq!(wheel.due(start + Duration::from_millis(60)), vec![1]);
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn rescheduled_entries_come_due_again() {
        let start = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(5), 32, start);
        wheel.schedule(7, start + Duration::from_millis(5), start);
        // First expiry: the caller revalidates and re-arms (fresh activity).
        let now = start + Duration::from_millis(20);
        assert_eq!(wheel.due(now), vec![7]);
        wheel.schedule(7, now + Duration::from_millis(5), now);
        assert!(wheel.next_deadline().is_some());
        assert_eq!(wheel.due(start + Duration::from_millis(60)), vec![7]);
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn horizon_overflow_lands_at_the_far_edge_and_rearms() {
        let start = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(1), 4, start);
        let far = start + Duration::from_secs(1);
        wheel.schedule(3, far, start);
        // The wheel may surface the entry before its true deadline (it
        // overflowed the horizon); the caller re-arms until `far` passes.
        let mut now = start;
        let mut fired = 0;
        for _ in 0..2000 {
            now += Duration::from_millis(10);
            for conn in wheel.due(now) {
                if now >= far {
                    fired += 1;
                } else {
                    wheel.schedule(conn, far, now);
                }
            }
            if fired > 0 {
                break;
            }
        }
        assert_eq!(fired, 1);
    }
}
