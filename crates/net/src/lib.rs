//! `pcor-net` — a hand-rolled non-blocking reactor that puts the PCOR
//! server on the wire.
//!
//! The serving stack below this crate is synchronous: [`pcor_service::Server`]
//! admits envelopes into a bounded worker pool and hands back completion
//! handles ([`pcor_service::PendingResponse`], [`pcor_service::BatchStream`]).
//! What a deployment additionally needs is a front that owns *thousands of
//! mostly-idle analyst TCP connections* without spending a thread on each —
//! and the workspace builds offline, so `tokio`/`mio` are not available.
//! This crate is that front, built directly on `epoll` (see [`sys`]):
//!
//! - One reactor thread multiplexes every connection with level-triggered
//!   readiness, parsing length-prefixed [`RequestEnvelope`] frames (v1 and
//!   v2 both accepted) and submitting them through the server's
//!   non-blocking admission ([`Server::try_submit_envelope_streaming`]).
//! - Batch results stream back per item the moment each release resolves;
//!   replies to one connection stay FIFO with its requests so pipelining
//!   clients correlate by order.
//! - Back-pressure is end-to-end: admission refusals (`QueueFull`,
//!   `Overloaded`) become framed error replies carrying `retry_after`, a
//!   connection whose write buffer fills stops being polled for reads, and
//!   idle or stalled connections are reaped by a deadline wheel.
//! - The same reactor hosts a second listener speaking just enough
//!   HTTP/1.1 to serve `GET /healthz` from [`Server::health`] and
//!   `GET /metrics` from the Prometheus-text exporter, so probes and
//!   scrapers need no custom client.
//!
//! Reactor observability lands in the server's own registry under
//! `pcor_net_*`; socket-level fault injection (short reads, mid-frame
//! resets, injected I/O errors) threads through [`pcor_faults`] seams at
//! `net.accept` / `net.read` / `net.write`.
//!
//! [`RequestEnvelope`]: pcor_service::RequestEnvelope
//! [`Server::try_submit_envelope_streaming`]: pcor_service::Server::try_submit_envelope_streaming
//! [`Server::health`]: pcor_service::Server::health

use pcor_faults::Faults;
use std::time::Duration;

mod client;
mod conn;
mod http;
mod metrics;
mod reactor;
pub mod sys;
mod wheel;

pub use client::{http_get, NetClient};
pub use reactor::NetFront;

/// Tuning knobs for a [`NetFront`]. `Default` suits tests and small
/// deployments: loopback listeners on ephemeral ports, a 1 MiB frame cap
/// and generous-but-bounded buffers.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address of the envelope (RPC) listener.
    pub rpc_addr: String,
    /// Bind address of the HTTP health/metrics listener; `None` disables
    /// it.
    pub http_addr: Option<String>,
    /// Per-frame payload cap enforced by the decoder; a connection
    /// announcing more is closed (resynchronizing is impossible).
    pub max_frame_len: usize,
    /// Per-connection cap on buffered-but-unsent reply bytes. A connection
    /// over the cap stops being polled for reads until the peer drains it.
    pub write_buf_limit: usize,
    /// Per-connection cap on submitted-but-unanswered envelopes; reads
    /// pause at the cap (the global admission queue stays protected by the
    /// server's own capacity either way).
    pub max_inflight_per_conn: usize,
    /// A connection with no inflight work and no socket activity for this
    /// long is reaped.
    pub idle_timeout: Duration,
    /// A connection with pending reply bytes and no write progress for
    /// this long (a slow-loris reader) is reaped.
    pub stall_timeout: Duration,
    /// Socket-level fault plan (see [`pcor_faults::site::NET_READ`] and
    /// friends); defaults to none.
    pub faults: Faults,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            rpc_addr: "127.0.0.1:0".to_string(),
            http_addr: Some("127.0.0.1:0".to_string()),
            max_frame_len: pcor_service::MAX_FRAME_LEN,
            write_buf_limit: 256 * 1024,
            max_inflight_per_conn: 32,
            idle_timeout: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(10),
            faults: Faults::disabled(),
        }
    }
}

impl NetConfig {
    /// Sets the RPC listener bind address.
    #[must_use]
    pub fn with_rpc_addr(mut self, addr: impl Into<String>) -> Self {
        self.rpc_addr = addr.into();
        self
    }

    /// Sets (or disables) the HTTP listener bind address.
    #[must_use]
    pub fn with_http_addr(mut self, addr: Option<String>) -> Self {
        self.http_addr = addr;
        self
    }

    /// Sets the per-connection write-buffer cap.
    #[must_use]
    pub fn with_write_buf_limit(mut self, limit: usize) -> Self {
        self.write_buf_limit = limit;
        self
    }

    /// Sets the per-connection inflight-envelope cap.
    #[must_use]
    pub fn with_max_inflight(mut self, max: usize) -> Self {
        self.max_inflight_per_conn = max.max(1);
        self
    }

    /// Sets the idle reap timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the write-stall reap timeout.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Installs a socket-level fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }
}
