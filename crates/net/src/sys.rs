//! The thin unsafe floor of the reactor: raw `epoll` bindings declared by
//! hand (the workspace is offline — no `libc`, no `mio`), wrapped into a
//! safe [`Epoll`] handle, plus the one `setsockopt` the test client needs
//! to force a hard RST.
//!
//! Only Linux gets a real implementation. Elsewhere the same API compiles
//! but [`Epoll::new`] returns [`std::io::ErrorKind::Unsupported`], so the
//! crate builds everywhere while the reactor itself is Linux-only — the
//! same shape the kernel-dispatch layer uses for SIMD paths.

use std::io;

/// Readiness bits (subset of the kernel's `EPOLL*` mask we use).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never subscribed).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half — lets a reap beat a read of 0.
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;
    // Socket-level constants are arch-specific on Linux: mips and sparc
    // inherited different values from their BSD-era ABIs.
    #[cfg(not(any(
        target_arch = "mips",
        target_arch = "mips32r6",
        target_arch = "mips64",
        target_arch = "mips64r6",
        target_arch = "sparc",
        target_arch = "sparc64"
    )))]
    const SOL_SOCKET: c_int = 1;
    #[cfg(not(any(
        target_arch = "mips",
        target_arch = "mips32r6",
        target_arch = "mips64",
        target_arch = "mips64r6",
        target_arch = "sparc",
        target_arch = "sparc64"
    )))]
    const SO_LINGER: c_int = 13;
    #[cfg(any(
        target_arch = "mips",
        target_arch = "mips32r6",
        target_arch = "mips64",
        target_arch = "mips64r6",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(any(
        target_arch = "mips",
        target_arch = "mips32r6",
        target_arch = "mips64",
        target_arch = "mips64r6",
        target_arch = "sparc",
        target_arch = "sparc64"
    ))]
    const SO_LINGER: c_int = 0x0080;

    /// The kernel's `struct epoll_event`. The kernel ABI packs it **only
    /// on x86/x86-64** (so 32- and 64-bit layouts agree there); every
    /// other arch uses natural alignment — a 16-byte event with `data` at
    /// offset 8. Mirroring that exactly matters: a packed 12-byte layout
    /// on aarch64 would make `epoll_wait` scribble past the buffer.
    /// Field reads below copy out of the struct rather than borrowing
    /// into it (required where it really is packed).
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    struct Linger {
        l_onoff: c_int,
        l_linger: c_int,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned epoll instance. Registration keys are caller-chosen `u64`
    /// tokens delivered back verbatim in each readiness event.
    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent { events: interest, data: token };
            let event_ptr =
                if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut event as *mut _ };
            // SAFETY: `event` outlives the call (the kernel copies it), and
            // a null event is exactly what DEL expects.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) })?;
            Ok(())
        }

        /// Registers `fd` for `interest`, tagging events with `token`.
        pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Replaces `fd`'s registered interest.
        pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) for readiness, filling
        /// `events`; returns how many fired. An `EINTR` wakeup reports as
        /// zero events rather than an error — the reactor just loops.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let max = events.len().min(c_int::MAX as usize) as c_int;
            // SAFETY: `events` is a valid writable buffer of `max` entries.
            match cvt(unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), max, timeout_ms) }) {
                Ok(n) => Ok(n as usize),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => Ok(0),
                Err(err) => Err(err),
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `epfd` is owned and closed exactly once.
            unsafe { close(self.epfd) };
        }
    }

    /// Arms `SO_LINGER` with a zero timeout so the next close sends RST
    /// instead of FIN — the client-side lever for mid-frame reset tests.
    pub fn set_linger_reset(fd: RawFd) -> io::Result<()> {
        let linger = Linger { l_onoff: 1, l_linger: 0 };
        // SAFETY: `linger` is a valid `struct linger` for the duration of
        // the call and the length matches.
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_LINGER,
                (&linger as *const Linger).cast(),
                std::mem::size_of::<Linger>() as u32,
            )
        })?;
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    /// Stand-in event record so the reactor compiles off-Linux.
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// Unsupported placeholder: construction fails, nothing else is
    /// reachable.
    #[derive(Debug)]
    pub struct Epoll;

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "pcor-net's epoll reactor requires Linux",
            ))
        }

        pub fn add(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off-Linux")
        }

        pub fn modify(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off-Linux")
        }

        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off-Linux")
        }

        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            unreachable!("Epoll::new never succeeds off-Linux")
        }
    }

    pub fn set_linger_reset(_fd: i32) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "SO_LINGER reset requires Linux"))
    }
}

pub use imp::{set_linger_reset, Epoll, EpollEvent};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let epoll = Epoll::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        epoll.add(rx.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing readable yet: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        tx.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy packed fields out before asserting (no unaligned refs).
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 42);
        assert_ne!(bits & EPOLLIN, 0);
        epoll.delete(rx.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_switches_interest() {
        let epoll = Epoll::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        drop(tx);
        rx.set_nonblocking(true).unwrap();
        // Subscribe to nothing but hangup-class events (always on): a
        // closed peer still fires.
        epoll.add(rx.as_raw_fd(), 0, 7).unwrap();
        epoll.modify(rx.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP), 0);
    }
}
