//! Per-connection state machine: framing in, FIFO replies out, bounded
//! buffers in both directions.
//!
//! A connection owns its [`FrameDecoder`], a queue of submitted-but-
//! unanswered requests, and a write buffer of encoded replies. The
//! reactor calls three entry points — [`Conn::on_readable`],
//! [`Conn::pump_replies`], [`Conn::flush`] — and otherwise only inspects
//! pause/interest/deadline accessors. Everything here is synchronous and
//! non-blocking; any condition that poisons the byte stream returns a
//! [`CloseReason`] and the reactor drops the connection, which drops its
//! queued [`PendingResponse`]/[`BatchStream`] handles — the server side
//! observes the dropped stream, stops the batch at the next item boundary
//! and refunds every unprocessed ε slice (see `Server::handle_batch`).

use crate::metrics::NetMetrics;
use crate::NetConfig;
use pcor_faults::{site, Faults, SocketFault};
use pcor_service::{
    decode_request, encode_reply, BatchStream, EnvelopeSubmission, FrameDecoder, PendingResponse,
    ResponseEnvelope, Server, WireError, WireReply,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Which listener a connection arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proto {
    /// Length-prefixed envelope frames.
    Rpc,
    /// Minimal HTTP/1.1 (health + metrics).
    Http,
}

/// Why a connection is being closed (drives the close-cause metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// Peer closed or reset the socket.
    Peer,
    /// A socket I/O error (injected ones included).
    Io,
    /// The byte stream itself is poisoned (framing violation, oversized
    /// HTTP head) — no reply can be correlated, so close without one.
    Protocol,
    /// Graceful completion: everything owed was flushed (HTTP responses
    /// are `Connection: close`).
    Done,
    /// Reaped by the deadline wheel with no activity and no owed work.
    Idle,
    /// Reaped by the deadline wheel with reply bytes the peer refused to
    /// drain.
    Stalled,
}

impl CloseReason {
    pub(crate) fn record(self, metrics: &NetMetrics) {
        match self {
            CloseReason::Peer => metrics.closed_peer.inc(),
            CloseReason::Io | CloseReason::Protocol => metrics.closed_error.inc(),
            CloseReason::Idle => metrics.reaped_idle.inc(),
            CloseReason::Stalled => metrics.reaped_stalled.inc(),
            CloseReason::Done => {}
        }
    }
}

/// One admitted (or refused) request awaiting its wire replies, in FIFO
/// order with its connection's other requests.
#[derive(Debug)]
enum PendingReply {
    /// A single release in flight; `None` once consumed by `wait`.
    Single { pending: Option<PendingResponse> },
    /// A streaming batch: items drain as they finish, then the summary.
    Stream { version: u16, stream: BatchStream },
    /// Refused at admission (or malformed): the error reply is owed but
    /// nothing is in flight.
    Refused { error: WireError },
}

/// Read chunk size; also the upper bound a `short:` read fault truncates.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on a buffered HTTP request head.
const MAX_HTTP_HEAD: usize = 8 * 1024;

#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) proto: Proto,
    decoder: FrameDecoder,
    http_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    written: usize,
    queue: VecDeque<PendingReply>,
    /// Epoll interest currently registered for this connection.
    pub(crate) interest: u32,
    /// Last byte of socket progress in either direction.
    pub(crate) last_activity: Instant,
    /// Last time `flush` moved bytes (stall detection).
    last_write_progress: Instant,
    /// Flush what is buffered, then close (set for HTTP replies).
    closing: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, proto: Proto, config: &NetConfig, now: Instant) -> Self {
        Conn {
            stream,
            proto,
            decoder: FrameDecoder::with_max_frame(config.max_frame_len),
            http_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            queue: VecDeque::new(),
            interest: 0,
            last_activity: now,
            last_write_progress: now,
            closing: false,
        }
    }

    /// Reply bytes buffered but not yet on the socket.
    pub(crate) fn pending_write(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Whether reads are paused: the peer is not draining replies, or it
    /// has more envelopes in flight than its fair share. Level-triggered
    /// epoll makes this cheap — dropping `EPOLLIN` from the interest set
    /// is the whole mechanism, kernel socket buffers do the rest.
    pub(crate) fn read_paused(&self, config: &NetConfig) -> bool {
        self.pending_write() >= config.write_buf_limit
            || self.queue.len() >= config.max_inflight_per_conn
    }

    /// Whether any admitted request is still unanswered.
    pub(crate) fn has_inflight(&self) -> bool {
        self.queue
            .iter()
            .any(|entry| matches!(entry, PendingReply::Single { .. } | PendingReply::Stream { .. }))
    }

    /// Whether this connection owes the peer anything at all.
    fn owes_replies(&self) -> bool {
        !self.queue.is_empty() || self.pending_write() > 0
    }

    /// The epoll interest this connection should be registered with.
    pub(crate) fn desired_interest(&self, config: &NetConfig) -> u32 {
        let mut interest = crate::sys::EPOLLRDHUP;
        if !self.closing && !self.read_paused(config) {
            interest |= crate::sys::EPOLLIN;
        }
        if self.pending_write() > 0 {
            interest |= crate::sys::EPOLLOUT;
        }
        interest
    }

    /// When the deadline wheel should next revalidate this connection:
    /// the stall deadline while replies are owed on the wire, the idle
    /// deadline while nothing is owed at all, and a plain re-check
    /// interval while requests compute (neither idle nor stalled applies
    /// to a peer legitimately waiting on the server).
    pub(crate) fn next_deadline(&self, config: &NetConfig, now: Instant) -> Instant {
        if self.pending_write() > 0 {
            self.last_write_progress + config.stall_timeout
        } else if self.owes_replies() {
            now + config.idle_timeout
        } else {
            self.last_activity + config.idle_timeout
        }
    }

    /// Whether the wheel should reap this connection right now.
    pub(crate) fn reap_verdict(&self, config: &NetConfig, now: Instant) -> Option<CloseReason> {
        if self.pending_write() > 0
            && now.saturating_duration_since(self.last_write_progress) >= config.stall_timeout
        {
            return Some(CloseReason::Stalled);
        }
        if !self.owes_replies()
            && now.saturating_duration_since(self.last_activity) >= config.idle_timeout
        {
            return Some(CloseReason::Idle);
        }
        None
    }

    /// Drains the socket's readable bytes: frames are parsed and submitted
    /// (RPC) or buffered until a full request head arrives (HTTP).
    /// Returns `Err` when the connection must close.
    pub(crate) fn on_readable(
        &mut self,
        server: &Server,
        faults: &Faults,
        metrics: &NetMetrics,
        config: &NetConfig,
        now: Instant,
    ) -> Result<(), CloseReason> {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            if self.closing || self.read_paused(config) {
                return Ok(());
            }
            let cap = match faults.socket(site::NET_READ) {
                Some(SocketFault::Error) => return Err(CloseReason::Io),
                Some(SocketFault::Reset) => return Err(CloseReason::Peer),
                Some(SocketFault::Short(cap)) => cap.clamp(1, READ_CHUNK),
                None => READ_CHUNK,
            };
            match self.stream.read(&mut buf[..cap]) {
                Ok(0) => return Err(CloseReason::Peer),
                Ok(n) => {
                    self.last_activity = now;
                    metrics.bytes_read.add(n as u64);
                    match self.proto {
                        Proto::Rpc => self.ingest_rpc(&buf[..n], server, metrics)?,
                        Proto::Http => self.ingest_http(&buf[..n], server, metrics)?,
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) if err.kind() == std::io::ErrorKind::ConnectionReset => {
                    return Err(CloseReason::Peer)
                }
                Err(_) => return Err(CloseReason::Io),
            }
        }
    }

    /// Feeds raw bytes through the frame decoder and submits every
    /// complete envelope. Admission refusals become queued error replies
    /// (FIFO with real answers); framing violations close the connection.
    fn ingest_rpc(
        &mut self,
        bytes: &[u8],
        server: &Server,
        metrics: &NetMetrics,
    ) -> Result<(), CloseReason> {
        self.decoder.extend(bytes);
        loop {
            let payload = match self.decoder.next_frame() {
                Ok(Some(payload)) => payload,
                Ok(None) => return Ok(()),
                Err(_) => return Err(CloseReason::Protocol),
            };
            metrics.frames_read.inc();
            let entry = match decode_request(&payload) {
                Ok(envelope) => match server.try_submit_envelope_streaming(envelope) {
                    Ok(EnvelopeSubmission::Single(pending)) => {
                        PendingReply::Single { pending: Some(pending) }
                    }
                    Ok(EnvelopeSubmission::Stream { version, stream }) => {
                        PendingReply::Stream { version, stream }
                    }
                    Err(err) => {
                        let error = WireError::from_service(&err);
                        if error.is_backpressure() {
                            metrics.shed.inc();
                        }
                        PendingReply::Refused { error }
                    }
                },
                Err(err) => PendingReply::Refused { error: WireError::from_service(&err) },
            };
            self.queue.push_back(entry);
        }
    }

    /// Buffers HTTP bytes until one full request head arrives, then
    /// queues the response and flags the connection for close-after-flush.
    fn ingest_http(
        &mut self,
        bytes: &[u8],
        server: &Server,
        metrics: &NetMetrics,
    ) -> Result<(), CloseReason> {
        self.http_buf.extend_from_slice(bytes);
        if self.http_buf.len() > MAX_HTTP_HEAD {
            return Err(CloseReason::Protocol);
        }
        if let Some(response) = crate::http::respond(&self.http_buf, server) {
            metrics.http_requests.inc();
            self.write_buf.extend_from_slice(&response);
            self.closing = true;
        }
        Ok(())
    }

    /// Moves finished results from the request queue into the write
    /// buffer, strictly FIFO: the head request must produce its terminal
    /// reply before the next request's replies may start. Stops once the
    /// buffered bytes reach `write_buf_limit` so the per-connection
    /// memory cap bounds replies too, not just reads; returns `true` in
    /// that case so the caller re-pumps after `flush` makes progress.
    pub(crate) fn pump_replies(&mut self, metrics: &NetMetrics, config: &NetConfig) -> bool {
        while let Some(head) = self.queue.front_mut() {
            if self.write_buf.len() - self.written >= config.write_buf_limit {
                return true;
            }
            match head {
                PendingReply::Refused { error } => {
                    let reply = WireReply::Error(error.clone());
                    metrics.replies_error.inc();
                    self.write_buf.extend_from_slice(&encode_reply(&reply));
                    self.queue.pop_front();
                }
                PendingReply::Single { pending } => {
                    let finished =
                        pending.as_mut().map(PendingResponse::is_finished).unwrap_or(true);
                    if !finished {
                        return false;
                    }
                    let outcome =
                        pending.take().expect("single entry consumed exactly once").wait();
                    let reply = match outcome {
                        Ok(envelope) => {
                            metrics.replies_response.inc();
                            WireReply::Response(envelope)
                        }
                        Err(err) => {
                            metrics.replies_error.inc();
                            WireReply::Error(WireError::from_service(&err))
                        }
                    };
                    self.write_buf.extend_from_slice(&encode_reply(&reply));
                    self.queue.pop_front();
                }
                PendingReply::Stream { version, stream } => {
                    while self.write_buf.len() - self.written < config.write_buf_limit {
                        let Some(item) = stream.try_next_item() else { break };
                        metrics.replies_item.inc();
                        self.write_buf.extend_from_slice(&encode_reply(&WireReply::Item(item)));
                    }
                    if self.write_buf.len() - self.written >= config.write_buf_limit {
                        // Buffer full mid-stream: resume once flush drains.
                        return true;
                    }
                    let Some(summary) = stream.try_take_summary() else {
                        // Head still computing: FIFO blocks later replies.
                        return false;
                    };
                    let reply = match summary {
                        Ok(response) => {
                            metrics.replies_response.inc();
                            WireReply::Response(
                                ResponseEnvelope::batch(response).at_version(*version),
                            )
                        }
                        Err(err) => {
                            metrics.replies_error.inc();
                            WireReply::Error(WireError::from_service(&err))
                        }
                    };
                    self.write_buf.extend_from_slice(&encode_reply(&reply));
                    self.queue.pop_front();
                }
            }
        }
        false
    }

    /// Writes buffered reply bytes until the socket would block or the
    /// buffer drains. Returns `Err(Done)` when a close-after-flush
    /// connection has flushed everything.
    pub(crate) fn flush(
        &mut self,
        faults: &Faults,
        metrics: &NetMetrics,
        now: Instant,
    ) -> Result<(), CloseReason> {
        while self.written < self.write_buf.len() {
            let cap = match faults.socket(site::NET_WRITE) {
                Some(SocketFault::Error) => return Err(CloseReason::Io),
                Some(SocketFault::Reset) => return Err(CloseReason::Peer),
                Some(SocketFault::Short(cap)) => cap.max(1),
                None => usize::MAX,
            };
            let len = (self.write_buf.len() - self.written).min(cap);
            match self.stream.write(&self.write_buf[self.written..self.written + len]) {
                Ok(0) => return Err(CloseReason::Io),
                Ok(n) => {
                    self.written += n;
                    self.last_activity = now;
                    self.last_write_progress = now;
                    metrics.bytes_written.add(n as u64);
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) if err.kind() == std::io::ErrorKind::ConnectionReset => {
                    return Err(CloseReason::Peer)
                }
                Err(_) => return Err(CloseReason::Io),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
            if self.closing {
                return Err(CloseReason::Done);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcor_telemetry::MetricsRegistry;
    use std::net::TcpListener;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    fn refused_entry() -> PendingReply {
        PendingReply::Refused {
            error: WireError {
                kind: "queue-full".to_string(),
                message: "test refusal".to_string(),
                retry_after_ms: Some(5),
            },
        }
    }

    /// Regression: re-entering `flush` with `written > 0` on the
    /// fault-free path (write cap `usize::MAX`) must not overflow when
    /// computing the write window.
    #[test]
    fn flush_resumes_after_partial_write_without_overflow() {
        let (server, _client) = socket_pair();
        server.set_nonblocking(true).unwrap();
        let config = NetConfig::default();
        let metrics = NetMetrics::register(&MetricsRegistry::new());
        let faults = Faults::disabled();
        let now = Instant::now();
        let mut conn = Conn::new(server, Proto::Rpc, &config, now);
        // Far more than loopback send+receive buffers absorb: the first
        // flush stops on WouldBlock with bytes still buffered.
        conn.write_buf = vec![0xAB; 32 * 1024 * 1024];
        assert!(conn.flush(&faults, &metrics, now).is_ok());
        assert!(conn.written > 0, "kernel accepted nothing");
        assert!(conn.pending_write() > 0, "socket absorbed the whole buffer");
        // The second call re-enters mid-buffer; before the fix this
        // overflowed `written + cap` and panicked.
        assert!(conn.flush(&faults, &metrics, now).is_ok());
        assert!(conn.written <= conn.write_buf.len());
    }

    /// `pump_replies` stops buffering once `write_buf_limit` is reached
    /// (reporting `true` so the reactor re-pumps after flush progress)
    /// and drains the rest across pump/flush rounds.
    #[test]
    fn pump_replies_respects_write_buf_limit() {
        let (server, _client) = socket_pair();
        server.set_nonblocking(true).unwrap();
        let config = NetConfig::default().with_write_buf_limit(64);
        let metrics = NetMetrics::register(&MetricsRegistry::new());
        let faults = Faults::disabled();
        let now = Instant::now();
        let mut conn = Conn::new(server, Proto::Rpc, &config, now);
        for _ in 0..64 {
            conn.queue.push_back(refused_entry());
        }
        assert!(conn.pump_replies(&metrics, &config), "pump must stop at the cap");
        assert!(!conn.queue.is_empty(), "cap should hold back most of the queue");
        // One reply may overshoot the cap, but never more than that.
        let one_reply = match refused_entry() {
            PendingReply::Refused { error } => encode_reply(&WireReply::Error(error)).len(),
            _ => unreachable!(),
        };
        assert!(conn.pending_write() < config.write_buf_limit + one_reply);
        // Alternating pump/flush (the reactor's service loop) drains all
        // 64 replies without ever exceeding the bound.
        loop {
            conn.flush(&faults, &metrics, now).unwrap();
            assert!(conn.pending_write() < config.write_buf_limit + one_reply);
            if !conn.pump_replies(&metrics, &config) {
                break;
            }
        }
        conn.flush(&faults, &metrics, now).unwrap();
        assert!(conn.queue.is_empty());
        assert_eq!(conn.pending_write(), 0);
        assert_eq!(metrics.replies_error.get(), 64);
    }
}
