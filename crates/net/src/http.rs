//! Just enough HTTP/1.1 to be probed and scraped.
//!
//! The health/metrics listener serves exactly two resources — `GET
//! /healthz` from [`Server::health`] and `GET /metrics` from the
//! Prometheus-text exporter — with `Connection: close` semantics, so the
//! parser never needs keep-alive, chunking, or body handling. Anything
//! else gets the appropriate 4xx and the same close-after-reply
//! treatment.

use pcor_service::{HealthReport, Server};

/// Builds the full response once a complete request head (terminated by a
/// blank line) is buffered; `None` while more bytes are needed.
pub(crate) fn respond(buf: &[u8], server: &Server) -> Option<Vec<u8>> {
    let head_end = find_head_end(buf)?;
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = match (method, path) {
        ("GET", "/healthz") => {
            let health = server.health();
            let status = if health.ready { "200 OK" } else { "503 Service Unavailable" };
            build(status, "application/json", &health_json(&health))
        }
        ("GET", "/metrics") => build(
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &server.telemetry().render_prometheus(),
        ),
        ("GET", _) => build("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
        _ => build("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n"),
    };
    Some(response)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|window| window == b"\r\n\r\n").map(|pos| pos + 4)
}

fn build(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The readiness report as a flat JSON object (the shape a load
/// balancer's probe matcher wants; journal details stay in `/metrics`).
fn health_json(health: &HealthReport) -> String {
    format!(
        "{{\"ready\":{},\"accepting\":{},\"inflight\":{},\"queue_capacity\":{},\"deadline_exceeded\":{},\"shed\":{}}}\n",
        health.ready,
        health.accepting,
        health.inflight,
        health.queue_capacity,
        health.deadline_exceeded,
        health.shed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_waits_for_the_blank_line() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x"), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\ntrailing"), Some(27));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let response = String::from_utf8(build("200 OK", "text/plain", "hi\n")).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Content-Length: 3\r\n"));
        assert!(response.contains("Connection: close\r\n"));
        assert!(response.ends_with("\r\n\r\nhi\n"));
    }
}
