//! The structured tracing layer: per-release trace ids, causally linked
//! spans and a bounded in-memory sink.
//!
//! A [`TraceId`] is minted per release (or supplied by the client on the
//! request envelope) and propagated through every layer the release
//! touches. Each layer opens a [`SpanGuard`] naming its *stage* — server,
//! ledger, session, verifier, pool — parented to the caller's span; when
//! the guard drops, the span's wall time is recorded into the shared
//! `pcor_stage_duration_nanos{stage=…}` histogram and the finished span is
//! pushed into the [`TraceSink`] ring buffer, where tests, examples and
//! operators can drain and pretty-print it.
//!
//! Ids are minted from a process-wide atomic counter mixed through
//! splitmix64, so they are unique, cheap and require no entropy source.

use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The stage-duration histogram every finished span records into.
pub const STAGE_DURATION_METRIC: &str = "pcor_stage_duration_nanos";

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// splitmix64: cheap, full-period mixing of the sequential id counter.
fn mix(raw: u64) -> u64 {
    let mut z = raw.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn next_id() -> u64 {
    // Mixed ids are never 0 for raw >= 1 in practice; guard anyway so 0 can
    // mean "absent" on the wire.
    loop {
        let id = mix(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// The identity of one release's causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints a fresh process-unique trace id.
    pub fn next() -> Self {
        TraceId(next_id())
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One finished span, as stored in the [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span, if any (`None` for the root).
    pub parent: Option<SpanId>,
    /// The instrumented stage (e.g. `"server"`, `"ledger.reserve"`).
    pub stage: &'static str,
    /// Start offset from the sink's epoch.
    pub start: Duration,
    /// Wall time the stage took.
    pub elapsed: Duration,
}

/// A bounded ring buffer of finished spans.
///
/// Spans are pushed on guard drop; once `capacity` spans are buffered, the
/// oldest are discarded — tracing never grows unbounded and never blocks
/// the serving path for more than one short mutex.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    capacity: usize,
    buffer: Mutex<VecDeque<SpanRecord>>,
}

impl TraceSink {
    /// Default ring-buffer capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a sink retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            buffer: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut buffer = self.buffer.lock().expect("trace sink poisoned");
        if buffer.len() >= self.capacity {
            buffer.pop_front();
        }
        buffer.push_back(record);
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.buffer.lock().expect("trace sink poisoned").len()
    }

    /// Whether the sink holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every buffered span, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.buffer.lock().expect("trace sink poisoned").drain(..).collect()
    }

    /// A copy of the buffered spans, oldest first (the buffer is kept).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buffer.lock().expect("trace sink poisoned").iter().cloned().collect()
    }

    /// The spans of one trace, oldest first.
    pub fn trace(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.buffer
            .lock()
            .expect("trace sink poisoned")
            .iter()
            .filter(|record| record.trace == trace)
            .cloned()
            .collect()
    }

    /// Pretty-prints `spans` as an indented tree per trace, children under
    /// their parents, with per-stage wall times — the trace-dump format the
    /// examples print and the README documents.
    pub fn render(spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        let mut traces: Vec<TraceId> = Vec::new();
        for record in spans {
            if !traces.contains(&record.trace) {
                traces.push(record.trace);
            }
        }
        for trace in traces {
            out.push_str(&format!("trace {trace}\n"));
            let of_trace: Vec<&SpanRecord> = spans.iter().filter(|r| r.trace == trace).collect();
            // Roots: spans whose parent is absent from the buffer too (the
            // parent may have been evicted from the ring).
            let mut ordered: Vec<(&SpanRecord, usize)> = Vec::new();
            fn visit<'r>(
                node: &'r SpanRecord,
                depth: usize,
                all: &[&'r SpanRecord],
                ordered: &mut Vec<(&'r SpanRecord, usize)>,
            ) {
                ordered.push((node, depth));
                let mut children: Vec<&SpanRecord> =
                    all.iter().copied().filter(|r| r.parent == Some(node.span)).collect();
                children.sort_by_key(|r| r.start);
                for child in children {
                    visit(child, depth + 1, all, ordered);
                }
            }
            let mut roots: Vec<&SpanRecord> = of_trace
                .iter()
                .copied()
                .filter(|r| {
                    r.parent.is_none() || !of_trace.iter().any(|p| Some(p.span) == r.parent)
                })
                .collect();
            roots.sort_by_key(|r| r.start);
            for root in roots {
                visit(root, 0, &of_trace, &mut ordered);
            }
            for (record, depth) in ordered {
                out.push_str(&format!(
                    "{}{} {:.3} ms (start +{:.3} ms)\n",
                    "  ".repeat(depth + 1),
                    record.stage,
                    record.elapsed.as_secs_f64() * 1e3,
                    record.start.as_secs_f64() * 1e3,
                ));
            }
        }
        out
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

/// A live span: created by [`crate::Telemetry::span`], finished on drop.
///
/// Dropping the guard records the elapsed wall time into the
/// [`STAGE_DURATION_METRIC`] histogram for its stage and pushes the
/// finished [`SpanRecord`] into the sink. Pass [`SpanGuard::id`] as the
/// parent of child spans to link causality.
#[derive(Debug)]
pub struct SpanGuard {
    sink: Arc<TraceSink>,
    registry: Arc<MetricsRegistry>,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    stage: &'static str,
    started: Instant,
}

impl SpanGuard {
    pub(crate) fn start(
        sink: Arc<TraceSink>,
        registry: Arc<MetricsRegistry>,
        trace: TraceId,
        parent: Option<SpanId>,
        stage: &'static str,
    ) -> Self {
        SpanGuard {
            sink,
            registry,
            trace,
            span: SpanId(next_id()),
            parent,
            stage,
            started: Instant::now(),
        }
    }

    /// This span's id — the parent handle for child spans.
    pub fn id(&self) -> SpanId {
        self.span
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.registry
            .histogram(STAGE_DURATION_METRIC, &[("stage", self.stage)])
            .record_duration(elapsed);
        self.sink.push(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            stage: self.stage,
            start: self.started.saturating_duration_since(self.sink.epoch),
            elapsed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = TraceId::next();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id.0), "trace ids must not repeat");
        }
    }

    #[test]
    fn spans_link_causally_and_land_in_the_sink() {
        let sink = Arc::new(TraceSink::new(16));
        let registry = Arc::new(MetricsRegistry::new());
        let trace = TraceId::next();
        let root =
            SpanGuard::start(Arc::clone(&sink), Arc::clone(&registry), trace, None, "server");
        let child = SpanGuard::start(
            Arc::clone(&sink),
            Arc::clone(&registry),
            trace,
            Some(root.id()),
            "ledger.reserve",
        );
        let root_id = root.id();
        child.finish();
        root.finish();
        let spans = sink.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "ledger.reserve");
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[1].stage, "server");
        assert_eq!(spans[1].parent, None);
        // Both stages recorded their wall time.
        assert!(registry.contains(STAGE_DURATION_METRIC, &[("stage", "server")]));
        assert!(registry.contains(STAGE_DURATION_METRIC, &[("stage", "ledger.reserve")]));
    }

    #[test]
    fn the_ring_buffer_is_bounded() {
        let sink = Arc::new(TraceSink::new(4));
        let registry = Arc::new(MetricsRegistry::new());
        for _ in 0..10 {
            SpanGuard::start(
                Arc::clone(&sink),
                Arc::clone(&registry),
                TraceId::next(),
                None,
                "stage",
            );
        }
        assert_eq!(sink.len(), 4);
        assert!(!sink.is_empty());
    }

    #[test]
    fn render_indents_children_under_parents() {
        let sink = Arc::new(TraceSink::new(16));
        let registry = Arc::new(MetricsRegistry::new());
        let trace = TraceId::next();
        let root =
            SpanGuard::start(Arc::clone(&sink), Arc::clone(&registry), trace, None, "server");
        SpanGuard::start(
            Arc::clone(&sink),
            Arc::clone(&registry),
            trace,
            Some(root.id()),
            "session",
        );
        drop(root);
        let text = TraceSink::render(&sink.snapshot());
        assert!(text.contains(&format!("trace {trace}")));
        let server_line = text.lines().find(|l| l.trim_start().starts_with("server")).unwrap();
        let session_line = text.lines().find(|l| l.trim_start().starts_with("session")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(session_line) > indent(server_line), "children indent deeper");
    }
}
