//! The privacy-budget audit log: an append-only, serializable record of
//! every ε movement in the system.
//!
//! Every ledger operation appends one [`BudgetEvent`] carrying the analyst,
//! dataset, the ε involved, the mechanism (when known), the release's trace
//! id and a **logical clock** (`seq`). The emitting ledger appends while
//! holding its account lock, so the logical clock is consistent with the
//! accountant's own operation order: replaying the events in `seq` order
//! reproduces every account's `spent`/`reserved` state exactly — the
//! [`AuditLog::fold`] invariant the service tests assert, and the property
//! that makes this log the precursor of the ROADMAP's write-ahead ledger
//! (a WAL replays the same stream from disk instead of memory).
//!
//! Balance invariant: for every trace, the reserved ε equals the committed
//! plus refunded ε once the release resolves — ε can move between `spent`
//! and `remaining`, never leak.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One ε movement in the budget ledger.
///
/// `seq` is the log's logical clock: strictly increasing, assigned under
/// the emitting ledger's account lock, so event order == accountant
/// operation order. `trace` links the event to the release's trace (0 when
/// the operation ran outside a traced request).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetEvent {
    /// ε was held for an in-flight release (phase 1).
    Reserved {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The held ε.
        epsilon: f64,
        /// The DP mechanism of the release, when known at reserve time.
        mechanism: Option<String>,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// Held ε became a permanent spend (phase 2, success).
    Committed {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The committed ε.
        epsilon: f64,
        /// The DP mechanism that consumed the ε, when known.
        mechanism: Option<String>,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// Held ε returned to the account (phase 2, failure / cancellation /
    /// panic-refund via the drop guard).
    Refunded {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The refunded ε.
        epsilon: f64,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// A reservation was refused: the account could not cover the request.
    /// No ε moved.
    Refused {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The ε the request asked for.
        requested: f64,
        /// The ε that was actually available.
        remaining: f64,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
}

impl BudgetEvent {
    /// The event's logical clock.
    pub fn seq(&self) -> u64 {
        match self {
            BudgetEvent::Reserved { seq, .. }
            | BudgetEvent::Committed { seq, .. }
            | BudgetEvent::Refunded { seq, .. }
            | BudgetEvent::Refused { seq, .. } => *seq,
        }
    }

    /// The `(analyst, dataset)` account the event touches.
    pub fn account(&self) -> (&str, &str) {
        match self {
            BudgetEvent::Reserved { analyst, dataset, .. }
            | BudgetEvent::Committed { analyst, dataset, .. }
            | BudgetEvent::Refunded { analyst, dataset, .. }
            | BudgetEvent::Refused { analyst, dataset, .. } => (analyst, dataset),
        }
    }

    /// The event's trace id (0 = untraced).
    pub fn trace(&self) -> u64 {
        match self {
            BudgetEvent::Reserved { trace, .. }
            | BudgetEvent::Committed { trace, .. }
            | BudgetEvent::Refunded { trace, .. }
            | BudgetEvent::Refused { trace, .. } => *trace,
        }
    }
}

/// The replayed state of one `(analyst, dataset)` account, produced by
/// [`AuditLog::fold`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditAccount {
    /// ε committed (a permanent spend).
    pub committed: f64,
    /// ε refunded back to the account.
    pub refunded: f64,
    /// ε reserved over the account's lifetime (gross, not outstanding).
    pub reserved: f64,
    /// Reservations refused.
    pub refusals: u64,
}

impl AuditAccount {
    /// ε currently held by unresolved reservations:
    /// `reserved − committed − refunded`.
    pub fn outstanding(&self) -> f64 {
        self.reserved - self.committed - self.refunded
    }
}

/// The append-only budget audit log.
///
/// Appends assign the logical clock atomically and push under a short
/// mutex; reads copy. The log is bounded only by memory — a serving
/// deployment would periodically drain it to durable storage (the WAL the
/// ROADMAP plans); tests and examples read it in place.
#[derive(Debug, Default)]
pub struct AuditLog {
    clock: AtomicU64,
    events: Mutex<Vec<BudgetEvent>>,
}

impl AuditLog {
    /// Creates an empty log with the logical clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next logical-clock value (what the next append will be stamped
    /// with). Exposed so a ledger snapshot can record *as of which event*
    /// it was taken.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Stamps `event`'s `seq` with the next logical clock and appends it.
    /// Returns the assigned seq.
    ///
    /// Callers that need event order to match an external lock order (the
    /// budget ledger does) must call this while holding that lock.
    pub fn append(&self, mut event: BudgetEvent) -> u64 {
        let seq = self.clock.fetch_add(1, Ordering::SeqCst);
        match &mut event {
            BudgetEvent::Reserved { seq: s, .. }
            | BudgetEvent::Committed { seq: s, .. }
            | BudgetEvent::Refunded { seq: s, .. }
            | BudgetEvent::Refused { seq: s, .. } => *s = seq,
        }
        self.events.lock().expect("audit log poisoned").push(event);
        seq
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.lock().expect("audit log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every event, in append (= logical clock) order.
    pub fn events(&self) -> Vec<BudgetEvent> {
        self.events.lock().expect("audit log poisoned").clone()
    }

    /// Replays the log into per-account state — the fold the ledger
    /// snapshot is asserted against.
    pub fn fold(&self) -> BTreeMap<(String, String), AuditAccount> {
        let events = self.events.lock().expect("audit log poisoned");
        let mut accounts: BTreeMap<(String, String), AuditAccount> = BTreeMap::new();
        for event in events.iter() {
            let (analyst, dataset) = event.account();
            let account = accounts.entry((analyst.to_string(), dataset.to_string())).or_default();
            match event {
                BudgetEvent::Reserved { epsilon, .. } => account.reserved += epsilon,
                BudgetEvent::Committed { epsilon, .. } => account.committed += epsilon,
                BudgetEvent::Refunded { epsilon, .. } => account.refunded += epsilon,
                BudgetEvent::Refused { .. } => account.refusals += 1,
            }
        }
        accounts
    }

    /// Serializes every event as a JSON array — the WAL-precursor dump.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events()).expect("audit events serialize infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserved(analyst: &str, epsilon: f64, trace: u64) -> BudgetEvent {
        BudgetEvent::Reserved {
            seq: 0,
            analyst: analyst.into(),
            dataset: "d".into(),
            epsilon,
            mechanism: Some("Exponential".into()),
            trace,
        }
    }

    #[test]
    fn appends_assign_a_strictly_increasing_logical_clock() {
        let log = AuditLog::new();
        let a = log.append(reserved("alice", 0.2, 7));
        let b = log.append(BudgetEvent::Committed {
            seq: 99, // overwritten by append
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.2,
            mechanism: None,
            trace: 7,
        });
        assert!(b > a);
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq(), a);
        assert_eq!(events[1].seq(), b);
        assert_eq!(log.clock(), 2);
        assert_eq!(events[0].trace(), 7);
        assert_eq!(events[0].account(), ("alice", "d"));
    }

    #[test]
    fn fold_replays_reserve_commit_refund_into_balances() {
        let log = AuditLog::new();
        log.append(reserved("alice", 0.6, 1));
        log.append(BudgetEvent::Committed {
            seq: 0,
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.4,
            mechanism: Some("PermuteAndFlip".into()),
            trace: 1,
        });
        log.append(BudgetEvent::Refunded {
            seq: 0,
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.2,
            trace: 1,
        });
        log.append(BudgetEvent::Refused {
            seq: 0,
            analyst: "bob".into(),
            dataset: "d".into(),
            requested: 0.5,
            remaining: 0.1,
            trace: 2,
        });
        let folded = log.fold();
        let alice = folded[&("alice".to_string(), "d".to_string())];
        assert!((alice.reserved - 0.6).abs() < 1e-12);
        assert!((alice.committed - 0.4).abs() < 1e-12);
        assert!((alice.refunded - 0.2).abs() < 1e-12);
        assert!(alice.outstanding().abs() < 1e-12, "resolved traces leak no ε");
        let bob = folded[&("bob".to_string(), "d".to_string())];
        assert_eq!(bob.refusals, 1);
        assert_eq!(bob.outstanding(), 0.0);
    }

    #[test]
    fn events_round_trip_through_json() {
        let log = AuditLog::new();
        log.append(reserved("alice", 0.25, 42));
        log.append(BudgetEvent::Refused {
            seq: 0,
            analyst: "eve".into(),
            dataset: "d".into(),
            requested: 1.0,
            remaining: 0.0,
            trace: 0,
        });
        let json = log.to_json();
        let back: Vec<BudgetEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log.events());
        assert!(json.contains("Reserved"));
        assert!(json.contains("Refused"));
        assert!(json.contains("Exponential"));
    }
}
