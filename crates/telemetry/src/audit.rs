//! The privacy-budget audit log: an append-only, serializable record of
//! every ε movement in the system.
//!
//! Every ledger operation appends one [`BudgetEvent`] carrying the analyst,
//! dataset, the ε involved, the mechanism (when known), the release's trace
//! id and a **logical clock** (`seq`). The emitting ledger appends while
//! holding its account lock, so the logical clock is consistent with the
//! accountant's own operation order: replaying the events in `seq` order
//! reproduces every account's `spent`/`reserved` state exactly — the
//! [`AuditLog::fold`] invariant the service tests assert, and the property
//! that makes this log the precursor of the ROADMAP's write-ahead ledger
//! (a WAL replays the same stream from disk instead of memory).
//!
//! Balance invariant: for every trace, the reserved ε equals the committed
//! plus refunded ε once the release resolves — ε can move between `spent`
//! and `remaining`, never leak.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One ε movement in the budget ledger.
///
/// `seq` is the log's logical clock: strictly increasing, assigned under
/// the emitting ledger's account lock, so event order == accountant
/// operation order. `trace` links the event to the release's trace (0 when
/// the operation ran outside a traced request).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetEvent {
    /// ε was held for an in-flight release (phase 1).
    Reserved {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The held ε.
        epsilon: f64,
        /// The DP mechanism of the release, when known at reserve time.
        mechanism: Option<String>,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// Held ε became a permanent spend (phase 2, success).
    Committed {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The committed ε.
        epsilon: f64,
        /// The DP mechanism that consumed the ε, when known.
        mechanism: Option<String>,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// Held ε returned to the account (phase 2, failure / cancellation /
    /// panic-refund via the drop guard).
    Refunded {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The refunded ε.
        epsilon: f64,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
    /// A reservation was refused: the account could not cover the request.
    /// No ε moved.
    Refused {
        /// Logical clock of the append.
        seq: u64,
        /// The analyst principal.
        analyst: String,
        /// The dataset the budget applies to.
        dataset: String,
        /// The ε the request asked for.
        requested: f64,
        /// The ε that was actually available.
        remaining: f64,
        /// The release's trace id (0 = untraced).
        trace: u64,
    },
}

impl BudgetEvent {
    /// The event's logical clock.
    pub fn seq(&self) -> u64 {
        match self {
            BudgetEvent::Reserved { seq, .. }
            | BudgetEvent::Committed { seq, .. }
            | BudgetEvent::Refunded { seq, .. }
            | BudgetEvent::Refused { seq, .. } => *seq,
        }
    }

    /// The `(analyst, dataset)` account the event touches.
    pub fn account(&self) -> (&str, &str) {
        match self {
            BudgetEvent::Reserved { analyst, dataset, .. }
            | BudgetEvent::Committed { analyst, dataset, .. }
            | BudgetEvent::Refunded { analyst, dataset, .. }
            | BudgetEvent::Refused { analyst, dataset, .. } => (analyst, dataset),
        }
    }

    /// The event's trace id (0 = untraced).
    pub fn trace(&self) -> u64 {
        match self {
            BudgetEvent::Reserved { trace, .. }
            | BudgetEvent::Committed { trace, .. }
            | BudgetEvent::Refunded { trace, .. }
            | BudgetEvent::Refused { trace, .. } => *trace,
        }
    }

    /// Returns the event with its `seq` replaced — used by the durable
    /// ledger to stamp the journaled copy with the clock value the
    /// in-memory append just assigned.
    pub fn with_seq(mut self, seq: u64) -> Self {
        match &mut self {
            BudgetEvent::Reserved { seq: s, .. }
            | BudgetEvent::Committed { seq: s, .. }
            | BudgetEvent::Refunded { seq: s, .. }
            | BudgetEvent::Refused { seq: s, .. } => *s = seq,
        }
        self
    }
}

/// How a sequence check failed: the stream skipped clock values or
/// repeated one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqErrorKind {
    /// `found > expected`: at least one event is missing.
    Gap,
    /// `found ≤` an already-seen seq: a duplicate (or reordered) event.
    Duplicate,
}

/// The first offender found by a contiguity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqError {
    /// Position of the offending event in the checked stream.
    pub index: usize,
    /// The seq the stream should have carried at that position.
    pub expected: u64,
    /// The seq it actually carried.
    pub found: u64,
    /// Whether values were skipped or repeated.
    pub kind: SeqErrorKind,
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            SeqErrorKind::Gap => "gap",
            SeqErrorKind::Duplicate => "duplicate",
        };
        write!(
            f,
            "audit seq {kind} at event {}: expected seq {}, found {}",
            self.index, self.expected, self.found
        )
    }
}

impl std::error::Error for SeqError {}

/// The replayed state of one `(analyst, dataset)` account, produced by
/// [`AuditLog::fold`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditAccount {
    /// ε committed (a permanent spend).
    pub committed: f64,
    /// ε refunded back to the account.
    pub refunded: f64,
    /// ε reserved over the account's lifetime (gross, not outstanding).
    pub reserved: f64,
    /// Reservations refused.
    pub refusals: u64,
}

impl AuditAccount {
    /// ε currently held by unresolved reservations:
    /// `reserved − committed − refunded`.
    pub fn outstanding(&self) -> f64 {
        self.reserved - self.committed - self.refunded
    }
}

/// The append-only budget audit log.
///
/// Appends assign the logical clock atomically and push under a short
/// mutex; reads copy. The log is bounded only by memory — a serving
/// deployment would periodically drain it to durable storage (the WAL the
/// ROADMAP plans); tests and examples read it in place.
#[derive(Debug, Default)]
pub struct AuditLog {
    clock: AtomicU64,
    events: Mutex<Vec<BudgetEvent>>,
}

impl AuditLog {
    /// Creates an empty log with the logical clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from replayed events, preserving their seqs and
    /// setting the clock past the highest one — the WAL recovery path.
    /// Fresh appends continue the original numbering seamlessly.
    pub fn replay(events: Vec<BudgetEvent>) -> Self {
        let clock = events.iter().map(|e| e.seq() + 1).max().unwrap_or(0);
        AuditLog { clock: AtomicU64::new(clock), events: Mutex::new(events) }
    }

    /// Advances the logical clock to at least `to`. Used when a checkpoint
    /// recorded clock `to` but the tail after it is empty, so fresh appends
    /// never reuse a seq the compacted prefix already spent.
    pub fn advance_clock(&self, to: u64) {
        self.clock.fetch_max(to, Ordering::SeqCst);
    }

    /// The next logical-clock value (what the next append will be stamped
    /// with). Exposed so a ledger snapshot can record *as of which event*
    /// it was taken.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Stamps `event`'s `seq` with the next logical clock and appends it.
    /// Returns the assigned seq.
    ///
    /// Callers that need event order to match an external lock order (the
    /// budget ledger does) must call this while holding that lock.
    pub fn append(&self, mut event: BudgetEvent) -> u64 {
        let seq = self.clock.fetch_add(1, Ordering::SeqCst);
        match &mut event {
            BudgetEvent::Reserved { seq: s, .. }
            | BudgetEvent::Committed { seq: s, .. }
            | BudgetEvent::Refunded { seq: s, .. }
            | BudgetEvent::Refused { seq: s, .. } => *s = seq,
        }
        self.events.lock().expect("audit log poisoned").push(event);
        seq
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.lock().expect("audit log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every event, in append (= logical clock) order.
    pub fn events(&self) -> Vec<BudgetEvent> {
        self.events.lock().expect("audit log poisoned").clone()
    }

    /// Replays the log into per-account state — the fold the ledger
    /// snapshot is asserted against.
    pub fn fold(&self) -> BTreeMap<(String, String), AuditAccount> {
        let events = self.events.lock().expect("audit log poisoned");
        Self::fold_events(&events)
    }

    /// The same fold over an externally-held event stream (e.g. one just
    /// replayed from a WAL, before any log exists to hold it).
    pub fn fold_events(events: &[BudgetEvent]) -> BTreeMap<(String, String), AuditAccount> {
        let mut accounts: BTreeMap<(String, String), AuditAccount> = BTreeMap::new();
        for event in events {
            let (analyst, dataset) = event.account();
            let account = accounts.entry((analyst.to_string(), dataset.to_string())).or_default();
            match event {
                BudgetEvent::Reserved { epsilon, .. } => account.reserved += epsilon,
                BudgetEvent::Committed { epsilon, .. } => account.committed += epsilon,
                BudgetEvent::Refunded { epsilon, .. } => account.refunded += epsilon,
                BudgetEvent::Refused { .. } => account.refusals += 1,
            }
        }
        accounts
    }

    /// Checks that the log's seqs are gap-free and duplicate-free,
    /// surfacing the first offender. An empty log is trivially contiguous.
    ///
    /// This is the WAL replay integrity gate: a recovered stream whose
    /// clocks skip or repeat means records were lost or re-delivered, and
    /// replaying it would produce wrong balances.
    pub fn verify_contiguous(&self) -> Result<(), SeqError> {
        let events = self.events.lock().expect("audit log poisoned");
        Self::verify_events_contiguous(&events, None)
    }

    /// The same check over an externally-held stream. When `start` is
    /// given the first event must carry exactly that seq (a WAL tail must
    /// start where its checkpoint's clock left off); otherwise the first
    /// event anchors the expectation.
    pub fn verify_events_contiguous(
        events: &[BudgetEvent],
        start: Option<u64>,
    ) -> Result<(), SeqError> {
        let anchor = match (events.first(), start) {
            (None, _) => return Ok(()),
            (Some(first), None) => first.seq(),
            (Some(_), Some(start)) => start,
        };
        for (index, event) in events.iter().enumerate() {
            let expected = anchor + index as u64;
            let found = event.seq();
            if found != expected {
                let kind =
                    if found > expected { SeqErrorKind::Gap } else { SeqErrorKind::Duplicate };
                return Err(SeqError { index, expected, found, kind });
            }
        }
        Ok(())
    }

    /// Serializes every event as a JSON array — the WAL-precursor dump.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events()).expect("audit events serialize infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserved(analyst: &str, epsilon: f64, trace: u64) -> BudgetEvent {
        BudgetEvent::Reserved {
            seq: 0,
            analyst: analyst.into(),
            dataset: "d".into(),
            epsilon,
            mechanism: Some("Exponential".into()),
            trace,
        }
    }

    #[test]
    fn appends_assign_a_strictly_increasing_logical_clock() {
        let log = AuditLog::new();
        let a = log.append(reserved("alice", 0.2, 7));
        let b = log.append(BudgetEvent::Committed {
            seq: 99, // overwritten by append
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.2,
            mechanism: None,
            trace: 7,
        });
        assert!(b > a);
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq(), a);
        assert_eq!(events[1].seq(), b);
        assert_eq!(log.clock(), 2);
        assert_eq!(events[0].trace(), 7);
        assert_eq!(events[0].account(), ("alice", "d"));
    }

    #[test]
    fn fold_replays_reserve_commit_refund_into_balances() {
        let log = AuditLog::new();
        log.append(reserved("alice", 0.6, 1));
        log.append(BudgetEvent::Committed {
            seq: 0,
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.4,
            mechanism: Some("PermuteAndFlip".into()),
            trace: 1,
        });
        log.append(BudgetEvent::Refunded {
            seq: 0,
            analyst: "alice".into(),
            dataset: "d".into(),
            epsilon: 0.2,
            trace: 1,
        });
        log.append(BudgetEvent::Refused {
            seq: 0,
            analyst: "bob".into(),
            dataset: "d".into(),
            requested: 0.5,
            remaining: 0.1,
            trace: 2,
        });
        let folded = log.fold();
        let alice = folded[&("alice".to_string(), "d".to_string())];
        assert!((alice.reserved - 0.6).abs() < 1e-12);
        assert!((alice.committed - 0.4).abs() < 1e-12);
        assert!((alice.refunded - 0.2).abs() < 1e-12);
        assert!(alice.outstanding().abs() < 1e-12, "resolved traces leak no ε");
        let bob = folded[&("bob".to_string(), "d".to_string())];
        assert_eq!(bob.refusals, 1);
        assert_eq!(bob.outstanding(), 0.0);
    }

    #[test]
    fn verify_contiguous_accepts_an_empty_log() {
        let log = AuditLog::new();
        assert_eq!(log.verify_contiguous(), Ok(()));
        assert_eq!(AuditLog::verify_events_contiguous(&[], Some(7)), Ok(()));
    }

    #[test]
    fn verify_contiguous_accepts_dense_streams_from_any_anchor() {
        let log = AuditLog::new();
        log.append(reserved("alice", 0.1, 1));
        log.append(reserved("alice", 0.1, 2));
        log.append(reserved("bob", 0.1, 3));
        assert_eq!(log.verify_contiguous(), Ok(()));
        // A tail starting mid-history anchors at its own first seq…
        let tail: Vec<_> = log.events().into_iter().skip(1).collect();
        assert_eq!(AuditLog::verify_events_contiguous(&tail, None), Ok(()));
        // …and matches an explicit checkpoint clock.
        assert_eq!(AuditLog::verify_events_contiguous(&tail, Some(1)), Ok(()));
    }

    #[test]
    fn verify_contiguous_surfaces_the_first_gap() {
        let events = vec![
            reserved("alice", 0.1, 1).with_seq(0),
            reserved("alice", 0.1, 2).with_seq(1),
            reserved("alice", 0.1, 3).with_seq(4),
            reserved("alice", 0.1, 4).with_seq(5),
        ];
        let err = AuditLog::verify_events_contiguous(&events, None).unwrap_err();
        assert_eq!(err, SeqError { index: 2, expected: 2, found: 4, kind: SeqErrorKind::Gap });
        assert!(err.to_string().contains("gap"));
    }

    #[test]
    fn verify_contiguous_surfaces_the_first_duplicate() {
        let events = vec![
            reserved("alice", 0.1, 1).with_seq(3),
            reserved("alice", 0.1, 2).with_seq(4),
            reserved("alice", 0.1, 3).with_seq(4),
        ];
        let err = AuditLog::verify_events_contiguous(&events, None).unwrap_err();
        assert_eq!(
            err,
            SeqError { index: 2, expected: 5, found: 4, kind: SeqErrorKind::Duplicate }
        );
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn verify_contiguous_pins_the_start_when_a_checkpoint_clock_is_given() {
        let events = vec![reserved("alice", 0.1, 1).with_seq(9)];
        let err = AuditLog::verify_events_contiguous(&events, Some(7)).unwrap_err();
        assert_eq!(err.kind, SeqErrorKind::Gap);
        assert_eq!(err.expected, 7);
        assert_eq!(err.found, 9);
    }

    #[test]
    fn replay_preserves_seqs_and_continues_the_clock() {
        let original = AuditLog::new();
        original.append(reserved("alice", 0.3, 1));
        original.append(reserved("bob", 0.2, 2));
        let rebuilt = AuditLog::replay(original.events());
        assert_eq!(rebuilt.events(), original.events());
        assert_eq!(rebuilt.clock(), original.clock());
        let next = rebuilt.append(reserved("carol", 0.1, 3));
        assert_eq!(next, 2, "fresh appends continue the original numbering");
        assert_eq!(rebuilt.verify_contiguous(), Ok(()));

        // An empty tail after a checkpoint: the clock advances to the
        // checkpoint's value so compacted seqs are never reissued.
        let empty = AuditLog::replay(Vec::new());
        empty.advance_clock(17);
        assert_eq!(empty.append(reserved("dave", 0.1, 4)), 17);
    }

    #[test]
    fn events_round_trip_through_json() {
        let log = AuditLog::new();
        log.append(reserved("alice", 0.25, 42));
        log.append(BudgetEvent::Refused {
            seq: 0,
            analyst: "eve".into(),
            dataset: "d".into(),
            requested: 1.0,
            remaining: 0.0,
            trace: 0,
        });
        let json = log.to_json();
        let back: Vec<BudgetEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log.events());
        assert!(json.contains("Reserved"));
        assert!(json.contains("Refused"));
        assert!(json.contains("Exponential"));
    }
}
