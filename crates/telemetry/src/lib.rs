//! `pcor-telemetry` — the unified observability substrate for the PCOR
//! workspace.
//!
//! The crate bundles three capabilities behind one aggregating handle,
//! [`Telemetry`]:
//!
//! 1. **Metrics** ([`MetricsRegistry`]): lock-cheap atomic [`Counter`]s,
//!    f64 [`Gauge`]s and log-linear [`Histogram`]s (p50/p95/p99 with
//!    bounded relative error, allocation-free recording), exported as
//!    Prometheus text ([`MetricsRegistry::render_prometheus`]) or a JSON
//!    snapshot ([`MetricsRegistry::snapshot_json`]). Handles are
//!    `Arc`-shared: look a series up once, then record with nothing but
//!    atomic ops.
//! 2. **Tracing** ([`TraceSink`], [`SpanGuard`]): a per-release
//!    [`TraceId`] is threaded through every layer; each layer opens a
//!    span naming its stage, and finished spans record wall time into the
//!    `pcor_stage_duration_nanos{stage=…}` histogram and land in a bounded
//!    ring buffer that tests and examples drain and pretty-print.
//! 3. **Budget auditing** ([`AuditLog`], [`BudgetEvent`]): an append-only,
//!    serializable record of every ε reserve/commit/refund/refusal with a
//!    logical clock — the precursor of the ROADMAP's write-ahead ledger.
//!
//! Everything is hand-rolled on `std` — no network, no external crates —
//! matching the workspace's vendored-offline policy.
//!
//! # Collectors
//!
//! Subsystems that already keep their own counters (the server, the pool,
//! the context cache) register a *collector* closure via
//! [`Telemetry::register_collector`]. Collectors run immediately before
//! every export, refreshing registry gauges from those native snapshots —
//! so a single [`Telemetry::render_prometheus`] scrape is always
//! consistent with `Server::metrics()` and friends without the hot paths
//! paying for double bookkeeping.

mod audit;
mod metrics;
mod trace;

pub use audit::{AuditAccount, AuditLog, BudgetEvent, SeqError, SeqErrorKind};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{SpanGuard, SpanId, SpanRecord, TraceId, TraceSink, STAGE_DURATION_METRIC};

use std::sync::{Arc, Mutex};

type Collector = Box<dyn Fn(&MetricsRegistry) + Send + Sync>;

/// The aggregating observability handle: one registry, one trace sink, one
/// audit log, shared by every layer of a serving stack.
///
/// Cloning is cheap (`Arc` all the way down); a [`crate::Telemetry`] built
/// by the server is handed to the ledger, the sessions and the examples
/// alike.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    sink: Arc<TraceSink>,
    audit: Arc<AuditLog>,
    collectors: Arc<Mutex<Vec<Collector>>>,
}

impl Telemetry {
    /// Creates a fresh telemetry bundle with a default-capacity trace
    /// sink.
    pub fn new() -> Self {
        Self::with_trace_capacity(TraceSink::DEFAULT_CAPACITY)
    }

    /// Creates a bundle whose trace ring buffer retains at most
    /// `capacity` finished spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            registry: Arc::new(MetricsRegistry::new()),
            sink: Arc::new(TraceSink::new(capacity)),
            audit: Arc::new(AuditLog::new()),
            collectors: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Creates a bundle around an existing audit log — the WAL recovery
    /// path, where the log (with its original seqs and clock) is rebuilt
    /// from replayed events before any telemetry exists to hold it.
    pub fn with_audit(audit: AuditLog) -> Self {
        Telemetry { audit: Arc::new(audit), ..Self::new() }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The shared trace sink.
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// The shared budget audit log.
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.audit
    }

    /// Opens a span for `stage` within `trace`, parented to `parent`.
    ///
    /// The returned guard records its wall time and lands in the sink when
    /// dropped; pass [`SpanGuard::id`] as the `parent` of child spans.
    pub fn span(&self, trace: TraceId, parent: Option<SpanId>, stage: &'static str) -> SpanGuard {
        SpanGuard::start(Arc::clone(&self.sink), Arc::clone(&self.registry), trace, parent, stage)
    }

    /// Registers a closure that refreshes registry series from an external
    /// snapshot. Collectors run, in registration order, at the start of
    /// every [`Telemetry::render_prometheus`] / [`Telemetry::snapshot_json`]
    /// call.
    pub fn register_collector<F>(&self, collector: F)
    where
        F: Fn(&MetricsRegistry) + Send + Sync + 'static,
    {
        self.collectors.lock().expect("collector list poisoned").push(Box::new(collector));
    }

    /// Runs every registered collector against the registry.
    pub fn collect(&self) {
        let collectors = self.collectors.lock().expect("collector list poisoned");
        for collector in collectors.iter() {
            collector(&self.registry);
        }
    }

    /// Runs the collectors, then renders the registry in Prometheus text
    /// exposition format.
    pub fn render_prometheus(&self) -> String {
        self.collect();
        self.registry.render_prometheus()
    }

    /// Runs the collectors, then renders the registry as pretty JSON.
    pub fn snapshot_json(&self) -> String {
        self.collect();
        self.registry.snapshot_json()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans_buffered", &self.sink.len())
            .field("audit_events", &self.audit.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_bundle_wires_spans_metrics_and_audit_together() {
        let telemetry = Telemetry::new();
        let trace = TraceId::next();
        {
            let root = telemetry.span(trace, None, "server");
            let _child = telemetry.span(trace, Some(root.id()), "ledger.reserve");
        }
        telemetry.audit().append(BudgetEvent::Committed {
            seq: 0,
            analyst: "alice".into(),
            dataset: "toy".into(),
            epsilon: 0.5,
            mechanism: None,
            trace: trace.0,
        });
        assert_eq!(telemetry.sink().len(), 2);
        assert_eq!(telemetry.audit().len(), 1);
        let text = telemetry.render_prometheus();
        assert!(text.contains(STAGE_DURATION_METRIC));
    }

    #[test]
    fn collectors_refresh_gauges_before_every_export() {
        let telemetry = Telemetry::new();
        let source = Arc::new(std::sync::atomic::AtomicU64::new(3));
        let seen = Arc::clone(&source);
        telemetry.register_collector(move |registry| {
            let value = seen.load(std::sync::atomic::Ordering::SeqCst);
            registry.gauge("pcor_test_depth", &[]).set(value as f64);
        });
        let first = telemetry.render_prometheus();
        assert!(first.contains("pcor_test_depth 3"));
        source.store(9, std::sync::atomic::Ordering::SeqCst);
        let second = telemetry.render_prometheus();
        assert!(second.contains("pcor_test_depth 9"));
    }

    #[test]
    fn clones_share_state() {
        let telemetry = Telemetry::new();
        let clone = telemetry.clone();
        clone.registry().counter("pcor_shared_total", &[]).inc();
        assert_eq!(telemetry.registry().counter("pcor_shared_total", &[]).get(), 1);
    }
}
