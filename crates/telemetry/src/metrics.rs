//! The metrics registry: atomic counters, gauges and log-linear histograms
//! behind stable series names, with Prometheus-text and JSON export.
//!
//! Design goals, in order:
//!
//! 1. **Allocation-free hot path.** Recording into a counter, gauge or
//!    histogram is one (histograms: three) relaxed atomic RMW — no locks,
//!    no allocation, no formatting. Callers obtain an `Arc` handle once
//!    (registration takes a short mutex) and hammer the atomics thereafter.
//! 2. **Stable names.** Every series is a `name{label="value",…}` pair in
//!    the Prometheus data model; the scrape surface is the contract, not
//!    the Rust structs behind it (which this registry absorbs).
//! 3. **Offline.** The exposition format is hand-rolled text; the JSON
//!    snapshot goes through the vendored `serde` value tree.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as IEEE-754 bits in one
/// atomic, so reads and writes are lock-free and tear-free).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution of the log-linear histogram: each power of two is
/// split into `2^SUB_BITS` linear sub-buckets (HdrHistogram's layout at low
/// precision). 8 sub-buckets keep the quantile error under ~12.5% while the
/// whole `u64` range fits in [`Histogram::BUCKETS`] fixed slots.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A fixed-bucket log-linear histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes, …).
///
/// Recording is allocation-free and lock-free: one bucket increment plus a
/// count and sum update, all relaxed atomics. Quantiles are estimated from
/// the bucket upper bounds (log-linear layout ⇒ relative error bounded by
/// the sub-bucket width, ~12.5%).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Number of fixed buckets covering the full `u64` range.
    pub const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB_COUNT as usize;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..Self::BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`: values below `SUB_COUNT` map linearly,
    /// larger values keep `SUB_BITS` bits of mantissa below their leading
    /// bit.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) & (SUB_COUNT - 1)) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS as usize) + sub
    }

    /// The exclusive upper bound of bucket `index` (the `le` edge reported
    /// to Prometheus).
    fn bucket_upper(index: usize) -> u64 {
        if index < SUB_COUNT as usize {
            return index as u64;
        }
        let octave = ((index >> SUB_BITS as usize) as u32) - 1 + SUB_BITS;
        let sub = (index & (SUB_COUNT as usize - 1)) as u64;
        let shift = octave - SUB_BITS;
        ((1u64 << SUB_BITS) | sub)
            .checked_shl(shift)
            .map(|base| base.saturating_add((1u64 << shift) - 1))
            .unwrap_or(u64::MAX)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&self, value: Duration) {
        self.record(value.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The estimated value at quantile `q ∈ [0, 1]` (upper bound of the
    /// containing bucket; `0` for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(index);
            }
        }
        u64::MAX
    }

    /// `(count, upper bound)` of every non-empty bucket, in ascending
    /// bucket order — the raw material for exposition.
    fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (count, Self::bucket_upper(index)))
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One registered series: a metric name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }

    /// Renders `name{label="value",…}` (bare name when unlabeled).
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, parts.join(","))
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Default)]
struct RegistryInner {
    series: BTreeMap<SeriesKey, Series>,
    help: BTreeMap<String, &'static str>,
}

/// The process-wide metrics registry: named counters, gauges and
/// histograms, each identified by `(name, labels)`.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short mutex and
/// returns an `Arc` handle; callers cache the handle so the hot path never
/// touches the registry again. Re-registering the same `(name, labels)`
/// returns the existing series, so any layer can idempotently claim its
/// metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series already exists with a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = SeriesKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .series
            .entry(key)
            .or_insert_with(|| Series::Counter(Arc::new(Counter::default())))
        {
            Series::Counter(counter) => Arc::clone(counter),
            other => panic!("series `{name}` already registered as {other:?}"),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series already exists with a different metric type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = SeriesKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.entry(key).or_insert_with(|| Series::Gauge(Arc::new(Gauge::default()))) {
            Series::Gauge(gauge) => Arc::clone(gauge),
            other => panic!("series `{name}` already registered as {other:?}"),
        }
    }

    /// Gets or creates the histogram `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series already exists with a different metric type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = SeriesKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new())))
        {
            Series::Histogram(histogram) => Arc::clone(histogram),
            other => panic!("series `{name}` already registered as {other:?}"),
        }
    }

    /// Attaches `# HELP` text to a metric name (shared by all its series).
    pub fn set_help(&self, name: &str, help: &'static str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.help.insert(name.to_string(), help);
    }

    /// Whether a series with this exact `(name, labels)` exists.
    pub fn contains(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let key = SeriesKey::new(name, labels);
        self.inner.lock().expect("metrics registry poisoned").series.contains_key(&key)
    }

    /// Renders every series in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers per metric name,
    /// `name{labels} value` samples, histograms as cumulative `_bucket`
    /// series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, series) in &inner.series {
            if last_name != Some(key.name.as_str()) {
                last_name = Some(key.name.as_str());
                if let Some(help) = inner.help.get(&key.name) {
                    out.push_str(&format!("# HELP {} {help}\n", key.name));
                }
                let kind = match series {
                    Series::Counter(_) => "counter",
                    Series::Gauge(_) => "gauge",
                    Series::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", key.name));
            }
            match series {
                Series::Counter(counter) => {
                    out.push_str(&format!("{} {}\n", key.render(None), counter.get()));
                }
                Series::Gauge(gauge) => {
                    out.push_str(&format!("{} {}\n", key.render(None), gauge.get()));
                }
                Series::Histogram(histogram) => {
                    let bucket_key = SeriesKey {
                        name: format!("{}_bucket", key.name),
                        labels: key.labels.clone(),
                    };
                    let mut cumulative = 0u64;
                    for (count, upper) in histogram.nonzero_buckets() {
                        cumulative += count;
                        let le = upper.to_string();
                        out.push_str(&format!(
                            "{} {cumulative}\n",
                            bucket_key.render(Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{} {}\n",
                        bucket_key.render(Some(("le", "+Inf"))),
                        histogram.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        key.name,
                        key.render(None).trim_start_matches(&key.name),
                        histogram.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        key.name,
                        key.render(None).trim_start_matches(&key.name),
                        histogram.count()
                    ));
                }
            }
        }
        out
    }

    /// A JSON snapshot of every series: counters and gauges by value,
    /// histograms as `{count, sum, p50, p95, p99}`.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut entries: Vec<(String, serde::Value)> = Vec::new();
        for (key, series) in &inner.series {
            let value = match series {
                Series::Counter(counter) => serde::Value::UInt(counter.get()),
                Series::Gauge(gauge) => serde::Value::Float(gauge.get()),
                Series::Histogram(histogram) => serde::Value::Object(vec![
                    ("count".to_string(), serde::Value::UInt(histogram.count())),
                    ("sum".to_string(), serde::Value::UInt(histogram.sum())),
                    ("p50".to_string(), serde::Value::UInt(histogram.quantile(0.50))),
                    ("p95".to_string(), serde::Value::UInt(histogram.quantile(0.95))),
                    ("p99".to_string(), serde::Value::UInt(histogram.quantile(0.99))),
                ]),
            };
            entries.push((key.render(None), value));
        }
        serde_json::to_string_pretty(&serde::Value::Object(entries))
            .expect("metric snapshot serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("pcor_test_total", &[("kind", "a")]);
        c.inc();
        c.add(4);
        // Re-registration returns the same series.
        assert_eq!(registry.counter("pcor_test_total", &[("kind", "a")]).get(), 5);
        let g = registry.gauge("pcor_test_gauge", &[]);
        g.set(2.5);
        assert_eq!(registry.gauge("pcor_test_gauge", &[]).get(), 2.5);
        assert!(registry.contains("pcor_test_total", &[("kind", "a")]));
        assert!(!registry.contains("pcor_test_total", &[("kind", "b")]));
    }

    #[test]
    fn histogram_buckets_are_monotone_and_cover_u64() {
        // Every value lands in a bucket whose bounds contain it, and bucket
        // upper bounds are non-decreasing in the index.
        let probes = [0u64, 1, 7, 8, 9, 100, 1_000, 1 << 20, (1 << 40) + 12345, u64::MAX];
        for &v in &probes {
            let index = Histogram::bucket_index(v);
            assert!(index < Histogram::BUCKETS, "index {index} out of range for {v}");
            assert!(Histogram::bucket_upper(index) >= v, "upper bound must cover {v}");
            if index > 0 {
                assert!(Histogram::bucket_upper(index - 1) < v, "lower bucket must not cover {v}");
            }
        }
        let mut last = 0u64;
        for index in 0..Histogram::BUCKETS {
            let upper = Histogram::bucket_upper(index);
            assert!(upper >= last, "bucket bounds must be monotone at {index}");
            last = upper;
        }
    }

    #[test]
    fn histogram_quantiles_are_sane() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!((400..=600).contains(&p50), "p50 = {p50}");
        assert!((850..=1100).contains(&p95), "p95 = {p95}");
        assert!(p99 >= p95 && p99 <= 1200, "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn prometheus_rendering_is_parseable() {
        let registry = MetricsRegistry::new();
        registry.set_help("pcor_requests_total", "Requests by outcome.");
        registry.counter("pcor_requests_total", &[("outcome", "served")]).add(3);
        registry.gauge("pcor_budget_remaining_epsilon", &[("analyst", "alice")]).set(0.8);
        let h = registry.histogram("pcor_request_latency_nanos", &[("kind", "single")]);
        h.record(1_000);
        h.record(2_000);
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP pcor_requests_total Requests by outcome."));
        assert!(text.contains("# TYPE pcor_requests_total counter"));
        assert!(text.contains("pcor_requests_total{outcome=\"served\"} 3"));
        assert!(text.contains("pcor_budget_remaining_epsilon{analyst=\"alice\"} 0.8"));
        assert!(text.contains("pcor_request_latency_nanos_count{kind=\"single\"} 2"));
        assert!(text.contains("pcor_request_latency_nanos_sum{kind=\"single\"} 3000"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Every sample line is `name_or_labels value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample lines have a value");
            assert!(!series.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable sample value `{value}` in `{line}`"
            );
        }
    }

    #[test]
    fn json_snapshot_exposes_quantiles() {
        let registry = MetricsRegistry::new();
        registry.counter("pcor_a_total", &[]).add(7);
        let h = registry.histogram("pcor_lat", &[]);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let json = registry.snapshot_json();
        let value = serde_json::from_str_value(&json).unwrap();
        assert_eq!(value.field("pcor_a_total"), &serde::Value::UInt(7));
        let lat = value.field("pcor_lat");
        assert_eq!(lat.field("count"), &serde::Value::UInt(3));
        assert_eq!(lat.field("sum"), &serde::Value::UInt(60));
    }
}
