//! # pcor
//!
//! Facade crate for **PCOR — Private Contextual Outlier Release via
//! Differentially Private Search** (Shafieinejad, Kerschbaum, Ilyas;
//! SIGMOD 2021), re-exporting the full public API of the workspace:
//!
//! * [`data`] — schemas, contexts, datasets, synthetic workload generators
//!   (`pcor-data`);
//! * [`stats`] — the statistics substrate (`pcor-stats`);
//! * [`outlier`] — Grubbs, Histogram, LOF and extension detectors
//!   (`pcor-outlier`);
//! * [`dp`] — the Exponential/Laplace mechanisms, utility functions and OCDP
//!   budgets (`pcor-dp`);
//! * [`graph`] — the implicit context graph and classic searches
//!   (`pcor-graph`);
//! * [`core`] — the five PCOR release algorithms, COE enumeration and the
//!   privacy experiments (`pcor-core`);
//! * [`service`] — the concurrent multi-analyst release server: dataset
//!   registry, per-analyst budget ledger and streaming batch delivery
//!   (`pcor-service`);
//! * [`runtime`] — the persistent work-stealing thread pool shared by the
//!   verification engine's sharded passes and the serving layer
//!   (`pcor-runtime`);
//! * [`telemetry`] — the observability bundle: metrics registry with a
//!   Prometheus-text exporter, per-release tracing spans and the
//!   privacy-budget audit log (`pcor-telemetry`);
//! * [`wal`] — the segmented, CRC-framed, torn-tail-tolerant write-ahead
//!   log behind the crash-safe budget ledger
//!   ([`DurableLedger`](pcor_service::DurableLedger)) and its warm cache
//!   restarts (`pcor-wal`).
//!
//! The most common entry points are re-exported at the crate root so a typical
//! application only needs `use pcor::prelude::*`. The recommended way to
//! release is a [`ReleaseSession`](pcor_core::ReleaseSession): bind the
//! dataset, detector and utility once, then release as many times as the
//! privacy budget allows — repeats share the memoized verifier.
//!
//! ```
//! use pcor::prelude::*;
//!
//! let dataset = salary_dataset(&SalaryConfig::tiny()).unwrap();
//! let detector = LofDetector::default();
//! let utility = PopulationSizeUtility;
//!
//! let mut session = ReleaseSession::builder(&dataset, &detector, &utility)
//!     .seed_policy(SeedPolicy::Derived { base: 1 })
//!     .build();
//! if let Ok(outliers) = session.find_outliers(1, 100) {
//!     let spec = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2).with_samples(20);
//!     let released = session.release(outliers[0].record_id, &spec).unwrap();
//!     println!("{}", released.context.to_predicate_string(dataset.schema()));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pcor_core as core;
pub use pcor_data as data;
pub use pcor_dp as dp;
pub use pcor_faults as faults;
pub use pcor_graph as graph;
pub use pcor_net as net;
pub use pcor_outlier as outlier;
pub use pcor_runtime as runtime;
pub use pcor_service as service;
pub use pcor_stats as stats;
pub use pcor_telemetry as telemetry;
pub use pcor_wal as wal;

/// Everything a typical PCOR application needs, in one import.
pub mod prelude {
    pub use pcor_core::runner::{find_random_outlier, find_random_outliers, OutlierQuery};
    pub use pcor_core::{
        enumerate_coe, release_context, PcorConfig, PcorError, PcorResult, ReferenceFile,
        ReleaseSession, ReleaseSpec, SamplingAlgorithm, SeedPolicy, SessionStats,
    };
    pub use pcor_data::generator::{
        homicide_dataset, salary_dataset, HomicideConfig, SalaryConfig,
    };
    pub use pcor_data::{
        Attribute, Context, Dataset, PopulationCursor, PopulationScratch, Record, Schema,
        ShardPolicy,
    };
    pub use pcor_dp::{
        BudgetAccountant, ExponentialMechanism, LaplaceMechanism, MechanismKind, MechanismTally,
        OverlapUtility, PermuteAndFlip, PopulationSizeUtility, ReportNoisyMax, SelectionMechanism,
        Utility,
    };
    pub use pcor_graph::ContextGraph;
    pub use pcor_net::{http_get, NetClient, NetConfig, NetFront};
    pub use pcor_outlier::{
        DetectorKind, GrubbsDetector, HistogramDetector, IqrDetector, LofDetector, OutlierDetector,
        PopulationMoments, ZScoreDetector,
    };
    pub use pcor_runtime::ThreadPool;
    pub use pcor_service::{
        BatchItem, BatchReleaseRequest, BatchReleaseResponse, BatchStream, BudgetLedger,
        DatasetRegistry, DurableLedger, HealthReport, ItemOutcome, RecoveryReport, ReleaseRequest,
        ReleaseResponse, RequestEnvelope, ResponseEnvelope, Server, ServerConfig, ServiceError,
        WalConfig,
    };
    pub use pcor_stats::{ConfidenceInterval, RuntimeSummary, UtilitySummary};
    pub use pcor_telemetry::{
        AuditLog, BudgetEvent, MetricsRegistry, Telemetry, TraceId, TraceSink,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Construct one value of each central type to prove the re-exports
        // resolve.
        let _ = PcorConfig::new(SamplingAlgorithm::Bfs, 0.2);
        let _ = SalaryConfig::tiny();
        let _ = HomicideConfig::tiny();
        let _ = PopulationSizeUtility;
        let _ = LofDetector::default();
        let _ = GrubbsDetector::default();
        let _ = HistogramDetector::default();
        let _ = ContextGraph::new(4);
        let _ = Context::empty(4);
        let _ = DatasetRegistry::new();
        let _ = BudgetLedger::new(1.0);
        let _ = ServerConfig::default();
        let _ = ReleaseRequest::new("a", "d", 0);
        let _ = ReleaseSpec::new(SamplingAlgorithm::Bfs, 0.2);
        let _ = SeedPolicy::Derived { base: 7 };
        let _ = RequestEnvelope::batch(
            BatchReleaseRequest::new("a", "d").push(BatchItem::new(0).with_epsilon(0.1)),
        );
        let telemetry = Telemetry::new();
        assert!(telemetry.render_prometheus().is_empty());
        let _ = TraceId::next();
    }
}
