//! Interquartile-range (Tukey fence) outlier rule (extension detector).
//!
//! Another detector beyond the paper's three, demonstrating PCOR's
//! detector-agnostic design: a value is an outlier when it falls outside
//! `[Q1 − k·IQR, Q3 + k·IQR]` with `k = 1.5` by default.

use crate::OutlierDetector;
use pcor_stats::descriptive::quantile;

/// Tukey-fence IQR detector.
#[derive(Debug, Clone, PartialEq)]
pub struct IqrDetector {
    multiplier: f64,
}

impl IqrDetector {
    /// Creates an IQR detector with the given fence multiplier (`k`).
    ///
    /// # Panics
    /// Panics if `multiplier` is not strictly positive.
    pub fn new(multiplier: f64) -> Self {
        assert!(multiplier > 0.0, "multiplier must be positive");
        IqrDetector { multiplier }
    }

    /// The configured fence multiplier.
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// The lower and upper Tukey fences for a population, if computable.
    pub fn fences(&self, population: &[f64]) -> Option<(f64, f64)> {
        if population.len() < 4 {
            return None;
        }
        let q1 = quantile(population, 0.25).ok()?;
        let q3 = quantile(population, 0.75).ok()?;
        let iqr = q3 - q1;
        Some((q1 - self.multiplier * iqr, q3 + self.multiplier * iqr))
    }
}

impl Default for IqrDetector {
    fn default() -> Self {
        IqrDetector::new(1.5)
    }
}

impl OutlierDetector for IqrDetector {
    fn name(&self) -> &'static str {
        "IQR"
    }

    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        if target >= population.len() {
            return false;
        }
        match self.fences(population) {
            Some((lo, hi)) => {
                let x = population[target];
                x < lo || x > hi
            }
            None => false,
        }
    }

    fn min_population(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_values_outside_fences() {
        let mut population: Vec<f64> = (0..40).map(|i| 10.0 + (i % 8) as f64).collect();
        population.push(200.0);
        population.push(-150.0);
        let det = IqrDetector::default();
        assert!(det.is_outlier(&population, 40));
        assert!(det.is_outlier(&population, 41));
        assert!(!det.is_outlier(&population, 0));
    }

    #[test]
    fn fences_match_hand_computation() {
        // [1..=8]: Q1 = 2.75, Q3 = 6.25, IQR = 3.5 -> fences (-2.5, 11.5)
        let population: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let (lo, hi) = IqrDetector::default().fences(&population).unwrap();
        assert!((lo - (-2.5)).abs() < 1e-12);
        assert!((hi - 11.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_populations_are_safe() {
        let det = IqrDetector::default();
        assert!(!det.is_outlier(&[], 0));
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0], 0));
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0, 4.0], 11));
        assert!(!det.is_outlier(&[5.0; 20], 3));
        assert_eq!(det.fences(&[1.0, 2.0]), None);
        assert_eq!(det.min_population(), 4);
    }

    #[test]
    fn multiplier_controls_width() {
        let narrow = IqrDetector::new(0.5);
        let wide = IqrDetector::new(5.0);
        let population: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 20.0];
        assert!(narrow.is_outlier(&population, 8));
        assert!(!wide.is_outlier(&population, 8));
        assert_eq!(narrow.multiplier(), 0.5);
        assert_eq!(narrow.name(), "IQR");
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn non_positive_multiplier_panics() {
        IqrDetector::new(0.0);
    }
}
