//! Histogram (distribution-fitting) outlier detector.
//!
//! Following Section 6.5 of the PCOR paper: the population of a context `C`
//! is binned into `sqrt(|D_C|)` equal-width bins and the bins whose absolute
//! frequency is below `2.5·10⁻³·|D_C|` are labeled outlier bins; a record is
//! an outlier iff its metric value falls into an outlier bin.
//!
//! The paper's datasets are large (tens of thousands of rows), where the
//! `2.5e-3·N` threshold is several records. For small populations that
//! threshold drops below one and the rule can never fire, so this
//! implementation additionally supports an absolute floor (default `2`
//! records, i.e. a value alone in its bin is an outlier once `N` is small);
//! set the floor to `0` to recover the paper's rule exactly.

use crate::OutlierDetector;
use pcor_stats::histogram::EqualWidthHistogram;

/// Histogram-based outlier detector.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDetector {
    /// Relative frequency threshold (the paper uses `2.5e-3`).
    rel_threshold: f64,
    /// Absolute floor for the count threshold (small-population extension).
    min_count_floor: f64,
}

impl HistogramDetector {
    /// The paper's relative frequency threshold.
    pub const PAPER_REL_THRESHOLD: f64 = 2.5e-3;

    /// Creates a detector with the given relative threshold and absolute
    /// count floor. The effective threshold for a population of size `N` is
    /// `max(rel_threshold · N, min_count_floor)`; a bin is an outlier bin when
    /// its count is strictly below that threshold.
    ///
    /// # Panics
    /// Panics if `rel_threshold` is not in `[0, 1]` or `min_count_floor` is
    /// negative.
    pub fn new(rel_threshold: f64, min_count_floor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rel_threshold),
            "rel_threshold must be in [0, 1], got {rel_threshold}"
        );
        assert!(min_count_floor >= 0.0, "min_count_floor must be >= 0");
        HistogramDetector { rel_threshold, min_count_floor }
    }

    /// The exact rule from the paper: threshold `2.5e-3 · N`, no floor.
    pub fn paper_exact() -> Self {
        HistogramDetector::new(Self::PAPER_REL_THRESHOLD, 0.0)
    }

    /// The configured relative threshold.
    pub fn rel_threshold(&self) -> f64 {
        self.rel_threshold
    }

    /// The configured absolute floor.
    pub fn min_count_floor(&self) -> f64 {
        self.min_count_floor
    }

    /// Effective count threshold for a population of size `n`.
    pub fn count_threshold(&self, n: usize) -> f64 {
        (self.rel_threshold * n as f64).max(self.min_count_floor)
    }
}

impl Default for HistogramDetector {
    /// Paper threshold with an absolute floor of 2 records so the detector
    /// remains meaningful on the scaled-down reproduction workloads.
    fn default() -> Self {
        HistogramDetector::new(Self::PAPER_REL_THRESHOLD, 2.0)
    }
}

impl OutlierDetector for HistogramDetector {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        let n = population.len();
        if n < self.min_population() || target >= n {
            return false;
        }
        let Ok(hist) = EqualWidthHistogram::with_sqrt_bins(population) else {
            return false;
        };
        let count = hist.count_at(population[target]) as f64;
        count < self.count_threshold(n)
    }

    fn detect(&self, population: &[f64]) -> Vec<bool> {
        let n = population.len();
        if n < self.min_population() {
            return vec![false; n];
        }
        let Ok(hist) = EqualWidthHistogram::with_sqrt_bins(population) else {
            return vec![false; n];
        };
        let threshold = self.count_threshold(n);
        population.iter().map(|&x| (hist.count_at(x) as f64) < threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_extreme_bin_is_flagged() {
        // 499 values uniformly in [0, 100), one value at 1000.
        let mut population: Vec<f64> = (0..499).map(|i| (i % 100) as f64).collect();
        population.push(1000.0);
        let det = HistogramDetector::default();
        let target = population.len() - 1;
        assert!(det.is_outlier(&population, target));
        assert!(!det.is_outlier(&population, 0));
    }

    #[test]
    fn paper_exact_rule_needs_large_populations() {
        // With N = 200 the paper threshold is 0.5 < 1, so even a lone bin is
        // not below it and nothing is flagged.
        let mut population: Vec<f64> = (0..199).map(|i| (i % 50) as f64).collect();
        population.push(10_000.0);
        let exact = HistogramDetector::paper_exact();
        assert!(!exact.is_outlier(&population, 199));
        // With the default floor of 2 the same point is flagged.
        let with_floor = HistogramDetector::default();
        assert!(with_floor.is_outlier(&population, 199));
    }

    #[test]
    fn paper_exact_rule_fires_on_large_population() {
        // N = 4000 -> threshold 10; put 3 values in a far-away bin.
        let mut population: Vec<f64> = (0..3997).map(|i| (i % 500) as f64).collect();
        population.extend_from_slice(&[50_000.0, 50_001.0, 50_002.0]);
        let det = HistogramDetector::paper_exact();
        assert!(det.is_outlier(&population, 3999));
        assert!(!det.is_outlier(&population, 10));
    }

    #[test]
    fn batch_detect_matches_per_index() {
        let mut population: Vec<f64> = (0..300).map(|i| (i % 60) as f64).collect();
        population.push(5_000.0);
        let det = HistogramDetector::default();
        let batch = det.detect(&population);
        for (i, &flag) in batch.iter().enumerate() {
            assert_eq!(flag, det.is_outlier(&population, i), "index {i}");
        }
        assert!(batch[population.len() - 1]);
    }

    #[test]
    fn degenerate_inputs_are_not_flagged() {
        let det = HistogramDetector::default();
        assert!(!det.is_outlier(&[], 0));
        assert!(!det.is_outlier(&[1.0, 2.0], 1));
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0], 9));
        assert_eq!(det.detect(&[1.0, 2.0]), vec![false, false]);
        // Constant population: one bin holds everything, nobody is rare.
        assert!(!det.is_outlier(&vec![7.0; 100], 5));
    }

    #[test]
    fn count_threshold_uses_max_of_floor_and_relative() {
        let det = HistogramDetector::new(0.01, 3.0);
        assert_eq!(det.count_threshold(100), 3.0); // 1.0 vs floor 3.0
        assert_eq!(det.count_threshold(1000), 10.0); // 10 vs floor 3
        assert_eq!(det.rel_threshold(), 0.01);
        assert_eq!(det.min_count_floor(), 3.0);
        assert_eq!(det.name(), "Histogram");
    }

    #[test]
    #[should_panic(expected = "rel_threshold")]
    fn invalid_threshold_panics() {
        HistogramDetector::new(1.5, 0.0);
    }
}
