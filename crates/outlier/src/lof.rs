//! Local Outlier Factor (Breunig et al., SIGMOD 2000) — the distance-based
//! detector evaluated in the PCOR paper.
//!
//! LOF scores each point by comparing its local reachability density to that
//! of its `k` nearest neighbors: scores near 1 indicate a point whose
//! neighborhood is as dense as its neighbors' neighborhoods, scores well
//! above 1 indicate a point sitting in a sparser region than its neighbors —
//! an outlier. PCOR applies detectors to the one-dimensional metric attribute,
//! so neighbor search is done on a sorted copy of the population with a
//! two-pointer window (O(N log N) per population).

use crate::OutlierDetector;

/// Local Outlier Factor detector over one-dimensional metric values.
#[derive(Debug, Clone, PartialEq)]
pub struct LofDetector {
    /// Neighborhood size `k` (MinPts in the original paper).
    k: usize,
    /// Score threshold above which a point is declared an outlier.
    threshold: f64,
}

impl LofDetector {
    /// Creates a LOF detector with neighborhood size `k` and outlier score
    /// `threshold`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `threshold <= 0`.
    pub fn new(k: usize, threshold: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(threshold > 0.0, "threshold must be positive");
        LofDetector { k, threshold }
    }

    /// The configured neighborhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// LOF scores for every member of the population (1.0 for degenerate
    /// populations).
    pub fn scores(&self, population: &[f64]) -> Vec<f64> {
        let n = population.len();
        if n < 3 {
            return vec![1.0; n];
        }
        let k = self.k.min(n - 1);

        // Sort indices by value; neighbors in 1-D are contiguous in the sorted
        // order, found by expanding a two-pointer window.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            population[a].partial_cmp(&population[b]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let sorted: Vec<f64> = order.iter().map(|&i| population[i]).collect();

        // neighbors[s] = sorted positions of the k nearest neighbors of sorted
        // position s; kdist[s] = distance to the k-th nearest neighbor.
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut kdist: Vec<f64> = Vec::with_capacity(n);
        for s in 0..n {
            let (nbrs, kd) = Self::knn_sorted(&sorted, s, k);
            neighbors.push(nbrs);
            kdist.push(kd);
        }

        // Local reachability density per sorted position.
        let mut lrd: Vec<f64> = Vec::with_capacity(n);
        for s in 0..n {
            let mut sum = 0.0;
            for &o in &neighbors[s] {
                let d = (sorted[s] - sorted[o]).abs();
                sum += d.max(kdist[o]);
            }
            let mean_reach = sum / neighbors[s].len() as f64;
            lrd.push(if mean_reach > 0.0 { 1.0 / mean_reach } else { f64::INFINITY });
        }

        // LOF per sorted position, then scatter back to input order.
        let mut scores_sorted: Vec<f64> = Vec::with_capacity(n);
        for s in 0..n {
            if lrd[s].is_infinite() {
                // The point sits in a zero-diameter cluster: as dense as it gets.
                scores_sorted.push(1.0);
                continue;
            }
            let sum_ratio: f64 = neighbors[s]
                .iter()
                .map(|&o| if lrd[o].is_infinite() { f64::INFINITY } else { lrd[o] / lrd[s] })
                .sum();
            scores_sorted.push(sum_ratio / neighbors[s].len() as f64);
        }

        let mut scores = vec![1.0; n];
        for (s, &orig) in order.iter().enumerate() {
            scores[orig] = scores_sorted[s];
        }
        scores
    }

    /// k nearest neighbors (by sorted position) of sorted position `s`,
    /// together with the k-distance. Ties beyond the k-th neighbor are
    /// included, per the original LOF definition.
    fn knn_sorted(sorted: &[f64], s: usize, k: usize) -> (Vec<usize>, f64) {
        let n = sorted.len();
        let mut lo = s;
        let mut hi = s;
        let mut picked: Vec<usize> = Vec::with_capacity(k + 2);
        while picked.len() < k && (lo > 0 || hi + 1 < n) {
            let left_d = if lo > 0 { sorted[s] - sorted[lo - 1] } else { f64::INFINITY };
            let right_d = if hi + 1 < n { sorted[hi + 1] - sorted[s] } else { f64::INFINITY };
            if left_d <= right_d {
                lo -= 1;
                picked.push(lo);
            } else {
                hi += 1;
                picked.push(hi);
            }
        }
        let kdist = picked.iter().map(|&p| (sorted[s] - sorted[p]).abs()).fold(0.0_f64, f64::max);
        // Include any further ties at exactly the k-distance.
        loop {
            let left_d = if lo > 0 { sorted[s] - sorted[lo - 1] } else { f64::INFINITY };
            let right_d = if hi + 1 < n { sorted[hi + 1] - sorted[s] } else { f64::INFINITY };
            if left_d == kdist && left_d.is_finite() {
                lo -= 1;
                picked.push(lo);
            } else if right_d == kdist && right_d.is_finite() {
                hi += 1;
                picked.push(hi);
            } else {
                break;
            }
        }
        (picked, kdist)
    }
}

impl Default for LofDetector {
    /// `k = 10`, threshold `1.5` — conventional values used throughout the
    /// reproduction experiments.
    fn default() -> Self {
        LofDetector::new(10, 1.5)
    }
}

impl OutlierDetector for LofDetector {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        if population.len() < self.min_population() || target >= population.len() {
            return false;
        }
        self.scores(population)[target] > self.threshold
    }

    fn detect(&self, population: &[f64]) -> Vec<bool> {
        if population.len() < self.min_population() {
            return vec![false; population.len()];
        }
        self.scores(population).into_iter().map(|s| s > self.threshold).collect()
    }

    fn min_population(&self) -> usize {
        self.k + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_point_gets_high_score() {
        // Dense cluster near 0..20, one isolated value at 500.
        let mut population: Vec<f64> = (0..40).map(|i| (i % 20) as f64).collect();
        population.push(500.0);
        let det = LofDetector::default();
        let scores = det.scores(&population);
        let target = population.len() - 1;
        assert!(scores[target] > 2.0, "outlier score {}", scores[target]);
        assert!(det.is_outlier(&population, target));
        // Cluster members are not outliers.
        assert!(!det.is_outlier(&population, 0));
        assert!(scores[0] < 1.5);
    }

    #[test]
    fn uniform_population_scores_near_one() {
        let population: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let det = LofDetector::default();
        let scores = det.scores(&population);
        // Interior points of an evenly spaced line have LOF ~= 1.
        for &s in &scores[10..90] {
            assert!((s - 1.0).abs() < 0.35, "score {s}");
        }
        assert_eq!(det.detect(&population).iter().filter(|&&o| o).count(), 0);
    }

    #[test]
    fn constant_population_is_never_flagged() {
        let population = vec![42.0; 50];
        let det = LofDetector::default();
        assert!(det.scores(&population).iter().all(|&s| s == 1.0));
        assert!(!det.is_outlier(&population, 7));
    }

    #[test]
    fn duplicate_cluster_with_one_outlier() {
        let mut population = vec![10.0; 30];
        population.push(10_000.0);
        let det = LofDetector::new(5, 1.5);
        assert!(det.is_outlier(&population, 30));
        assert!(!det.is_outlier(&population, 0));
    }

    #[test]
    fn small_populations_are_not_flagged() {
        let det = LofDetector::default();
        assert!(!det.is_outlier(&[], 0));
        assert!(!det.is_outlier(&[1.0, 100.0], 1));
        assert!(!det.is_outlier(&[1.0, 2.0, 100.0], 2)); // below k + 1
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0], 10)); // bad index
        assert_eq!(det.min_population(), 11);
    }

    #[test]
    fn k_larger_than_population_is_clamped() {
        let det = LofDetector::new(50, 1.5);
        let mut population: Vec<f64> = (0..60).map(|i| (i % 30) as f64).collect();
        population.push(900.0);
        // Works (k clamped to n-1) and still flags the isolated point.
        assert!(det.is_outlier(&population, 60));
    }

    #[test]
    fn scores_are_deterministic_and_batch_matches() {
        let population: Vec<f64> = (0..80).map(|i| ((i * 37) % 23) as f64).collect();
        let det = LofDetector::default();
        let s1 = det.scores(&population);
        let s2 = det.scores(&population);
        assert_eq!(s1, s2);
        let batch = det.detect(&population);
        for (i, &flag) in batch.iter().enumerate() {
            assert_eq!(flag, s1[i] > det.threshold());
        }
    }

    #[test]
    fn accessors_and_validation() {
        let det = LofDetector::new(7, 2.0);
        assert_eq!(det.k(), 7);
        assert_eq!(det.threshold(), 2.0);
        assert_eq!(det.name(), "LOF");
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        LofDetector::new(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn non_positive_threshold_panics() {
        LofDetector::new(5, 0.0);
    }
}
