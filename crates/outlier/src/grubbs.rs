//! Grubbs' test for outliers (Grubbs 1969) — the hypothesis-testing detector.
//!
//! The two-sided Grubbs test statistic for a value `x` in a population of size
//! `N` with sample mean `x̄` and sample standard deviation `s` is
//! `G = |x − x̄| / s`. The value is declared an outlier at significance level
//! `α` when
//!
//! ```text
//! G  >  (N−1)/√N · sqrt( t² / (N−2+t²) ),   t = t_{α/(2N), N−2}
//! ```
//!
//! where `t_{p,ν}` is the upper-`p` critical value of the Student-t
//! distribution with `ν` degrees of freedom. The classical test only examines
//! the most extreme observation; PCOR's verification function asks about one
//! *specific* record `V`, so we evaluate `V`'s own statistic against the same
//! critical value — if `V` is not the most deviant observation its statistic
//! is smaller and the verdict is conservative (never flags more than the
//! classical test would).

use crate::{OutlierDetector, PopulationMoments};
use pcor_stats::descriptive::{mean, sample_std};
use pcor_stats::distributions::StudentT;

/// Grubbs' test detector.
#[derive(Debug, Clone, PartialEq)]
pub struct GrubbsDetector {
    alpha: f64,
}

impl GrubbsDetector {
    /// Creates a Grubbs detector with significance level `alpha` (e.g. 0.05).
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1), got {alpha}");
        GrubbsDetector { alpha }
    }

    /// The configured significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The Grubbs critical value for a population of size `n`.
    ///
    /// Returns `None` when `n < 3` (the test is undefined) or the Student-t
    /// quantile cannot be computed.
    pub fn critical_value(&self, n: usize) -> Option<f64> {
        if n < 3 {
            return None;
        }
        let nf = n as f64;
        let dof = nf - 2.0;
        let t = StudentT::new(dof).ok()?.upper_critical(self.alpha / (2.0 * nf)).ok()?;
        let t2 = t * t;
        Some((nf - 1.0) / nf.sqrt() * (t2 / (dof + t2)).sqrt())
    }

    /// The Grubbs statistic `G = |x − x̄| / s` of `population[target]`.
    ///
    /// Returns `None` for populations smaller than 3 or with zero variance.
    pub fn statistic(&self, population: &[f64], target: usize) -> Option<f64> {
        if population.len() < 3 || target >= population.len() {
            return None;
        }
        let m = mean(population).ok()?;
        let s = sample_std(population).ok()?;
        if s == 0.0 {
            return None;
        }
        Some((population[target] - m).abs() / s)
    }
}

impl Default for GrubbsDetector {
    /// The conventional 5% significance level.
    fn default() -> Self {
        GrubbsDetector::new(0.05)
    }
}

impl OutlierDetector for GrubbsDetector {
    fn name(&self) -> &'static str {
        "Grubbs"
    }

    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        match (self.statistic(population, target), self.critical_value(population.len())) {
            (Some(g), Some(crit)) => g > crit,
            _ => false,
        }
    }

    /// The Grubbs statistic of a specific value is `|x − x̄| / s` — a
    /// function of the population moments, so the engine's single-pass
    /// accumulation decides without a metrics slice.
    fn supports_moments(&self) -> bool {
        true
    }

    fn is_outlier_by_moments(&self, moments: &PopulationMoments, value: f64) -> bool {
        let Some(crit) = self.critical_value(moments.count) else {
            return false;
        };
        let (Some(m), Some(s)) = (moments.mean(), moments.sample_std()) else {
            return false;
        };
        if s == 0.0 {
            return false;
        }
        (value - m).abs() / s > crit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_value_matches_published_table() {
        // Published two-sided Grubbs critical values at alpha = 0.05:
        // N = 10 -> 2.290, N = 20 -> 2.709, N = 30 -> 2.908 (±0.01).
        let det = GrubbsDetector::default();
        let cases = [(10usize, 2.290), (20, 2.709), (30, 2.908), (50, 3.128)];
        for &(n, expected) in &cases {
            let c = det.critical_value(n).unwrap();
            assert!((c - expected).abs() < 0.015, "N={n}: got {c}, want {expected}");
        }
    }

    #[test]
    fn obvious_outlier_is_flagged_and_inliers_are_not() {
        let det = GrubbsDetector::default();
        let mut population: Vec<f64> = (0..30).map(|i| 100.0 + (i % 7) as f64).collect();
        population.push(500.0);
        let target = population.len() - 1;
        assert!(det.is_outlier(&population, target));
        assert!(!det.is_outlier(&population, 0));
        let verdicts = det.detect(&population);
        assert_eq!(verdicts.iter().filter(|&&v| v).count(), 1);
    }

    #[test]
    fn small_or_degenerate_populations_are_never_flagged() {
        let det = GrubbsDetector::default();
        assert!(!det.is_outlier(&[], 0));
        assert!(!det.is_outlier(&[1.0], 0));
        assert!(!det.is_outlier(&[1.0, 100.0], 1));
        // Zero variance.
        assert!(!det.is_outlier(&[5.0, 5.0, 5.0, 5.0], 2));
        // Out-of-range target.
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0], 7));
        assert_eq!(det.critical_value(2), None);
        assert_eq!(det.statistic(&[1.0, 2.0], 0), None);
    }

    #[test]
    fn verdict_is_deterministic() {
        let det = GrubbsDetector::default();
        let population: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let first = det.detect(&population);
        for _ in 0..5 {
            assert_eq!(det.detect(&population), first);
        }
    }

    #[test]
    fn tighter_alpha_flags_fewer_points() {
        let mut population: Vec<f64> = (0..25).map(|i| 10.0 + (i % 5) as f64).collect();
        population.push(30.0); // moderately extreme
        let target = population.len() - 1;
        let loose = GrubbsDetector::new(0.2);
        let strict = GrubbsDetector::new(0.0001);
        let loose_flag = loose.is_outlier(&population, target);
        let strict_flag = strict.is_outlier(&population, target);
        // Strict can only flag if loose does.
        assert!(loose_flag || !strict_flag);
        assert!(loose.critical_value(26).unwrap() < strict.critical_value(26).unwrap());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_panics() {
        GrubbsDetector::new(1.5);
    }

    #[test]
    fn alpha_accessor() {
        assert_eq!(GrubbsDetector::new(0.01).alpha(), 0.01);
        assert_eq!(GrubbsDetector::default().alpha(), 0.05);
        assert_eq!(GrubbsDetector::default().name(), "Grubbs");
    }
}
