//! z-score outlier rule (extension detector).
//!
//! Not part of the paper's evaluation, but included to demonstrate PCOR's
//! claim that the framework accommodates *any* deterministic detector: a value
//! is an outlier when its absolute z-score within the population exceeds a
//! threshold (3.0 by default — the classical "three sigma" rule).

use crate::{OutlierDetector, PopulationMoments};
use pcor_stats::descriptive::z_score;

/// Three-sigma style z-score detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreDetector {
    threshold: f64,
}

impl ZScoreDetector {
    /// Creates a z-score detector with the given absolute-score threshold.
    ///
    /// # Panics
    /// Panics if `threshold` is not strictly positive.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        ZScoreDetector { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for ZScoreDetector {
    fn default() -> Self {
        ZScoreDetector::new(3.0)
    }
}

impl OutlierDetector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "ZScore"
    }

    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        if population.len() < self.min_population() || target >= population.len() {
            return false;
        }
        match z_score(population, population[target]) {
            Ok(z) => z.abs() > self.threshold,
            Err(_) => false,
        }
    }

    /// The z-score is a function of `(N, Σx, Σx², value)`: the engine's
    /// single-pass moment accumulation decides without a metrics slice.
    fn supports_moments(&self) -> bool {
        true
    }

    fn is_outlier_by_moments(&self, moments: &PopulationMoments, value: f64) -> bool {
        if moments.count < self.min_population() {
            return false;
        }
        let (Some(mean), Some(std)) = (moments.mean(), moments.sample_std()) else {
            return false;
        };
        if std == 0.0 {
            return false; // Matches the slice path: zero variance ⇒ z = 0.
        }
        ((value - mean) / std).abs() > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_far_values_only() {
        let mut population: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64).collect();
        population.push(500.0);
        let det = ZScoreDetector::default();
        assert!(det.is_outlier(&population, 100));
        assert!(!det.is_outlier(&population, 3));
    }

    #[test]
    fn degenerate_populations_are_safe() {
        let det = ZScoreDetector::default();
        assert!(!det.is_outlier(&[], 0));
        assert!(!det.is_outlier(&[1.0, 2.0], 0));
        assert!(!det.is_outlier(&[5.0; 10], 2));
        assert!(!det.is_outlier(&[1.0, 2.0, 3.0], 9));
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let mut population: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        population.push(8.0);
        let sensitive = ZScoreDetector::new(1.0);
        let strict = ZScoreDetector::new(10.0);
        assert!(sensitive.is_outlier(&population, 30));
        assert!(!strict.is_outlier(&population, 30));
        assert_eq!(sensitive.threshold(), 1.0);
        assert_eq!(sensitive.name(), "ZScore");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn non_positive_threshold_panics() {
        ZScoreDetector::new(-1.0);
    }
}
