//! # pcor-outlier
//!
//! Outlier detection substrate for the PCOR reproduction (SIGMOD 2021).
//!
//! PCOR is generic over the outlier detection algorithm: the outlier
//! verification function `f_M(D_C, V)` asks a *deterministic* detector whether
//! record `V` is an outlier within the population `D_C` with respect to the
//! metric `M`. The paper evaluates one detector from each of the three
//! unsupervised categories it surveys:
//!
//! * **Hypothesis testing** — [`grubbs::GrubbsDetector`] (Grubbs' test, 1969);
//! * **Distribution fitting** — [`histogram::HistogramDetector`] (equal-width
//!   histogram with `sqrt(|D_C|)` bins and a `2.5e-3·|D_C|` frequency
//!   threshold);
//! * **Distance based** — [`lof::LofDetector`] (Local Outlier Factor, Breunig
//!   et al. 2000) over the one-dimensional metric.
//!
//! Two extra detectors ([`zscore::ZScoreDetector`], [`iqr::IqrDetector`])
//! demonstrate the paper's claim that PCOR accommodates *any* deterministic
//! detector.
//!
//! All detectors implement the object-safe [`OutlierDetector`] trait and are
//! pure functions of the population slice — no interior mutability, no
//! randomness — matching the paper's determinism requirement (Section 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grubbs;
pub mod histogram;
pub mod iqr;
pub mod lof;
pub mod zscore;

pub use grubbs::GrubbsDetector;
pub use histogram::HistogramDetector;
pub use iqr::IqrDetector;
pub use lof::LofDetector;
pub use zscore::ZScoreDetector;

/// A deterministic unsupervised outlier detector over a numeric population.
///
/// `population` is the multiset of metric values of the records in the
/// context's population `D_C` **including** the target; `target` is the index
/// of the queried record's value within that slice. Implementations must be
/// deterministic: the same inputs always yield the same verdict (PCOR's
/// privacy analysis assumes the randomness lives exclusively in the
/// differentially private mechanisms).
pub trait OutlierDetector: Send + Sync {
    /// A short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Whether `population[target]` is an outlier within `population`.
    ///
    /// Implementations should return `false` (not panic) for degenerate
    /// populations that are too small for the test to be meaningful.
    fn is_outlier(&self, population: &[f64], target: usize) -> bool;

    /// Verdicts for every member of the population.
    ///
    /// The default implementation calls [`OutlierDetector::is_outlier`] per
    /// index; detectors with cheaper batch formulations may override it.
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (0..population.len()).map(|i| self.is_outlier(population, i)).collect()
    }

    /// Minimum population size for which the detector produces meaningful
    /// verdicts; smaller populations are never flagged.
    fn min_population(&self) -> usize {
        3
    }
}

impl<T: OutlierDetector + ?Sized> OutlierDetector for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        (**self).is_outlier(population, target)
    }
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (**self).detect(population)
    }
    fn min_population(&self) -> usize {
        (**self).min_population()
    }
}

impl<T: OutlierDetector + ?Sized> OutlierDetector for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        (**self).is_outlier(population, target)
    }
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (**self).detect(population)
    }
    fn min_population(&self) -> usize {
        (**self).min_population()
    }
}

/// The detector families evaluated in the paper, used by the experiment
/// harness to instantiate detectors by name and by `pcor-service` to carry
/// the detector choice inside serialized release requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DetectorKind {
    /// Grubbs' hypothesis test.
    Grubbs,
    /// Equal-width histogram / distribution fitting.
    Histogram,
    /// Local Outlier Factor.
    Lof,
    /// z-score rule (extension).
    ZScore,
    /// Interquartile-range rule (extension).
    Iqr,
}

impl DetectorKind {
    /// Instantiates the detector with its default parameters.
    pub fn build(&self) -> Box<dyn OutlierDetector> {
        match self {
            DetectorKind::Grubbs => Box::new(GrubbsDetector::default()),
            DetectorKind::Histogram => Box::new(HistogramDetector::default()),
            DetectorKind::Lof => Box::new(LofDetector::default()),
            DetectorKind::ZScore => Box::new(ZScoreDetector::default()),
            DetectorKind::Iqr => Box::new(IqrDetector::default()),
        }
    }

    /// All detector kinds evaluated in the paper's experiments.
    pub fn paper_detectors() -> [DetectorKind; 3] {
        [DetectorKind::Grubbs, DetectorKind::Lof, DetectorKind::Histogram]
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DetectorKind::Grubbs => "Grubbs",
            DetectorKind::Histogram => "Histogram",
            DetectorKind::Lof => "LOF",
            DetectorKind::ZScore => "ZScore",
            DetectorKind::Iqr => "IQR",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_kind_builds_all_detectors() {
        for kind in [
            DetectorKind::Grubbs,
            DetectorKind::Histogram,
            DetectorKind::Lof,
            DetectorKind::ZScore,
            DetectorKind::Iqr,
        ] {
            let det = kind.build();
            assert!(!det.name().is_empty());
            // Degenerate population: no detector may panic or flag.
            assert!(!det.is_outlier(&[1.0], 0));
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(DetectorKind::paper_detectors().len(), 3);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let det = GrubbsDetector::default();
        let population = vec![1.0, 1.1, 0.9, 1.05, 0.95, 10.0];
        let direct = det.is_outlier(&population, 5);
        let via_ref: &dyn OutlierDetector = &det;
        let via_box: Box<dyn OutlierDetector> = Box::new(GrubbsDetector::default());
        assert_eq!(via_ref.is_outlier(&population, 5), direct);
        assert_eq!(via_box.is_outlier(&population, 5), direct);
        assert_eq!(via_ref.name(), det.name());
        assert_eq!(via_box.detect(&population), det.detect(&population));
        assert_eq!(via_ref.min_population(), det.min_population());
        assert_eq!(via_box.min_population(), det.min_population());
    }

    #[test]
    fn default_detect_matches_per_index_calls() {
        let det = ZScoreDetector::default();
        let population = vec![1.0, 2.0, 1.5, 1.2, 40.0, 1.1];
        let batch = det.detect(&population);
        for (i, &flag) in batch.iter().enumerate() {
            assert_eq!(flag, det.is_outlier(&population, i));
        }
    }
}
