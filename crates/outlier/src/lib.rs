//! # pcor-outlier
//!
//! Outlier detection substrate for the PCOR reproduction (SIGMOD 2021).
//!
//! PCOR is generic over the outlier detection algorithm: the outlier
//! verification function `f_M(D_C, V)` asks a *deterministic* detector whether
//! record `V` is an outlier within the population `D_C` with respect to the
//! metric `M`. The paper evaluates one detector from each of the three
//! unsupervised categories it surveys:
//!
//! * **Hypothesis testing** — [`grubbs::GrubbsDetector`] (Grubbs' test, 1969);
//! * **Distribution fitting** — [`histogram::HistogramDetector`] (equal-width
//!   histogram with `sqrt(|D_C|)` bins and a `2.5e-3·|D_C|` frequency
//!   threshold);
//! * **Distance based** — [`lof::LofDetector`] (Local Outlier Factor, Breunig
//!   et al. 2000) over the one-dimensional metric.
//!
//! Two extra detectors ([`zscore::ZScoreDetector`], [`iqr::IqrDetector`])
//! demonstrate the paper's claim that PCOR accommodates *any* deterministic
//! detector.
//!
//! All detectors implement the object-safe [`OutlierDetector`] trait and are
//! pure functions of the population slice — no interior mutability, no
//! randomness — matching the paper's determinism requirement (Section 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grubbs;
pub mod histogram;
pub mod iqr;
pub mod lof;
pub mod zscore;

pub use grubbs::GrubbsDetector;
pub use histogram::HistogramDetector;
pub use iqr::IqrDetector;
pub use lof::LofDetector;
pub use zscore::ZScoreDetector;

/// Sufficient statistics of a population's metric values: count, sum and
/// the *centered* sum of squared deviations `Σ (x − x̄)²`.
///
/// Moment-decidable detectors ([`ZScoreDetector`], [`GrubbsDetector`]) can
/// answer [`OutlierDetector::is_outlier_by_moments`] from these three
/// numbers, which the verification engine accumulates in a single pass over
/// the population bitmap without materializing a metrics slice. Producers
/// must compute `sum_sq_dev` with a cancellation-safe algorithm — a shifted
/// accumulation around an in-population origin (the engine shifts by the
/// queried record's value) or a two-pass mean-then-deviations sweep; the
/// naive `Σx² − n·x̄²` form silently collapses to zero variance for
/// populations with a large mean and small spread. Quantile- and
/// density-based detectors (IQR, LOF, Histogram) need the full value
/// multiset and keep the slice path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PopulationMoments {
    /// Number of values, `N = |D_C|`.
    pub count: usize,
    /// `Σ x`.
    pub sum: f64,
    /// `Σ (x − x̄)²`, the centered sum of squared deviations.
    pub sum_sq_dev: f64,
}

impl PopulationMoments {
    /// Bundles precomputed moments (`sum_sq_dev` must be the *centered*
    /// sum of squared deviations, not `Σ x²`).
    pub fn new(count: usize, sum: f64, sum_sq_dev: f64) -> Self {
        PopulationMoments { count, sum, sum_sq_dev }
    }

    /// Accumulates the moments of a value slice (two passes, matching the
    /// numerics of the slice-based detectors).
    pub fn from_values(values: &[f64]) -> Self {
        let sum: f64 = values.iter().sum();
        if values.is_empty() {
            return PopulationMoments { count: 0, sum, sum_sq_dev: 0.0 };
        }
        let mean = sum / values.len() as f64;
        let sum_sq_dev: f64 = values.iter().map(|x| (x - mean) * (x - mean)).sum();
        PopulationMoments { count: values.len(), sum, sum_sq_dev }
    }

    /// The mean, or `None` for an empty population.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Unbiased sample variance (denominator `n − 1`); `None` for fewer
    /// than two values. Non-negative by construction.
    pub fn sample_variance(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        Some(self.sum_sq_dev / (self.count - 1) as f64)
    }

    /// Unbiased sample standard deviation; `None` for fewer than two values.
    pub fn sample_std(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }
}

/// A deterministic unsupervised outlier detector over a numeric population.
///
/// `population` is the multiset of metric values of the records in the
/// context's population `D_C` **including** the target; `target` is the index
/// of the queried record's value within that slice. Implementations must be
/// deterministic: the same inputs always yield the same verdict (PCOR's
/// privacy analysis assumes the randomness lives exclusively in the
/// differentially private mechanisms).
pub trait OutlierDetector: Send + Sync {
    /// A short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Whether `population[target]` is an outlier within `population`.
    ///
    /// Implementations should return `false` (not panic) for degenerate
    /// populations that are too small for the test to be meaningful.
    fn is_outlier(&self, population: &[f64], target: usize) -> bool;

    /// Whether this detector's verdict is a function of the population's
    /// [`PopulationMoments`] and the target's value alone. When `true`, the
    /// verification engine skips materializing the metrics slice and calls
    /// [`OutlierDetector::is_outlier_by_moments`] instead. Must be constant
    /// for a given detector instance.
    fn supports_moments(&self) -> bool {
        false
    }

    /// Verdict from sufficient statistics: is a member of the population
    /// with metric `value` an outlier? Only called when
    /// [`OutlierDetector::supports_moments`] returns `true`; the `value` is
    /// guaranteed to belong to a record inside the population the moments
    /// describe. Must agree with [`OutlierDetector::is_outlier`] up to
    /// floating-point summation order.
    fn is_outlier_by_moments(&self, moments: &PopulationMoments, value: f64) -> bool {
        let _ = (moments, value);
        false
    }

    /// Verdicts for every member of the population.
    ///
    /// The default implementation calls [`OutlierDetector::is_outlier`] per
    /// index; detectors with cheaper batch formulations may override it.
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (0..population.len()).map(|i| self.is_outlier(population, i)).collect()
    }

    /// Minimum population size for which the detector produces meaningful
    /// verdicts; smaller populations are never flagged.
    fn min_population(&self) -> usize {
        3
    }
}

impl<T: OutlierDetector + ?Sized> OutlierDetector for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        (**self).is_outlier(population, target)
    }
    fn supports_moments(&self) -> bool {
        (**self).supports_moments()
    }
    fn is_outlier_by_moments(&self, moments: &PopulationMoments, value: f64) -> bool {
        (**self).is_outlier_by_moments(moments, value)
    }
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (**self).detect(population)
    }
    fn min_population(&self) -> usize {
        (**self).min_population()
    }
}

impl<T: OutlierDetector + ?Sized> OutlierDetector for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_outlier(&self, population: &[f64], target: usize) -> bool {
        (**self).is_outlier(population, target)
    }
    fn supports_moments(&self) -> bool {
        (**self).supports_moments()
    }
    fn is_outlier_by_moments(&self, moments: &PopulationMoments, value: f64) -> bool {
        (**self).is_outlier_by_moments(moments, value)
    }
    fn detect(&self, population: &[f64]) -> Vec<bool> {
        (**self).detect(population)
    }
    fn min_population(&self) -> usize {
        (**self).min_population()
    }
}

/// The detector families evaluated in the paper, used by the experiment
/// harness to instantiate detectors by name and by `pcor-service` to carry
/// the detector choice inside serialized release requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DetectorKind {
    /// Grubbs' hypothesis test.
    Grubbs,
    /// Equal-width histogram / distribution fitting.
    Histogram,
    /// Local Outlier Factor.
    Lof,
    /// z-score rule (extension).
    ZScore,
    /// Interquartile-range rule (extension).
    Iqr,
}

impl DetectorKind {
    /// Instantiates the detector with its default parameters.
    pub fn build(&self) -> Box<dyn OutlierDetector> {
        match self {
            DetectorKind::Grubbs => Box::new(GrubbsDetector::default()),
            DetectorKind::Histogram => Box::new(HistogramDetector::default()),
            DetectorKind::Lof => Box::new(LofDetector::default()),
            DetectorKind::ZScore => Box::new(ZScoreDetector::default()),
            DetectorKind::Iqr => Box::new(IqrDetector::default()),
        }
    }

    /// All detector kinds evaluated in the paper's experiments.
    pub fn paper_detectors() -> [DetectorKind; 3] {
        [DetectorKind::Grubbs, DetectorKind::Lof, DetectorKind::Histogram]
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DetectorKind::Grubbs => "Grubbs",
            DetectorKind::Histogram => "Histogram",
            DetectorKind::Lof => "LOF",
            DetectorKind::ZScore => "ZScore",
            DetectorKind::Iqr => "IQR",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_agree_with_slice_verdicts() {
        // The moment path must agree with the slice path — including on
        // populations with a large mean and tiny spread, where a naive
        // one-pass Σx² − n·x̄² form would cancel catastrophically and
        // report zero variance (flipping every verdict to false).
        let mut population: Vec<f64> = (0..1000).map(|i| 1.0e8 + (i % 3) as f64).collect();
        population.push(1.0e8 + 40.0); // the queried record: far out in z terms
        let target = population.len() - 1;
        let moments = PopulationMoments::from_values(&population);
        assert!(moments.sample_variance().unwrap() > 0.0, "variance must survive the large mean");
        for detector in
            [&ZScoreDetector::default() as &dyn OutlierDetector, &GrubbsDetector::default()]
        {
            assert!(detector.supports_moments());
            assert_eq!(
                detector.is_outlier_by_moments(&moments, population[target]),
                detector.is_outlier(&population, target),
                "{} moment verdict diverged from the slice verdict",
                detector.name()
            );
            assert!(detector.is_outlier_by_moments(&moments, population[target]));
            assert!(!detector.is_outlier_by_moments(&moments, population[0]));
        }
    }

    #[test]
    fn moments_handle_degenerate_populations() {
        let empty = PopulationMoments::from_values(&[]);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.sample_variance(), None);
        let single = PopulationMoments::from_values(&[5.0]);
        assert_eq!(single.mean(), Some(5.0));
        assert_eq!(single.sample_std(), None);
        let constant = PopulationMoments::from_values(&[7.0; 10]);
        assert_eq!(constant.sample_variance(), Some(0.0));
        // Zero variance: neither moment detector flags anything.
        assert!(!ZScoreDetector::default().is_outlier_by_moments(&constant, 7.0));
        assert!(!GrubbsDetector::default().is_outlier_by_moments(&constant, 7.0));
        // Too-small populations are never flagged.
        let tiny = PopulationMoments::from_values(&[1.0, 100.0]);
        assert!(!ZScoreDetector::default().is_outlier_by_moments(&tiny, 100.0));
        assert!(!GrubbsDetector::default().is_outlier_by_moments(&tiny, 100.0));
    }

    #[test]
    fn detector_kind_builds_all_detectors() {
        for kind in [
            DetectorKind::Grubbs,
            DetectorKind::Histogram,
            DetectorKind::Lof,
            DetectorKind::ZScore,
            DetectorKind::Iqr,
        ] {
            let det = kind.build();
            assert!(!det.name().is_empty());
            // Degenerate population: no detector may panic or flag.
            assert!(!det.is_outlier(&[1.0], 0));
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(DetectorKind::paper_detectors().len(), 3);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let det = GrubbsDetector::default();
        let population = vec![1.0, 1.1, 0.9, 1.05, 0.95, 10.0];
        let direct = det.is_outlier(&population, 5);
        let via_ref: &dyn OutlierDetector = &det;
        let via_box: Box<dyn OutlierDetector> = Box::new(GrubbsDetector::default());
        assert_eq!(via_ref.is_outlier(&population, 5), direct);
        assert_eq!(via_box.is_outlier(&population, 5), direct);
        assert_eq!(via_ref.name(), det.name());
        assert_eq!(via_box.detect(&population), det.detect(&population));
        assert_eq!(via_ref.min_population(), det.min_population());
        assert_eq!(via_box.min_population(), det.min_population());
    }

    #[test]
    fn default_detect_matches_per_index_calls() {
        let det = ZScoreDetector::default();
        let population = vec![1.0, 2.0, 1.5, 1.2, 40.0, 1.1];
        let batch = det.detect(&population);
        for (i, &flag) in batch.iter().enumerate() {
            assert_eq!(flag, det.is_outlier(&population, i));
        }
    }
}
