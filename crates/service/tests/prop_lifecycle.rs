//! Property tests of the hardened request lifecycle: however reservations,
//! commits, refunds, cancellations, deadlines, and injected faults
//! interleave, the ledger leaks zero ε and its snapshot stays equal to the
//! fold of the audit log.

use pcor_faults::{site, FaultKind, FaultPlan};
use pcor_service::{
    BudgetLedger, DatasetRegistry, ReleaseRequest, RequestEnvelope, Server, ServerConfig,
};
use pcor_telemetry::AuditLog;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const ANALYSTS: [&str; 3] = ["alice", "bob", "carol"];
const DATASETS: [&str; 2] = ["salary", "census"];

/// Asserts the two lifecycle invariants on a quiesced ledger + audit pair:
/// no account holds outstanding ε, and the ledger snapshot is exactly the
/// fold of the audit events (spent = committed, remaining = total - spent).
fn assert_no_leaks(
    ledger: &BudgetLedger,
    audit: &AuditLog,
    grant: f64,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    audit.verify_contiguous().expect("audit seqs must be gap-free");
    let accounts = audit.fold();
    for ((analyst, dataset), account) in &accounts {
        prop_assert!(
            account.outstanding().abs() < 1e-9,
            "{analyst}/{dataset} leaked {} ε of unresolved reservations",
            account.outstanding()
        );
        prop_assert!(
            (account.reserved - account.committed - account.refunded).abs() < 1e-9,
            "{analyst}/{dataset}: reserved {} != committed {} + refunded {}",
            account.reserved,
            account.committed,
            account.refunded
        );
    }
    for entry in ledger.snapshot() {
        let folded = accounts
            .get(&(entry.analyst.clone(), entry.dataset.clone()))
            .map(|account| account.committed)
            .unwrap_or(0.0);
        prop_assert!(
            (entry.spent - folded).abs() < 1e-9,
            "{}/{}: snapshot spent {} != audit fold {}",
            entry.analyst,
            entry.dataset,
            entry.spent,
            folded
        );
        prop_assert!(entry.reserved.abs() < 1e-9, "quiesced ledger still holds reservations");
        prop_assert!(
            (entry.remaining - (grant - entry.spent)).abs() < 1e-9,
            "{}/{}: remaining {} != {} - spent {}",
            entry.analyst,
            entry.dataset,
            entry.remaining,
            grant,
            entry.spent
        );
    }
    Ok(())
}

/// One scripted move against the ledger: open a reservation, or resolve an
/// arbitrary open one by committing, refunding, or dropping it (the
/// cancellation path — a request that died mid-flight).
fn ops() -> impl Strategy<Value = Vec<(u8, u8, f64)>> {
    proptest::collection::vec((0u8..5, any::<u8>(), 0.01f64..0.5), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of reserve / commit / refund / drop across several
    /// accounts resolves every reservation exactly once: zero leaked ε and
    /// snapshot ≡ fold(audit), including when reserves are refused.
    #[test]
    fn interleaved_reservations_never_leak_epsilon(ops in ops()) {
        let grant = 3.0;
        let ledger = BudgetLedger::new(grant);
        let telemetry = pcor_telemetry::Telemetry::new();
        ledger.attach_telemetry(telemetry.clone());
        let mut open = Vec::new();
        for (index, (action, target, epsilon)) in ops.into_iter().enumerate() {
            match action {
                // Two of five moves reserve, so sequences stay reservation-
                // heavy enough to keep several requests in flight at once.
                0 | 1 => {
                    let analyst = ANALYSTS[target as usize % ANALYSTS.len()];
                    let dataset = DATASETS[target as usize % DATASETS.len()];
                    // A refusal (budget exhausted) is a legal outcome; the
                    // audit log records it without reserving.
                    if let Ok(reservation) = ledger.reserve_traced(
                        analyst,
                        dataset,
                        epsilon,
                        index as u64 + 1,
                        None,
                    ) {
                        open.push(reservation);
                    }
                }
                2 if !open.is_empty() => {
                    let reservation = open.swap_remove(target as usize % open.len());
                    ledger.commit(reservation);
                }
                3 if !open.is_empty() => {
                    let reservation = open.swap_remove(target as usize % open.len());
                    ledger.refund(reservation);
                }
                4 if !open.is_empty() => {
                    // The cancellation path: the holder dies and the
                    // reservation drops unresolved, which must refund.
                    drop(open.swap_remove(target as usize % open.len()));
                }
                _ => {}
            }
        }
        drop(open);
        assert_no_leaks(&ledger, telemetry.audit(), grant)?;
    }

    /// A live server under seeded latency/clock-skew faults, fed a mix of
    /// doomed-deadline and deadline-free requests, quiesces with zero
    /// leaked ε: every cancelled or timed-out release refunded exactly its
    /// reserved slice and every served one committed exactly its ε.
    #[test]
    fn deadlined_requests_under_faults_refund_exactly(
        seed in any::<u64>(),
        doomed in proptest::collection::vec(any::<bool>(), 3..10),
        latency_ms in 1u64..8,
    ) {
        let grant = 100.0;
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("toy", toy_dataset());
        let ledger = Arc::new(BudgetLedger::new(grant));
        let faults = FaultPlan::seeded(seed)
            .rule(site::SERVICE_RELEASE, FaultKind::Latency(Duration::from_millis(latency_ms)), 0.4)
            .rule(site::SERVICE_RELEASE, FaultKind::ClockSkew(Duration::from_millis(2)), 0.2)
            .build();
        let server = Server::start(
            ServerConfig::default().with_workers(2).with_queue_capacity(32).with_faults(faults),
            Arc::clone(&registry),
            Arc::clone(&ledger),
        );
        let pending: Vec<_> = doomed
            .iter()
            .enumerate()
            .map(|(index, &doomed)| {
                let request = ReleaseRequest::new(ANALYSTS[index % ANALYSTS.len()], "toy", 0)
                    .with_epsilon(0.2)
                    .with_samples(3)
                    .with_seed(index as u64);
                let envelope = RequestEnvelope::single(request);
                // A 0 ms deadline is already expired on arrival: the
                // request must be refused, shed, or cancelled — never
                // charged. Admission may legally refuse it up front
                // (`Overloaded`) once a mean latency is established.
                let envelope =
                    if doomed { envelope.with_deadline_ms(0) } else { envelope };
                server.submit_envelope(envelope)
            })
            .filter_map(std::result::Result::ok)
            .collect();
        let mut served = 0u32;
        for response in pending {
            // Both outcomes are legal under faults; leaks are not.
            if response.wait().is_ok() {
                served += 1;
            }
        }
        let telemetry = server.telemetry().clone();
        server.shutdown();
        assert_no_leaks(&ledger, telemetry.audit(), grant)?;
        // Committed ε must be exactly 0.2 per served release — a cancelled
        // release that half-committed would break this.
        let committed: f64 =
            audit_committed(telemetry.audit());
        prop_assert!(
            (committed - 0.2 * f64::from(served)).abs() < 1e-9,
            "{served} served releases committed {committed} ε"
        );
    }
}

/// Total committed ε across every account in the audit fold.
fn audit_committed(audit: &AuditLog) -> f64 {
    audit.fold().values().map(|account| account.committed).sum()
}

/// Record 0 is a planted outlier in its own (a0, b0) cell.
fn toy_dataset() -> pcor_data::Dataset {
    use pcor_data::{Attribute, Dataset, Record, Schema};
    let schema = Schema::new(
        vec![
            Attribute::from_values("A", &["a0", "a1"]),
            Attribute::from_values("B", &["b0", "b1"]),
        ],
        "M",
    )
    .unwrap();
    let mut records = vec![Record::new(vec![0, 0], 900.0)];
    for i in 0..40 {
        records
            .push(Record::new(vec![(i % 2) as u16, ((i / 2) % 2) as u16], 100.0 + (i % 7) as f64));
    }
    Dataset::new(schema, records).unwrap()
}
